//! Property suites for the columnar physical layer.
//!
//! Three invariant families:
//!
//! 1. **Interning round-trips** — `intern` → `resolve` is the identity on
//!    strings, interned equality coincides with string equality, and
//!    forcing a relation's columnar image (which interns every text value)
//!    never changes its distinct result.
//! 2. **Index/scan differential** — across random insert/delete op
//!    streams, index-backed equality and range lookups agree with a full
//!    scan after every single op.
//! 3. **Columnar/row differential** — planned execution in columnar mode
//!    is byte-identical (order included) to the frozen row-at-a-time
//!    mode, on random specs over mixed Int/Text schemas.
//!
//! Case counts honour `PROPTEST_CASES` (CI smoke 64, nightly 256).

use proptest::prelude::*;

use eve_relational::exec::{execute_with, ExecMode};
use eve_relational::{
    intern, ColumnDef, ColumnRef, CompOp, DataType, IndexKind, PrimitiveClause, QueryInput,
    QuerySpec, Relation, Schema, Tuple, Value,
};

// ---------------------------------------------------------------------
// 1. Interning round-trips.
// ---------------------------------------------------------------------

fn arb_string() -> impl Strategy<Value = String> {
    "[a-c]{0,6}"
}

fn text_relation(rows: &[(i64, String)]) -> Relation {
    Relation::with_tuples(
        "T",
        Schema::of(&[("K", DataType::Int), ("S", DataType::Text)]).unwrap(),
        rows.iter()
            .map(|(k, s)| Tuple::new(vec![Value::Int(*k), Value::from(s.as_str())]))
            .collect(),
    )
    .unwrap()
}

// ---------------------------------------------------------------------
// 2. Index/scan differential across random evolution-op streams.
// ---------------------------------------------------------------------

/// One mutation of the op stream: insert a row, or delete every row whose
/// key column equals the pick.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, String),
    Delete(i64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (-4i64..5, arb_string()).prop_map(|(k, s)| Op::Insert(k, s)),
            (-4i64..5).prop_map(Op::Delete),
        ],
        1..24,
    )
}

/// Row ids whose `col` value satisfies `op` against `key`, by full scan.
fn scan_rows(rel: &Relation, col: usize, op: CompOp, key: &Value) -> Vec<u32> {
    rel.tuples()
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            t.get(col)
                .try_cmp(key)
                .map(|ord| op.eval(ord))
                .unwrap_or(false)
        })
        .map(|(i, _)| i as u32)
        .collect()
}

// ---------------------------------------------------------------------
// 3. Columnar ≡ row differential on random specs.
// ---------------------------------------------------------------------

const BINDINGS: [&str; 2] = ["A", "B"];

/// A two-input spec over (Int, Text) schemas: equality join on a random
/// column pair of matching type, plus random literal clauses.
fn mixed_relation(binding: &str, rows: &[(i64, String)]) -> Relation {
    let schema = Schema::new(vec![
        ColumnDef::new(ColumnRef::qualified(binding, "K"), DataType::Int),
        ColumnDef::new(ColumnRef::qualified(binding, "S"), DataType::Text),
    ])
    .unwrap();
    Relation::with_tuples(
        binding,
        schema,
        rows.iter()
            .map(|(k, s)| Tuple::new(vec![Value::Int(*k), Value::from(s.as_str())]))
            .collect(),
    )
    .unwrap()
}

#[allow(clippy::type_complexity)]
fn arb_spec() -> impl Strategy<Value = QuerySpec> {
    (
        prop::collection::vec((-3i64..4, arb_string()), 0..8),
        prop::collection::vec((-3i64..4, arb_string()), 0..8),
        any::<bool>(), // join on Text (true) or Int (false)
        prop::collection::vec((any::<bool>(), 0usize..2, -3i64..4, arb_string()), 0..3),
    )
        .prop_map(|(rows_a, rows_b, text_join, lit_picks)| {
            let inputs: Vec<QueryInput> = [("A", &rows_a), ("B", &rows_b)]
                .into_iter()
                .map(|(b, rows)| QueryInput {
                    binding: b.to_owned(),
                    relation: mixed_relation(b, rows),
                    stats: None,
                })
                .collect();
            let mut clauses = vec![if text_join {
                PrimitiveClause::eq(
                    ColumnRef::qualified("A", "S"),
                    ColumnRef::qualified("B", "S"),
                )
            } else {
                PrimitiveClause::eq(
                    ColumnRef::qualified("A", "K"),
                    ColumnRef::qualified("B", "K"),
                )
            }];
            for (on_a, col, k, s) in lit_picks {
                let binding = BINDINGS[usize::from(!on_a)];
                clauses.push(if col == 0 {
                    PrimitiveClause::lit(
                        ColumnRef::qualified(binding, "K"),
                        CompOp::Le,
                        Value::Int(k),
                    )
                } else {
                    PrimitiveClause::lit(
                        ColumnRef::qualified(binding, "S"),
                        CompOp::Eq,
                        Value::from(s.as_str()),
                    )
                });
            }
            QuerySpec {
                name: "V".into(),
                inputs,
                clauses,
                projection: vec![
                    ColumnRef::qualified("A", "K"),
                    ColumnRef::qualified("B", "S"),
                ],
                output: vec![ColumnRef::bare("X0"), ColumnRef::bare("X1")],
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // -------------------------------------------------------------------
    // intern → resolve is the identity; symbol equality ≡ string
    // equality.
    // -------------------------------------------------------------------
    #[test]
    fn interning_round_trips(a in arb_string(), b in arb_string()) {
        let sa = intern::intern(&a);
        let sb = intern::intern(&b);
        let (ra, rb) = (intern::resolve(sa), intern::resolve(sb));
        prop_assert_eq!(ra.as_ref(), a.as_str());
        prop_assert_eq!(rb.as_ref(), b.as_str());
        prop_assert_eq!(sa == sb, a == b, "symbol equality ≡ string equality");
        prop_assert_eq!(intern::intern(&a), sa, "interning is stable");
        prop_assert_eq!(intern::lookup(&a), Some(sa));
    }

    // -------------------------------------------------------------------
    // Forcing the columnar image (which interns every text value) never
    // changes the distinct result — byte-identical pre/post interning.
    // -------------------------------------------------------------------
    #[test]
    fn distinct_is_byte_identical_pre_and_post_interning(
        rows in prop::collection::vec((-4i64..5, arb_string()), 0..12)
    ) {
        let cold = text_relation(&rows);
        let before = cold.distinct();
        let warm = text_relation(&rows);
        let _ = warm.columnar(); // interns every text value
        prop_assert!(warm.columnar_built());
        let after = warm.distinct();
        prop_assert_eq!(before.tuples(), after.tuples());
        let again = cold.distinct();
        prop_assert_eq!(again.tuples(), before.tuples(), "distinct is stable");
    }

    // -------------------------------------------------------------------
    // Index lookups agree with full scans after every op of a random
    // insert/delete stream, on both a hash (Text) and a sorted (Int)
    // index warmed *before* the stream runs.
    // -------------------------------------------------------------------
    #[test]
    fn indexes_stay_consistent_across_random_op_streams(ops in arb_ops()) {
        let mut rel = text_relation(&[(0, "a".into()), (1, "b".into())]);
        rel.warm_index(0, IndexKind::Sorted);
        rel.warm_index(1, IndexKind::Hash);
        for op in ops {
            match op {
                Op::Insert(k, s) => {
                    rel.insert(Tuple::new(vec![Value::Int(k), Value::from(s.as_str())])).unwrap();
                }
                Op::Delete(k) => {
                    let doomed: Vec<Tuple> = rel
                        .tuples()
                        .iter()
                        .filter(|t| t.get(0) == &Value::Int(k))
                        .cloned()
                        .collect();
                    rel.delete(&doomed);
                }
            }
            prop_assert!(rel.has_index(0, IndexKind::Sorted), "maintained, not dropped");
            prop_assert!(rel.has_index(1, IndexKind::Hash));
            for k in -4i64..5 {
                let key = Value::Int(k);
                for cmp in [CompOp::Eq, CompOp::Lt, CompOp::Le, CompOp::Ge, CompOp::Gt] {
                    prop_assert_eq!(
                        rel.index_range_rows(0, cmp, &key),
                        scan_rows(&rel, 0, cmp, &key),
                        "sorted index {:?} {}", cmp, k
                    );
                }
            }
            for probe in ["", "a", "ab", "abc", "zzz-never-inserted"] {
                let key = Value::from(probe);
                prop_assert_eq!(
                    rel.index_eq_rows(1, &key),
                    scan_rows(&rel, 1, CompOp::Eq, &key),
                    "hash index probe {:?}", probe
                );
            }
        }
    }

    // -------------------------------------------------------------------
    // Columnar execution ≡ row-oriented execution, byte for byte, on
    // random mixed Int/Text specs (interned join keys included).
    // -------------------------------------------------------------------
    #[test]
    fn columnar_execution_equals_row_execution(spec in arb_spec()) {
        let plan = eve_relational::plan::plan(spec).unwrap();
        let row = execute_with(&plan, ExecMode::RowOriented).unwrap();
        let col = execute_with(&plan, ExecMode::Columnar).unwrap();
        prop_assert_eq!(row.schema(), col.schema());
        prop_assert_eq!(row.tuples(), col.tuples(), "byte-identical, order included");
    }

    // -------------------------------------------------------------------
    // Index-backed scans agree with predicate evaluation through the
    // whole planner: a plan over an indexed relation returns the same
    // bag whether or not an IndexScan was chosen.
    // -------------------------------------------------------------------
    #[test]
    fn planned_output_is_independent_of_warmed_indexes(
        rows in prop::collection::vec((-3i64..4, arb_string()), 0..10),
        k in -3i64..4,
    ) {
        let mk_spec = |rel: Relation| QuerySpec {
            name: "V".into(),
            inputs: vec![QueryInput { binding: "A".into(), relation: rel, stats: None }],
            clauses: vec![PrimitiveClause::lit(
                ColumnRef::qualified("A", "K"),
                CompOp::Le,
                Value::Int(k),
            )],
            projection: vec![
                ColumnRef::qualified("A", "K"),
                ColumnRef::qualified("A", "S"),
            ],
            output: vec![ColumnRef::bare("X0"), ColumnRef::bare("X1")],
        };
        let cold = eve_relational::plan::plan(mk_spec(mixed_relation("A", &rows)))
            .unwrap().execute().unwrap();
        let indexed = mixed_relation("A", &rows);
        indexed.warm_index(0, IndexKind::Sorted);
        indexed.warm_index(1, IndexKind::Hash);
        let warm = eve_relational::plan::plan(mk_spec(indexed)).unwrap().execute().unwrap();
        prop_assert_eq!(cold.tuples(), warm.tuples());
    }
}
