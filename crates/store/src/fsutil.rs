//! Filesystem plumbing for the store's durability guarantees: directory
//! fsyncs (so file creation, rotation and the atomic snapshot rename
//! survive power loss) and the single-opener lock file that prevents two
//! processes — or two handles in one process — from interleaving appends
//! on the same store directory.

use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};

use crate::error::{Error, Result};

/// Fsyncs a directory so directory-level mutations made inside it (file
/// creation, rename, removal) are themselves durable. A data fsync on a
/// freshly created file does not persist the *directory entry* pointing
/// at it — a crash can leave the fsync'd bytes unreachable. Every segment
/// creation, rotation and snapshot rename must be followed by this call.
///
/// # Errors
///
/// I/O failures opening or syncing the directory.
#[cfg(unix)]
pub(crate) fn sync_dir(dir: &Path) -> Result<()> {
    let d = File::open(dir).map_err(|e| Error::io(dir, e))?;
    d.sync_all().map_err(|e| Error::io(dir, e))
}

/// Non-Unix fallback: directory handles cannot generally be opened for
/// syncing; the rename/creation durability window is accepted there.
#[cfg(not(unix))]
pub(crate) fn sync_dir(_dir: &Path) -> Result<()> {
    Ok(())
}

#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    // `std` exposes no advisory file locking and the build environment has
    // no `libc` crate, so declare the one syscall wrapper we need. `flock`
    // is per open-file-description: the lock dies with the process (or the
    // descriptor), which is exactly the crash semantics the store needs —
    // a killed process must not leave a stale lock behind.
    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }

    const LOCK_EX: i32 = 2;
    const LOCK_NB: i32 = 4;

    pub(super) fn try_lock_exclusive(file: &File) -> std::io::Result<()> {
        // SAFETY: `fd` is a valid open descriptor for the lifetime of the
        // call; `flock` does not touch memory.
        let rc = unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) };
        if rc == 0 {
            Ok(())
        } else {
            Err(std::io::Error::last_os_error())
        }
    }
}

/// An exclusive advisory lock on a store directory, held for the lifetime
/// of an [`crate::EvolutionStore`]. Acquiring it a second time — from
/// another process or another handle in the same process — fails
/// immediately instead of letting two writers interleave segment appends
/// and corrupt the tail. Released automatically when dropped or when the
/// owning process dies, so crash-recovery reopens are never blocked.
#[derive(Debug)]
pub(crate) struct DirLock {
    path: PathBuf,
    _file: File,
}

impl DirLock {
    /// The lock file's name inside the store directory (not a store file:
    /// recovery listings only consider `.evl`/`.evs`/`.evd`).
    pub(crate) const FILE_NAME: &'static str = "store.lock";

    /// Acquires the exclusive store lock, creating the lock file if absent.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`Error::Busy`] — naming both the directory and
    /// the lock file — when another store handle already holds the lock.
    pub(crate) fn acquire(dir: &Path) -> Result<DirLock> {
        let path = dir.join(Self::FILE_NAME);
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| Error::io(&path, e))?;
        #[cfg(unix)]
        sys::try_lock_exclusive(&file).map_err(|e| {
            if e.kind() == std::io::ErrorKind::WouldBlock {
                Error::busy(dir, &path)
            } else {
                Error::io(&path, e)
            }
        })?;
        Ok(DirLock { path, _file: file })
    }

    /// The lock file path (diagnostics only).
    #[allow(dead_code)]
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eve-store-fsutil-tests-{}-{name}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn sync_dir_missing_directory_is_an_error_not_a_silent_ok() {
        // Pins the satellite bugfix: a failed directory fsync must
        // propagate — `.ok()`-swallowing it silently voids the
        // atomic-snapshot guarantee.
        let missing = std::env::temp_dir().join(format!(
            "eve-store-fsutil-missing-{}-does-not-exist",
            std::process::id()
        ));
        assert!(sync_dir(&missing).is_err());
    }

    #[test]
    fn second_lock_acquisition_fails_until_first_is_dropped() {
        let dir = temp_dir("lock");
        let first = DirLock::acquire(&dir).unwrap();
        let err = DirLock::acquire(&dir).unwrap_err();
        assert!(err.to_string().contains("already open"), "{err}");
        // The failure is typed — not a raw flock error — and names the
        // lock file another handle holds.
        match &err {
            Error::Busy { lock, .. } => {
                assert!(lock.ends_with(DirLock::FILE_NAME), "{}", lock.display());
            }
            other => panic!("expected Error::Busy, got {other:?}"),
        }
        assert!(err.to_string().contains(DirLock::FILE_NAME), "{err}");
        drop(first);
        let _second = DirLock::acquire(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
