//! Full-state snapshots of the engine: MKB, per-site extents, installed
//! rewritings (materialized views) and the engine configuration.
//!
//! A snapshot is the recovery anchor: loading it and replaying the log
//! records appended after its sequence number reproduces the engine
//! exactly. Its encoding is canonical, so two engines in the same state
//! encode to the same bytes — the differential crash-recovery suites
//! compare engines through [`EngineSnapshot::to_bytes`].
//!
//! ```text
//! snapshot file := MAGIC ("EVESNP01") seq (u64) generation (u64)
//!                  len (u32) crc64 (u64, over payload) payload
//! payload       := EngineSnapshot encoding
//! ```

use std::fs::File;
use std::io::Read;
use std::path::Path;

use eve_esql::ViewDef;
use eve_misd::MkbState;
use eve_qc::{QcParams, SelectionStrategy, WorkloadModel};
use eve_relational::Relation;
use eve_sync::SyncOptions;

use crate::checksum::crc64;
use crate::codec::{from_bytes, to_bytes, Codec, Dec, Enc};
use crate::error::{Error, Result};

/// Magic prefix of a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"EVESNP01";

/// One simulated information source: hosted extents with their blocking
/// factors, plus the resource-accounting counters (so recovered cost
/// reports continue exactly where the crashed process stopped).
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSnapshot {
    /// Site id.
    pub id: u32,
    /// Site name.
    pub name: String,
    /// Hosted relations with their blocking factors, ordered by name.
    pub relations: Vec<(Relation, u64)>,
    /// Block I/Os charged so far.
    pub io_count: u64,
    /// Messages charged so far.
    pub message_count: u64,
}

/// One installed rewriting: the (possibly evolved) view definition and its
/// materialized extent.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewSnapshot {
    /// The view definition.
    pub def: ViewDef,
    /// The materialized extent (bag semantics, insertion order preserved).
    pub extent: Relation,
}

/// How the engine explores the rewriting search space — a plain-data
/// mirror of `eve_system::SearchMode` (which cannot live here without a
/// dependency cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchModeState {
    /// Materialize every legal rewriting, then rank.
    #[default]
    Exhaustive,
    /// QC-bounded best-first search.
    BestFirst,
    /// The §7.6 heuristic beam of the given width.
    Beam {
        /// Beam width.
        width: usize,
    },
}

/// The engine's tunable configuration. Replay must run under the same
/// configuration the ops were originally applied with — a capability
/// change ranked under different QC parameters could adopt a different
/// rewriting, silently forking history.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Synchronizer options.
    pub sync_options: SyncOptions,
    /// QC-Model parameters.
    pub qc_params: QcParams,
    /// Workload model.
    pub workload: WorkloadModel,
    /// Rewriting selection strategy.
    pub strategy: SelectionStrategy,
    /// Search-space exploration mode.
    pub search: SearchModeState,
}

/// A complete, self-contained image of the engine.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// The Meta Knowledge Base, including its mutation generation.
    pub mkb: MkbState,
    /// Every simulated site, ordered by id.
    pub sites: Vec<SiteSnapshot>,
    /// Every materialized view, ordered by name.
    pub views: Vec<ViewSnapshot>,
    /// The engine configuration under which the log was produced.
    pub config: EngineConfig,
}

impl EngineSnapshot {
    /// The MKB generation captured in this snapshot.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.mkb.generation
    }

    /// The canonical encoding — equal states encode to equal bytes, which
    /// is the "byte-identical" notion the recovery test suites pin.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        to_bytes(self)
    }

    /// Decodes a snapshot from its canonical encoding.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<EngineSnapshot> {
        from_bytes(bytes)
    }
}

impl Codec for SiteSnapshot {
    fn encode(&self, enc: &mut Enc) {
        enc.u32(self.id);
        enc.str(&self.name);
        enc.usize(self.relations.len());
        for (rel, bfr) in &self.relations {
            rel.encode(enc);
            enc.u64(*bfr);
        }
        enc.u64(self.io_count);
        enc.u64(self.message_count);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<SiteSnapshot> {
        let id = dec.u32()?;
        let name = dec.str()?;
        let n = dec.len()?;
        let mut relations = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let rel = Relation::decode(dec)?;
            let bfr = dec.u64()?;
            relations.push((rel, bfr));
        }
        Ok(SiteSnapshot {
            id,
            name,
            relations,
            io_count: dec.u64()?,
            message_count: dec.u64()?,
        })
    }
}

impl Codec for ViewSnapshot {
    fn encode(&self, enc: &mut Enc) {
        self.def.encode(enc);
        self.extent.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<ViewSnapshot> {
        Ok(ViewSnapshot {
            def: ViewDef::decode(dec)?,
            extent: Relation::decode(dec)?,
        })
    }
}

impl Codec for SearchModeState {
    fn encode(&self, enc: &mut Enc) {
        match self {
            SearchModeState::Exhaustive => enc.u8(0),
            SearchModeState::BestFirst => enc.u8(1),
            SearchModeState::Beam { width } => {
                enc.u8(2);
                enc.usize(*width);
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<SearchModeState> {
        Ok(match dec.u8()? {
            0 => SearchModeState::Exhaustive,
            1 => SearchModeState::BestFirst,
            2 => SearchModeState::Beam {
                width: dec.usize()?,
            },
            other => {
                return Err(Error::corrupt(format!(
                    "invalid SearchModeState tag {other}"
                )));
            }
        })
    }
}

impl Codec for EngineConfig {
    fn encode(&self, enc: &mut Enc) {
        self.sync_options.encode(enc);
        self.qc_params.encode(enc);
        self.workload.encode(enc);
        self.strategy.encode(enc);
        self.search.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<EngineConfig> {
        Ok(EngineConfig {
            sync_options: SyncOptions::decode(dec)?,
            qc_params: QcParams::decode(dec)?,
            workload: WorkloadModel::decode(dec)?,
            strategy: SelectionStrategy::decode(dec)?,
            search: SearchModeState::decode(dec)?,
        })
    }
}

impl Codec for EngineSnapshot {
    fn encode(&self, enc: &mut Enc) {
        self.mkb.encode(enc);
        enc.usize(self.sites.len());
        for s in &self.sites {
            s.encode(enc);
        }
        enc.usize(self.views.len());
        for v in &self.views {
            v.encode(enc);
        }
        self.config.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<EngineSnapshot> {
        let mkb = MkbState::decode(dec)?;
        let n_sites = dec.len()?;
        let mut sites = Vec::with_capacity(n_sites.min(4096));
        for _ in 0..n_sites {
            sites.push(SiteSnapshot::decode(dec)?);
        }
        let n_views = dec.len()?;
        let mut views = Vec::with_capacity(n_views.min(4096));
        for _ in 0..n_views {
            views.push(ViewSnapshot::decode(dec)?);
        }
        Ok(EngineSnapshot {
            mkb,
            sites,
            views,
            config: EngineConfig::decode(dec)?,
        })
    }
}

/// Writes a snapshot file atomically (temp file + rename + fsync).
///
/// # Errors
///
/// I/O failures.
pub fn write_snapshot_file(path: &Path, seq: u64, snapshot: &EngineSnapshot) -> Result<u64> {
    let payload = snapshot.to_bytes();
    let mut bytes = Vec::with_capacity(payload.len() + 36);
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&seq.to_le_bytes());
    bytes.extend_from_slice(&snapshot.generation().to_le_bytes());
    bytes.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("snapshot < 4 GiB")
            .to_le_bytes(),
    );
    bytes.extend_from_slice(&crc64(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let tmp = path.with_extension("tmp");
    {
        let mut file = File::create(&tmp).map_err(|e| Error::io(&tmp, e))?;
        use std::io::Write;
        file.write_all(&bytes).map_err(|e| Error::io(&tmp, e))?;
        file.sync_all().map_err(|e| Error::io(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| Error::io(path, e))?;
    // Persist the rename itself.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            d.sync_all().ok();
        }
    }
    Ok(bytes.len() as u64)
}

/// A parsed snapshot file.
#[derive(Debug)]
pub struct SnapshotFile {
    /// Sequence number: records `0..seq` are folded into this snapshot.
    pub seq: u64,
    /// MKB generation at the snapshot point.
    pub generation: u64,
    /// The state image.
    pub snapshot: EngineSnapshot,
}

/// Reads only a snapshot file's header (`seq`, `generation`), checking
/// the magic and that the payload length matches the file size — but not
/// the payload checksum. Cheap pre-filter for listings and backward scans
/// over large snapshots; anything that will actually be *loaded* must go
/// through [`read_snapshot_file`].
///
/// # Errors
///
/// I/O failures, or [`Error::Corrupt`] for a foreign/short/length-
/// inconsistent file.
pub fn read_snapshot_header(path: &Path) -> Result<(u64, u64)> {
    let mut file = File::open(path).map_err(|e| Error::io(path, e))?;
    let mut header = [0u8; 36];
    file.read_exact(&mut header).map_err(|_| {
        Error::corrupt(format!(
            "{} is not a snapshot file (short header)",
            path.display()
        ))
    })?;
    if &header[..8] != SNAPSHOT_MAGIC {
        return Err(Error::corrupt(format!(
            "{} is not a snapshot file (bad magic)",
            path.display()
        )));
    }
    let seq = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let generation = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    let len = u64::from(u32::from_le_bytes(
        header[24..28].try_into().expect("4 bytes"),
    ));
    let size = file.metadata().map_err(|e| Error::io(path, e))?.len();
    if size != 36 + len {
        return Err(Error::corrupt(format!(
            "{}: payload length {} does not match header {len}",
            path.display(),
            size.saturating_sub(36)
        )));
    }
    Ok((seq, generation))
}

/// Reads and validates a snapshot file.
///
/// # Errors
///
/// I/O failures, or [`Error::Corrupt`] when the header, checksum or
/// payload is damaged (recovery then falls back to an older snapshot).
pub fn read_snapshot_file(path: &Path) -> Result<SnapshotFile> {
    let mut file = File::open(path).map_err(|e| Error::io(path, e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| Error::io(path, e))?;
    if bytes.len() < 36 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(Error::corrupt(format!(
            "{} is not a snapshot file (bad or short header)",
            path.display()
        )));
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let generation = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes")) as usize;
    let crc = u64::from_le_bytes(bytes[28..36].try_into().expect("8 bytes"));
    if bytes.len() - 36 != len {
        return Err(Error::corrupt(format!(
            "{}: payload length {} does not match header {len}",
            path.display(),
            bytes.len() - 36
        )));
    }
    let payload = &bytes[36..];
    if crc64(payload) != crc {
        return Err(Error::corrupt(format!(
            "{}: snapshot checksum mismatch",
            path.display()
        )));
    }
    let snapshot = EngineSnapshot::from_bytes(payload)?;
    if snapshot.generation() != generation {
        return Err(Error::corrupt(format!(
            "{}: header generation {generation} disagrees with payload {}",
            path.display(),
            snapshot.generation()
        )));
    }
    Ok(SnapshotFile {
        seq,
        generation,
        snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_misd::{AttributeInfo, RelationInfo, SiteId};
    use eve_relational::{tup, DataType, Schema};

    fn sample_snapshot() -> EngineSnapshot {
        let mut mkb = eve_misd::Mkb::new();
        mkb.register_site(SiteId(1), "one").unwrap();
        mkb.register_relation(RelationInfo::new(
            "R",
            SiteId(1),
            vec![AttributeInfo::new("A", DataType::Int)],
            3,
        ))
        .unwrap();
        let extent = Relation::with_tuples(
            "R",
            Schema::of(&[("A", DataType::Int)]).unwrap(),
            vec![tup![1], tup![2], tup![1]],
        )
        .unwrap();
        let view = eve_esql::parse_view("CREATE VIEW V (VE = '~') AS SELECT R.A FROM R").unwrap();
        EngineSnapshot {
            mkb: mkb.export_state(),
            sites: vec![SiteSnapshot {
                id: 1,
                name: "one".into(),
                relations: vec![(extent.clone(), 10)],
                io_count: 42,
                message_count: 7,
            }],
            views: vec![ViewSnapshot { def: view, extent }],
            config: EngineConfig {
                sync_options: SyncOptions::default(),
                qc_params: QcParams::default(),
                workload: WorkloadModel::PerSite { updates: 10.0 },
                strategy: SelectionStrategy::QcBest,
                search: SearchModeState::Beam { width: 4 },
            },
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eve-store-snap-tests-{}-{name}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("snap.evs")
    }

    #[test]
    fn snapshot_encoding_is_canonical() {
        let snap = sample_snapshot();
        let a = snap.to_bytes();
        let b = snap.clone().to_bytes();
        assert_eq!(a, b);
        let back = EngineSnapshot::from_bytes(&a).unwrap();
        assert_eq!(back.to_bytes(), a);
        assert_eq!(back.generation(), snap.generation());
        assert_eq!(back.sites, snap.sites);
        assert_eq!(back.views, snap.views);
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let path = temp_path("roundtrip");
        let snap = sample_snapshot();
        write_snapshot_file(&path, 11, &snap).unwrap();
        let parsed = read_snapshot_file(&path).unwrap();
        assert_eq!(parsed.seq, 11);
        assert_eq!(parsed.generation, snap.generation());
        assert_eq!(parsed.snapshot.to_bytes(), snap.to_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn damaged_snapshot_is_detected() {
        let path = temp_path("damaged");
        write_snapshot_file(&path, 0, &sample_snapshot()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_snapshot_file(&path).unwrap_err();
        assert!(err.to_string().contains("checksum") || err.to_string().contains("corrupt"));
        // Truncation is also detected.
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(read_snapshot_file(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
