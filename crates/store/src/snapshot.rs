//! Full-state snapshots of the engine: MKB, per-site extents, installed
//! rewritings (materialized views) and the engine configuration.
//!
//! A snapshot is the recovery anchor: loading it and replaying the log
//! records appended after its sequence number reproduces the engine
//! exactly. Its encoding is canonical, so two engines in the same state
//! encode to the same bytes — the differential crash-recovery suites
//! compare engines through [`EngineSnapshot::to_bytes`].
//!
//! ```text
//! snapshot file := MAGIC ("EVESNP01") seq (u64) generation (u64)
//!                  len (u32) crc64 (u64, over payload) payload
//! payload       := EngineSnapshot encoding
//! ```

use std::fs::File;
use std::io::Read;
use std::path::Path;

use eve_esql::ViewDef;
use eve_misd::MkbState;
use eve_qc::{QcParams, SelectionStrategy, WorkloadModel};
use eve_relational::Relation;
use eve_sync::SyncOptions;

use crate::checksum::crc64;
use crate::codec::{from_bytes, to_bytes, Codec, Dec, Enc};
use crate::error::{Error, Result};

/// Magic prefix of a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"EVESNP01";

/// One simulated information source: hosted extents with their blocking
/// factors, plus the resource-accounting counters (so recovered cost
/// reports continue exactly where the crashed process stopped).
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSnapshot {
    /// Site id.
    pub id: u32,
    /// Site name.
    pub name: String,
    /// Hosted relations with their blocking factors, ordered by name.
    pub relations: Vec<(Relation, u64)>,
    /// Block I/Os charged so far.
    pub io_count: u64,
    /// Messages charged so far.
    pub message_count: u64,
}

/// One installed rewriting: the (possibly evolved) view definition and its
/// materialized extent.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewSnapshot {
    /// The view definition.
    pub def: ViewDef,
    /// The materialized extent (bag semantics, insertion order preserved).
    pub extent: Relation,
}

/// How the engine explores the rewriting search space — a plain-data
/// mirror of `eve_system::SearchMode` (which cannot live here without a
/// dependency cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchModeState {
    /// Materialize every legal rewriting, then rank.
    #[default]
    Exhaustive,
    /// QC-bounded best-first search.
    BestFirst,
    /// The §7.6 heuristic beam of the given width.
    Beam {
        /// Beam width.
        width: usize,
    },
}

/// The physical shape of a declared secondary index — a plain-data mirror
/// of `eve_relational::IndexKind` (which cannot live here without a
/// dependency cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKindState {
    /// Hash index over interned/encoded keys (equality probes).
    #[default]
    Hash,
    /// Value-ordered row index (range probes).
    Sorted,
}

/// One declared secondary index: relation, column and physical shape.
///
/// Only *declared* hints persist — lazily warmed index state is
/// reconstructible and excluded so equal engine states keep byte-equal
/// snapshot encodings regardless of which queries happened to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexHintState {
    /// The indexed relation's name.
    pub relation: String,
    /// The indexed column's (bare) attribute name.
    pub column: String,
    /// Physical index shape.
    pub kind: IndexKindState,
}

/// The engine's tunable configuration. Replay must run under the same
/// configuration the ops were originally applied with — a capability
/// change ranked under different QC parameters could adopt a different
/// rewriting, silently forking history.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Synchronizer options.
    pub sync_options: SyncOptions,
    /// QC-Model parameters.
    pub qc_params: QcParams,
    /// Workload model.
    pub workload: WorkloadModel,
    /// Rewriting selection strategy.
    pub strategy: SelectionStrategy,
    /// Search-space exploration mode.
    pub search: SearchModeState,
    /// Declared secondary indexes, in declaration order.
    pub index_hints: Vec<IndexHintState>,
}

/// A complete, self-contained image of the engine.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// The Meta Knowledge Base, including its mutation generation.
    pub mkb: MkbState,
    /// Every simulated site, ordered by id.
    pub sites: Vec<SiteSnapshot>,
    /// Every materialized view, ordered by name.
    pub views: Vec<ViewSnapshot>,
    /// The engine configuration under which the log was produced.
    pub config: EngineConfig,
}

impl EngineSnapshot {
    /// The MKB generation captured in this snapshot.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.mkb.generation
    }

    /// The canonical encoding — equal states encode to equal bytes, which
    /// is the "byte-identical" notion the recovery test suites pin.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        to_bytes(self)
    }

    /// Decodes a snapshot from its canonical encoding.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<EngineSnapshot> {
        from_bytes(bytes)
    }
}

impl Codec for SiteSnapshot {
    fn encode(&self, enc: &mut Enc) {
        enc.u32(self.id);
        enc.str(&self.name);
        enc.usize(self.relations.len());
        for (rel, bfr) in &self.relations {
            rel.encode(enc);
            enc.u64(*bfr);
        }
        enc.u64(self.io_count);
        enc.u64(self.message_count);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<SiteSnapshot> {
        let id = dec.u32()?;
        let name = dec.str()?;
        let n = dec.len()?;
        let mut relations = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let rel = Relation::decode(dec)?;
            let bfr = dec.u64()?;
            relations.push((rel, bfr));
        }
        Ok(SiteSnapshot {
            id,
            name,
            relations,
            io_count: dec.u64()?,
            message_count: dec.u64()?,
        })
    }
}

impl Codec for ViewSnapshot {
    fn encode(&self, enc: &mut Enc) {
        self.def.encode(enc);
        self.extent.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<ViewSnapshot> {
        Ok(ViewSnapshot {
            def: ViewDef::decode(dec)?,
            extent: Relation::decode(dec)?,
        })
    }
}

impl Codec for SearchModeState {
    fn encode(&self, enc: &mut Enc) {
        match self {
            SearchModeState::Exhaustive => enc.u8(0),
            SearchModeState::BestFirst => enc.u8(1),
            SearchModeState::Beam { width } => {
                enc.u8(2);
                enc.usize(*width);
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<SearchModeState> {
        Ok(match dec.u8()? {
            0 => SearchModeState::Exhaustive,
            1 => SearchModeState::BestFirst,
            2 => SearchModeState::Beam {
                width: dec.usize()?,
            },
            other => {
                return Err(Error::corrupt(format!(
                    "invalid SearchModeState tag {other}"
                )));
            }
        })
    }
}

impl Codec for IndexKindState {
    fn encode(&self, enc: &mut Enc) {
        match self {
            IndexKindState::Hash => enc.u8(0),
            IndexKindState::Sorted => enc.u8(1),
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<IndexKindState> {
        Ok(match dec.u8()? {
            0 => IndexKindState::Hash,
            1 => IndexKindState::Sorted,
            other => {
                return Err(Error::corrupt(format!(
                    "invalid IndexKindState tag {other}"
                )));
            }
        })
    }
}

impl Codec for IndexHintState {
    fn encode(&self, enc: &mut Enc) {
        enc.str(&self.relation);
        enc.str(&self.column);
        self.kind.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<IndexHintState> {
        Ok(IndexHintState {
            relation: dec.str()?,
            column: dec.str()?,
            kind: IndexKindState::decode(dec)?,
        })
    }
}

impl Codec for EngineConfig {
    fn encode(&self, enc: &mut Enc) {
        self.sync_options.encode(enc);
        self.qc_params.encode(enc);
        self.workload.encode(enc);
        self.strategy.encode(enc);
        self.search.encode(enc);
        enc.usize(self.index_hints.len());
        for hint in &self.index_hints {
            hint.encode(enc);
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<EngineConfig> {
        let sync_options = SyncOptions::decode(dec)?;
        let qc_params = QcParams::decode(dec)?;
        let workload = WorkloadModel::decode(dec)?;
        let strategy = SelectionStrategy::decode(dec)?;
        let search = SearchModeState::decode(dec)?;
        let n = dec.len()?;
        let mut index_hints = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            index_hints.push(IndexHintState::decode(dec)?);
        }
        Ok(EngineConfig {
            sync_options,
            qc_params,
            workload,
            strategy,
            search,
            index_hints,
        })
    }
}

impl Codec for EngineSnapshot {
    fn encode(&self, enc: &mut Enc) {
        self.mkb.encode(enc);
        enc.usize(self.sites.len());
        for s in &self.sites {
            s.encode(enc);
        }
        enc.usize(self.views.len());
        for v in &self.views {
            v.encode(enc);
        }
        self.config.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<EngineSnapshot> {
        let mkb = MkbState::decode(dec)?;
        let n_sites = dec.len()?;
        let mut sites = Vec::with_capacity(n_sites.min(4096));
        for _ in 0..n_sites {
            sites.push(SiteSnapshot::decode(dec)?);
        }
        let n_views = dec.len()?;
        let mut views = Vec::with_capacity(n_views.min(4096));
        for _ in 0..n_views {
            views.push(ViewSnapshot::decode(dec)?);
        }
        Ok(EngineSnapshot {
            mkb,
            sites,
            views,
            config: EngineConfig::decode(dec)?,
        })
    }
}

/// Writes a snapshot file atomically (temp file + rename + directory
/// fsync). The final directory fsync is part of the guarantee: without it
/// a crash can lose the rename and the "durable" snapshot with it.
///
/// # Errors
///
/// I/O failures (including a failed directory fsync — the snapshot is
/// only atomic-durable once the rename itself is on disk), or
/// [`Error::TooLarge`] when the encoded state exceeds the `u32` length
/// prefix.
pub fn write_snapshot_file(path: &Path, seq: u64, snapshot: &EngineSnapshot) -> Result<u64> {
    let payload = snapshot.to_bytes();
    write_anchored_file(
        path,
        SNAPSHOT_MAGIC,
        &[seq, snapshot.generation()],
        &payload,
        "snapshot",
    )
}

/// Shared atomic-write path for snapshot-shaped files: `magic ++ header
/// words (u64 LE each) ++ len (u32) ++ crc64 ++ payload`, written to a
/// temp file, fsync'd, renamed into place, with the parent directory
/// fsync'd afterwards so the rename survives power loss.
fn write_anchored_file(
    path: &Path,
    magic: &[u8; 8],
    header_words: &[u64],
    payload: &[u8],
    what: &'static str,
) -> Result<u64> {
    let len = u32::try_from(payload.len()).map_err(|_| Error::too_large(payload.len(), what))?;
    let mut bytes = Vec::with_capacity(payload.len() + 8 + header_words.len() * 8 + 12);
    bytes.extend_from_slice(magic);
    for word in header_words {
        bytes.extend_from_slice(&word.to_le_bytes());
    }
    bytes.extend_from_slice(&len.to_le_bytes());
    bytes.extend_from_slice(&crc64(payload).to_le_bytes());
    bytes.extend_from_slice(payload);

    let tmp = path.with_extension("tmp");
    {
        let mut file = File::create(&tmp).map_err(|e| Error::io(&tmp, e))?;
        use std::io::Write;
        file.write_all(&bytes).map_err(|e| Error::io(&tmp, e))?;
        file.sync_all().map_err(|e| Error::io(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| Error::io(path, e))?;
    // Persist the rename itself — propagated, not swallowed: an unsynced
    // rename is exactly the crash window the temp-file dance exists to
    // close.
    if let Some(dir) = path.parent() {
        crate::fsutil::sync_dir(dir)?;
    }
    Ok(bytes.len() as u64)
}

/// A parsed snapshot file.
#[derive(Debug)]
pub struct SnapshotFile {
    /// Sequence number: records `0..seq` are folded into this snapshot.
    pub seq: u64,
    /// MKB generation at the snapshot point.
    pub generation: u64,
    /// The state image.
    pub snapshot: EngineSnapshot,
}

/// Reads only a snapshot file's header (`seq`, `generation`), checking
/// the magic and that the payload length matches the file size — but not
/// the payload checksum. Cheap pre-filter for listings and backward scans
/// over large snapshots; anything that will actually be *loaded* must go
/// through [`read_snapshot_file`].
///
/// # Errors
///
/// I/O failures, or [`Error::Corrupt`] for a foreign/short/length-
/// inconsistent file.
pub fn read_snapshot_header(path: &Path) -> Result<(u64, u64)> {
    let mut file = File::open(path).map_err(|e| Error::io(path, e))?;
    let mut header = [0u8; 36];
    file.read_exact(&mut header).map_err(|_| {
        Error::corrupt(format!(
            "{} is not a snapshot file (short header)",
            path.display()
        ))
    })?;
    if &header[..8] != SNAPSHOT_MAGIC {
        return Err(Error::corrupt(format!(
            "{} is not a snapshot file (bad magic)",
            path.display()
        )));
    }
    let seq = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let generation = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    let len = u64::from(u32::from_le_bytes(
        header[24..28].try_into().expect("4 bytes"),
    ));
    let size = file.metadata().map_err(|e| Error::io(path, e))?.len();
    if size != 36 + len {
        return Err(Error::corrupt(format!(
            "{}: payload length {} does not match header {len}",
            path.display(),
            size.saturating_sub(36)
        )));
    }
    Ok((seq, generation))
}

/// Reads and validates a snapshot file.
///
/// # Errors
///
/// I/O failures, or [`Error::Corrupt`] when the header, checksum or
/// payload is damaged (recovery then falls back to an older snapshot).
pub fn read_snapshot_file(path: &Path) -> Result<SnapshotFile> {
    let mut file = File::open(path).map_err(|e| Error::io(path, e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| Error::io(path, e))?;
    if bytes.len() < 36 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(Error::corrupt(format!(
            "{} is not a snapshot file (bad or short header)",
            path.display()
        )));
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let generation = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes")) as usize;
    let crc = u64::from_le_bytes(bytes[28..36].try_into().expect("8 bytes"));
    if bytes.len() - 36 != len {
        return Err(Error::corrupt(format!(
            "{}: payload length {} does not match header {len}",
            path.display(),
            bytes.len() - 36
        )));
    }
    let payload = &bytes[36..];
    if crc64(payload) != crc {
        return Err(Error::corrupt(format!(
            "{}: snapshot checksum mismatch",
            path.display()
        )));
    }
    let snapshot = EngineSnapshot::from_bytes(payload)?;
    if snapshot.generation() != generation {
        return Err(Error::corrupt(format!(
            "{}: header generation {generation} disagrees with payload {}",
            path.display(),
            snapshot.generation()
        )));
    }
    Ok(SnapshotFile {
        seq,
        generation,
        snapshot,
    })
}

// ---------------------------------------------------------------------
// Incremental delta snapshots
// ---------------------------------------------------------------------

/// Magic prefix of a delta-snapshot file.
pub const DELTA_MAGIC: &[u8; 8] = b"EVEDLT01";

/// A site's metadata in a delta snapshot: identity plus the accounting
/// counters (always small), with the extents themselves carried only when
/// they changed since the base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaSite {
    /// Site id.
    pub id: u32,
    /// Site name.
    pub name: String,
    /// Block I/Os charged so far.
    pub io_count: u64,
    /// Messages charged so far.
    pub message_count: u64,
}

/// An incremental snapshot: the state *difference* against a base
/// snapshot (full or itself a delta) at `base_seq`. Large payloads — site
/// extents and materialized view extents — appear only when they changed
/// since the base, so checkpoint cost scales with the ops since the
/// anchor instead of with total warehouse state. The MKB and engine
/// configuration are always carried whole: they are metadata-sized and
/// make the delta self-describing (generation, schema) without loading
/// the base.
#[derive(Debug, Clone)]
pub struct DeltaSnapshot {
    /// Sequence number of the snapshot this delta applies on top of.
    pub base_seq: u64,
    /// The full MKB state (small; includes the generation).
    pub mkb: MkbState,
    /// The full engine configuration (small).
    pub config: EngineConfig,
    /// The complete site roster in id order — a site absent here was
    /// dropped since the base.
    pub sites: Vec<DeltaSite>,
    /// Relations whose extent or blocking factor changed (or are new),
    /// as `(site_id, relation, blocking_factor)`.
    pub changed_relations: Vec<(u32, Relation, u64)>,
    /// Relations dropped from a surviving site, as `(site_id, name)`.
    pub removed_relations: Vec<(u32, String)>,
    /// Views whose definition or extent changed (or are new).
    pub changed_views: Vec<ViewSnapshot>,
    /// Views dropped since the base.
    pub removed_views: Vec<String>,
}

/// Cheap relation equality for delta diffing: extents that still share
/// their tuple storage (`Arc` pointer identity — the common case for
/// untouched relations) are equal without comparing data; otherwise fall
/// back to a structural compare.
fn relation_unchanged(a: &Relation, b: &Relation) -> bool {
    a.shares_tuples_with(b) || a == b
}

impl DeltaSnapshot {
    /// The MKB generation captured in this delta.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.mkb.generation
    }

    /// Computes the delta from `base` (the snapshot at `base_seq`) to
    /// `current`. Extents that still share storage with the base are
    /// skipped without comparing tuples, so the diff itself is cheap when
    /// few relations changed.
    #[must_use]
    pub fn between(
        base_seq: u64,
        base: &EngineSnapshot,
        current: &EngineSnapshot,
    ) -> DeltaSnapshot {
        use std::collections::BTreeMap;

        let base_sites: BTreeMap<u32, &SiteSnapshot> =
            base.sites.iter().map(|s| (s.id, s)).collect();
        let mut sites = Vec::with_capacity(current.sites.len());
        let mut changed_relations = Vec::new();
        let mut removed_relations = Vec::new();
        for site in &current.sites {
            sites.push(DeltaSite {
                id: site.id,
                name: site.name.clone(),
                io_count: site.io_count,
                message_count: site.message_count,
            });
            let base_rels: BTreeMap<&str, (&Relation, u64)> = base_sites
                .get(&site.id)
                .map(|b| {
                    b.relations
                        .iter()
                        .map(|(rel, bfr)| (rel.name(), (rel, *bfr)))
                        .collect()
                })
                .unwrap_or_default();
            for (rel, bfr) in &site.relations {
                match base_rels.get(rel.name()) {
                    Some((base_rel, base_bfr))
                        if *base_bfr == *bfr && relation_unchanged(base_rel, rel) => {}
                    _ => changed_relations.push((site.id, rel.clone(), *bfr)),
                }
            }
            let current_names: std::collections::BTreeSet<&str> =
                site.relations.iter().map(|(rel, _)| rel.name()).collect();
            for name in base_rels.keys() {
                if !current_names.contains(name) {
                    removed_relations.push((site.id, (*name).to_owned()));
                }
            }
        }

        let base_views: BTreeMap<&str, &ViewSnapshot> = base
            .views
            .iter()
            .map(|v| (v.def.name.as_str(), v))
            .collect();
        let mut changed_views = Vec::new();
        for view in &current.views {
            match base_views.get(view.def.name.as_str()) {
                Some(b) if b.def == view.def && relation_unchanged(&b.extent, &view.extent) => {}
                _ => changed_views.push(view.clone()),
            }
        }
        let current_views: std::collections::BTreeSet<&str> =
            current.views.iter().map(|v| v.def.name.as_str()).collect();
        let removed_views = base_views
            .keys()
            .filter(|name| !current_views.contains(*name))
            .map(|name| (*name).to_owned())
            .collect();

        DeltaSnapshot {
            base_seq,
            mkb: current.mkb.clone(),
            config: current.config.clone(),
            sites,
            changed_relations,
            removed_relations,
            changed_views,
            removed_views,
        }
    }

    /// Materializes the full state this delta describes by overlaying it
    /// on its base. Site and view orderings match the canonical
    /// [`EngineSnapshot`] layout (sites by id, relations and views by
    /// name), so the result is byte-identical to the full snapshot the
    /// engine would have written.
    #[must_use]
    pub fn apply_to(&self, base: &EngineSnapshot) -> EngineSnapshot {
        use std::collections::{BTreeMap, BTreeSet};

        let base_sites: BTreeMap<u32, &SiteSnapshot> =
            base.sites.iter().map(|s| (s.id, s)).collect();
        let mut changed: BTreeMap<u32, BTreeMap<&str, (&Relation, u64)>> = BTreeMap::new();
        for (site_id, rel, bfr) in &self.changed_relations {
            changed
                .entry(*site_id)
                .or_default()
                .insert(rel.name(), (rel, *bfr));
        }
        let mut removed: BTreeMap<u32, BTreeSet<&str>> = BTreeMap::new();
        for (site_id, name) in &self.removed_relations {
            removed.entry(*site_id).or_default().insert(name.as_str());
        }
        let sites = self
            .sites
            .iter()
            .map(|meta| {
                let mut rels: BTreeMap<&str, (&Relation, u64)> = base_sites
                    .get(&meta.id)
                    .map(|b| {
                        b.relations
                            .iter()
                            .map(|(rel, bfr)| (rel.name(), (rel, *bfr)))
                            .collect()
                    })
                    .unwrap_or_default();
                if let Some(gone) = removed.get(&meta.id) {
                    rels.retain(|name, _| !gone.contains(name));
                }
                if let Some(upserts) = changed.get(&meta.id) {
                    rels.extend(upserts.iter().map(|(name, v)| (*name, *v)));
                }
                SiteSnapshot {
                    id: meta.id,
                    name: meta.name.clone(),
                    relations: rels
                        .into_values()
                        .map(|(rel, bfr)| (rel.clone(), bfr))
                        .collect(),
                    io_count: meta.io_count,
                    message_count: meta.message_count,
                }
            })
            .collect();

        let mut views: BTreeMap<&str, &ViewSnapshot> = base
            .views
            .iter()
            .map(|v| (v.def.name.as_str(), v))
            .collect();
        for name in &self.removed_views {
            views.remove(name.as_str());
        }
        for view in &self.changed_views {
            views.insert(view.def.name.as_str(), view);
        }
        EngineSnapshot {
            mkb: self.mkb.clone(),
            sites,
            views: views.into_values().cloned().collect(),
            config: self.config.clone(),
        }
    }
}

impl Codec for DeltaSite {
    fn encode(&self, enc: &mut Enc) {
        enc.u32(self.id);
        enc.str(&self.name);
        enc.u64(self.io_count);
        enc.u64(self.message_count);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<DeltaSite> {
        Ok(DeltaSite {
            id: dec.u32()?,
            name: dec.str()?,
            io_count: dec.u64()?,
            message_count: dec.u64()?,
        })
    }
}

impl Codec for DeltaSnapshot {
    fn encode(&self, enc: &mut Enc) {
        enc.u64(self.base_seq);
        self.mkb.encode(enc);
        self.config.encode(enc);
        enc.usize(self.sites.len());
        for s in &self.sites {
            s.encode(enc);
        }
        enc.usize(self.changed_relations.len());
        for (site_id, rel, bfr) in &self.changed_relations {
            enc.u32(*site_id);
            rel.encode(enc);
            enc.u64(*bfr);
        }
        enc.usize(self.removed_relations.len());
        for (site_id, name) in &self.removed_relations {
            enc.u32(*site_id);
            enc.str(name);
        }
        enc.usize(self.changed_views.len());
        for v in &self.changed_views {
            v.encode(enc);
        }
        enc.usize(self.removed_views.len());
        for name in &self.removed_views {
            enc.str(name);
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<DeltaSnapshot> {
        let base_seq = dec.u64()?;
        let mkb = MkbState::decode(dec)?;
        let config = EngineConfig::decode(dec)?;
        let n_sites = dec.len()?;
        let mut sites = Vec::with_capacity(n_sites.min(4096));
        for _ in 0..n_sites {
            sites.push(DeltaSite::decode(dec)?);
        }
        let n_changed = dec.len()?;
        let mut changed_relations = Vec::with_capacity(n_changed.min(4096));
        for _ in 0..n_changed {
            let site_id = dec.u32()?;
            let rel = Relation::decode(dec)?;
            let bfr = dec.u64()?;
            changed_relations.push((site_id, rel, bfr));
        }
        let n_removed = dec.len()?;
        let mut removed_relations = Vec::with_capacity(n_removed.min(4096));
        for _ in 0..n_removed {
            let site_id = dec.u32()?;
            removed_relations.push((site_id, dec.str()?));
        }
        let n_views = dec.len()?;
        let mut changed_views = Vec::with_capacity(n_views.min(4096));
        for _ in 0..n_views {
            changed_views.push(ViewSnapshot::decode(dec)?);
        }
        let n_removed_views = dec.len()?;
        let mut removed_views = Vec::with_capacity(n_removed_views.min(4096));
        for _ in 0..n_removed_views {
            removed_views.push(dec.str()?);
        }
        Ok(DeltaSnapshot {
            base_seq,
            mkb,
            config,
            sites,
            changed_relations,
            removed_relations,
            changed_views,
            removed_views,
        })
    }
}

/// Writes a delta-snapshot file atomically.
///
/// ```text
/// delta file := MAGIC ("EVEDLT01") seq (u64) generation (u64)
///               base_seq (u64) len (u32) crc64 (u64) payload
/// payload    := DeltaSnapshot encoding
/// ```
///
/// # Errors
///
/// I/O failures (directory fsync included) or [`Error::TooLarge`].
pub fn write_delta_file(path: &Path, seq: u64, delta: &DeltaSnapshot) -> Result<u64> {
    let payload = to_bytes(delta);
    write_anchored_file(
        path,
        DELTA_MAGIC,
        &[seq, delta.generation(), delta.base_seq],
        &payload,
        "delta snapshot",
    )
}

/// A parsed delta-snapshot file.
#[derive(Debug)]
pub struct DeltaFile {
    /// Sequence number of the delta checkpoint.
    pub seq: u64,
    /// MKB generation at the checkpoint.
    pub generation: u64,
    /// The decoded delta.
    pub delta: DeltaSnapshot,
}

/// Reads only a delta file's header (`seq`, `generation`, `base_seq`),
/// checking the magic and that the payload length matches the file size —
/// the same cheap pre-filter contract as [`read_snapshot_header`].
///
/// # Errors
///
/// I/O failures, or [`Error::Corrupt`] for a foreign/short/length-
/// inconsistent file.
pub fn read_delta_header(path: &Path) -> Result<(u64, u64, u64)> {
    let mut file = File::open(path).map_err(|e| Error::io(path, e))?;
    let mut header = [0u8; 44];
    file.read_exact(&mut header).map_err(|_| {
        Error::corrupt(format!(
            "{} is not a delta-snapshot file (short header)",
            path.display()
        ))
    })?;
    if &header[..8] != DELTA_MAGIC {
        return Err(Error::corrupt(format!(
            "{} is not a delta-snapshot file (bad magic)",
            path.display()
        )));
    }
    let seq = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let generation = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    let base_seq = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
    let len = u64::from(u32::from_le_bytes(
        header[32..36].try_into().expect("4 bytes"),
    ));
    let size = file.metadata().map_err(|e| Error::io(path, e))?.len();
    if size != 44 + len {
        return Err(Error::corrupt(format!(
            "{}: payload length {} does not match header {len}",
            path.display(),
            size.saturating_sub(44)
        )));
    }
    Ok((seq, generation, base_seq))
}

/// Reads and validates a delta-snapshot file.
///
/// # Errors
///
/// I/O failures, or [`Error::Corrupt`] when the header, checksum or
/// payload is damaged (recovery then falls back to an older anchor).
pub fn read_delta_file(path: &Path) -> Result<DeltaFile> {
    let mut file = File::open(path).map_err(|e| Error::io(path, e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| Error::io(path, e))?;
    if bytes.len() < 44 || &bytes[..8] != DELTA_MAGIC {
        return Err(Error::corrupt(format!(
            "{} is not a delta-snapshot file (bad or short header)",
            path.display()
        )));
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let generation = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let base_seq = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(bytes[32..36].try_into().expect("4 bytes")) as usize;
    let crc = u64::from_le_bytes(bytes[36..44].try_into().expect("8 bytes"));
    if bytes.len() - 44 != len {
        return Err(Error::corrupt(format!(
            "{}: payload length {} does not match header {len}",
            path.display(),
            bytes.len() - 44
        )));
    }
    let payload = &bytes[44..];
    if crc64(payload) != crc {
        return Err(Error::corrupt(format!(
            "{}: delta-snapshot checksum mismatch",
            path.display()
        )));
    }
    let delta: DeltaSnapshot = from_bytes(payload)?;
    if delta.generation() != generation {
        return Err(Error::corrupt(format!(
            "{}: header generation {generation} disagrees with payload {}",
            path.display(),
            delta.generation()
        )));
    }
    if delta.base_seq != base_seq {
        return Err(Error::corrupt(format!(
            "{}: header base_seq {base_seq} disagrees with payload {}",
            path.display(),
            delta.base_seq
        )));
    }
    Ok(DeltaFile {
        seq,
        generation,
        delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_misd::{AttributeInfo, RelationInfo, SiteId};
    use eve_relational::{tup, DataType, Schema};

    fn sample_snapshot() -> EngineSnapshot {
        let mut mkb = eve_misd::Mkb::new();
        mkb.register_site(SiteId(1), "one").unwrap();
        mkb.register_relation(RelationInfo::new(
            "R",
            SiteId(1),
            vec![AttributeInfo::new("A", DataType::Int)],
            3,
        ))
        .unwrap();
        let extent = Relation::with_tuples(
            "R",
            Schema::of(&[("A", DataType::Int)]).unwrap(),
            vec![tup![1], tup![2], tup![1]],
        )
        .unwrap();
        let view = eve_esql::parse_view("CREATE VIEW V (VE = '~') AS SELECT R.A FROM R").unwrap();
        EngineSnapshot {
            mkb: mkb.export_state(),
            sites: vec![SiteSnapshot {
                id: 1,
                name: "one".into(),
                relations: vec![(extent.clone(), 10)],
                io_count: 42,
                message_count: 7,
            }],
            views: vec![ViewSnapshot { def: view, extent }],
            config: EngineConfig {
                sync_options: SyncOptions::default(),
                qc_params: QcParams::default(),
                workload: WorkloadModel::PerSite { updates: 10.0 },
                strategy: SelectionStrategy::QcBest,
                search: SearchModeState::Beam { width: 4 },
                index_hints: vec![IndexHintState {
                    relation: "R".into(),
                    column: "A".into(),
                    kind: IndexKindState::Sorted,
                }],
            },
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eve-store-snap-tests-{}-{name}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("snap.evs")
    }

    #[test]
    fn snapshot_encoding_is_canonical() {
        let snap = sample_snapshot();
        let a = snap.to_bytes();
        let b = snap.clone().to_bytes();
        assert_eq!(a, b);
        let back = EngineSnapshot::from_bytes(&a).unwrap();
        assert_eq!(back.to_bytes(), a);
        assert_eq!(back.generation(), snap.generation());
        assert_eq!(back.sites, snap.sites);
        assert_eq!(back.views, snap.views);
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let path = temp_path("roundtrip");
        let snap = sample_snapshot();
        write_snapshot_file(&path, 11, &snap).unwrap();
        let parsed = read_snapshot_file(&path).unwrap();
        assert_eq!(parsed.seq, 11);
        assert_eq!(parsed.generation, snap.generation());
        assert_eq!(parsed.snapshot.to_bytes(), snap.to_bytes());
        std::fs::remove_file(&path).ok();
    }

    /// A variant of [`sample_snapshot`] with one extent mutated, one
    /// relation added and the view dropped — the shapes a delta must carry.
    fn evolved_snapshot() -> EngineSnapshot {
        let mut snap = sample_snapshot();
        let grown = Relation::with_tuples(
            "R",
            Schema::of(&[("A", DataType::Int)]).unwrap(),
            vec![tup![1], tup![2], tup![1], tup![9]],
        )
        .unwrap();
        let extra = Relation::with_tuples(
            "S",
            Schema::of(&[("B", DataType::Int)]).unwrap(),
            vec![tup![7]],
        )
        .unwrap();
        snap.sites[0].relations = vec![(grown, 10), (extra, 12)];
        snap.sites[0].io_count += 5;
        snap.views.clear();
        snap
    }

    #[test]
    fn delta_between_then_apply_is_byte_identical() {
        let base = sample_snapshot();
        let current = evolved_snapshot();
        let delta = DeltaSnapshot::between(3, &base, &current);
        // Only the touched extents travel: R changed, S is new, the view
        // was removed — and the unchanged case carries nothing.
        assert_eq!(delta.changed_relations.len(), 2);
        assert_eq!(delta.removed_views, vec!["V".to_owned()]);
        assert_eq!(delta.apply_to(&base).to_bytes(), current.to_bytes());

        // An untouched engine produces an (almost) empty delta: shared
        // tuple storage short-circuits the extent comparison.
        let idle = DeltaSnapshot::between(3, &base, &base.clone());
        assert!(idle.changed_relations.is_empty());
        assert!(idle.changed_views.is_empty());
        assert!(idle.removed_relations.is_empty());
        assert!(idle.removed_views.is_empty());
        assert_eq!(idle.apply_to(&base).to_bytes(), base.to_bytes());
    }

    #[test]
    fn delta_file_roundtrip_and_damage_detection() {
        let dir = std::env::temp_dir().join(format!(
            "eve-store-snap-tests-{}-delta-file",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.evd");
        let base = sample_snapshot();
        let current = evolved_snapshot();
        let delta = DeltaSnapshot::between(3, &base, &current);
        write_delta_file(&path, 5, &delta).unwrap();

        let (seq, generation, base_seq) = read_delta_header(&path).unwrap();
        assert_eq!((seq, generation, base_seq), (5, delta.generation(), 3));
        let parsed = read_delta_file(&path).unwrap();
        assert_eq!(parsed.seq, 5);
        assert_eq!(
            parsed.delta.apply_to(&base).to_bytes(),
            current.to_bytes(),
            "the decoded delta reproduces the state exactly"
        );

        // Payload damage is detected by checksum.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_delta_file(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_snapshot_is_detected() {
        let path = temp_path("damaged");
        write_snapshot_file(&path, 0, &sample_snapshot()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_snapshot_file(&path).unwrap_err();
        assert!(err.to_string().contains("checksum") || err.to_string().contains("corrupt"));
        // Truncation is also detected.
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(read_snapshot_file(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
