//! The group-commit writer: a bounded append queue in front of an
//! [`EvolutionStore`], amortizing one fsync over many records.
//!
//! ## Protocol (leader/follower)
//!
//! Callers [`GroupCommitLog::enqueue`] a record — framing happens off-lock,
//! since a frame does not depend on its sequence number — and block on the
//! returned [`CommitTicket`]. The first waiter to find the queue unclaimed
//! becomes the **leader**: it optionally dwells up to `max_delay` for more
//! arrivals, drains up to `max_batch` entries, writes them as one
//! contiguous buffer with a single fsync
//! ([`EvolutionStore::append_encoded_batch`]), then distributes sequence
//! numbers (or the shared error) to every follower's ticket and wakes
//! them. Followers that enqueued while a flush was in flight simply ride
//! the *next* leader's batch — under fsync pressure the queue naturally
//! fills while the device is busy, which is where the 10–50× amortization
//! comes from even with `max_delay = 0`.
//!
//! ## Crash semantics
//!
//! Durability acknowledgement moves from "append returned" to "ticket
//! resolved": a record is durable iff [`CommitTicket::wait`] returned
//! `Ok`. A crash between the buffer write and the fsync tears the batch —
//! recovery truncates at the last intact *frame*, which is always at or
//! after the last acknowledged batch boundary, because no ticket in a
//! batch resolves before that batch's fsync returns. Records still queued
//! (followers whose batch never flushed) simply never existed on disk.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::error::{Error, Result};
use crate::log::{frame, LogRecord, SealedRecord};
use crate::store::EvolutionStore;

/// Locks a mutex, ignoring poisoning: a panicking appender must not brick
/// every other appender — the store's own torn-tail recovery already
/// handles half-written state.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Flush policy of the group-commit writer.
#[derive(Debug, Clone, Copy)]
pub struct GroupCommitPolicy {
    /// Most records a single flush may cover. Enqueueing past this bound
    /// drives a flush inline, so the queue never grows without bound.
    pub max_batch: usize,
    /// How long a leader dwells for more arrivals before flushing. Zero
    /// (the default) flushes immediately — a lone appender keeps
    /// fsync-per-record latency, and concurrent appenders still batch
    /// because arrivals during the in-flight fsync ride the next one.
    pub max_delay: Duration,
}

impl Default for GroupCommitPolicy {
    fn default() -> GroupCommitPolicy {
        GroupCommitPolicy {
            max_batch: 512,
            max_delay: Duration::ZERO,
        }
    }
}

/// Completion state of one enqueued record, shared between the enqueuer's
/// ticket and the leader that flushes it. Per-ticket condvars avoid a
/// thundering herd on every flush.
#[derive(Debug, Default)]
struct Slot {
    state: Mutex<Option<std::result::Result<u64, Arc<Error>>>>,
    cv: Condvar,
}

/// The pending queue: framed bytes plus each record's completion slot.
#[derive(Debug, Default)]
struct Queue {
    pending: VecDeque<(Vec<u8>, Arc<Slot>)>,
    /// Whether a leader currently holds the flush (the store write happens
    /// outside the queue lock, so enqueues stay concurrent with fsync).
    flushing: bool,
}

/// A group-commit front-end owning an [`EvolutionStore`]. Shared across
/// appender threads by reference (`&GroupCommitLog` is `Sync`); other
/// store operations (snapshots, travel, stats) go through
/// [`GroupCommitLog::with_store`], which drains the queue first so the
/// store never checkpoints with acknowledged-but-unwritten records…
/// there are none by construction, but *queued* records must not be
/// silently reordered past a snapshot either.
#[derive(Debug)]
pub struct GroupCommitLog {
    queue: Mutex<Queue>,
    store: Mutex<EvolutionStore>,
    policy: GroupCommitPolicy,
}

/// A claim on one enqueued record. [`CommitTicket::wait`] blocks until the
/// record's batch is fsync'd and returns its sequence number — the
/// durability acknowledgement.
#[derive(Debug)]
pub struct CommitTicket<'a> {
    log: &'a GroupCommitLog,
    slot: Arc<Slot>,
}

impl GroupCommitLog {
    /// Wraps a store with the given flush policy.
    #[must_use]
    pub fn new(store: EvolutionStore, policy: GroupCommitPolicy) -> GroupCommitLog {
        GroupCommitLog {
            queue: Mutex::new(Queue::default()),
            store: Mutex::new(store),
            policy,
        }
    }

    /// The flush policy.
    #[must_use]
    pub fn policy(&self) -> GroupCommitPolicy {
        self.policy
    }

    /// Enqueues one record for the next group commit. The frame is encoded
    /// before any lock is taken. Returns a ticket; the record is durable
    /// only once [`CommitTicket::wait`] returns `Ok`.
    ///
    /// # Errors
    ///
    /// [`Error::TooLarge`] when the record exceeds the frame format.
    pub fn enqueue(&self, post_generation: u64, record: LogRecord) -> Result<CommitTicket<'_>> {
        let bytes = frame(&SealedRecord {
            post_generation,
            record,
        })?;
        let slot = Arc::new(Slot::default());
        let overflowing = {
            let mut queue = lock(&self.queue);
            queue.pending.push_back((bytes, Arc::clone(&slot)));
            queue.pending.len() >= self.policy.max_batch && !queue.flushing
        };
        if overflowing {
            // Bound the queue: the enqueuer itself leads a flush once a
            // full batch is waiting, instead of letting memory grow until
            // somebody waits on a ticket.
            self.flush_round(false);
        }
        Ok(CommitTicket { log: self, slot })
    }

    /// Enqueue + wait in one call: the drop-in durable append.
    ///
    /// # Errors
    ///
    /// As [`GroupCommitLog::enqueue`] and [`CommitTicket::wait`].
    pub fn append_durable(&self, post_generation: u64, record: LogRecord) -> Result<u64> {
        self.enqueue(post_generation, record)?.wait()
    }

    /// One leader round. Returns `true` if this call flushed a batch,
    /// `false` if the queue was empty or another leader held the flush.
    fn flush_round(&self, dwell: bool) -> bool {
        let batch: Vec<(Vec<u8>, Arc<Slot>)> = {
            let mut queue = lock(&self.queue);
            if queue.flushing || queue.pending.is_empty() {
                return false;
            }
            queue.flushing = true;
            if dwell && !self.policy.max_delay.is_zero() {
                // Dwell for more arrivals, up to the batch bound. The
                // deadline is absolute so spurious wakeups don't extend it.
                let deadline = Instant::now() + self.policy.max_delay;
                while queue.pending.len() < self.policy.max_batch {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    // No dedicated arrival condvar: arrivals are frequent
                    // under contention (where dwelling matters) — poll in
                    // short slices of the remaining window.
                    let slice = (deadline - now).min(Duration::from_micros(200));
                    drop(queue);
                    std::thread::sleep(slice);
                    queue = lock(&self.queue);
                }
            }
            let n = queue.pending.len().min(self.policy.max_batch);
            queue.pending.drain(..n).collect()
        };

        let outcome = {
            let mut store = lock(&self.store);
            let frames: Vec<&[u8]> = batch.iter().map(|(bytes, _)| bytes.as_slice()).collect();
            store.append_encoded_batch(&frames)
        };
        match outcome {
            Ok(first_seq) => {
                for (offset, (_, slot)) in batch.iter().enumerate() {
                    let mut state = lock(&slot.state);
                    *state = Some(Ok(first_seq + offset as u64));
                    slot.cv.notify_all();
                }
            }
            Err(e) => {
                // The whole batch shares the failure: nothing in it was
                // acknowledged and the store rolled back to its durable
                // prefix, so every sequence number is reused.
                let e = Arc::new(e);
                for (_, slot) in &batch {
                    let mut state = lock(&slot.state);
                    *state = Some(Err(Arc::clone(&e)));
                    slot.cv.notify_all();
                }
            }
        }
        lock(&self.queue).flushing = false;
        true
    }

    /// Drains every currently queued record to disk (callers still waiting
    /// on tickets are woken as usual).
    pub fn flush(&self) {
        while self.flush_round(false) {}
    }

    /// Runs `f` against the underlying store, after draining the queue so
    /// queued records are not reordered past whatever `f` does (e.g. a
    /// snapshot rotation).
    pub fn with_store<T>(&self, f: impl FnOnce(&mut EvolutionStore) -> T) -> T {
        self.flush();
        f(&mut lock(&self.store))
    }

    /// Drains the queue and returns the store.
    ///
    /// # Panics
    ///
    /// Never — poisoned locks are ignored, as everywhere in this module.
    #[must_use]
    pub fn into_store(self) -> EvolutionStore {
        self.flush();
        self.store
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl CommitTicket<'_> {
    /// Blocks until this record's batch is fsync'd, returning its sequence
    /// number. The calling thread *participates* in the protocol: if no
    /// leader is active it becomes one (flushing its own record, possibly
    /// with a `max_delay` dwell); otherwise it waits on its completion
    /// slot and re-checks — a leader may have drained a capped batch that
    /// excluded this record, in which case the next round picks it up.
    ///
    /// # Errors
    ///
    /// [`Error::State`] wrapping the batch's shared store error: the
    /// write failed, nothing in the batch was acknowledged, and the
    /// store rolled back to its durable prefix.
    pub fn wait(self) -> Result<u64> {
        loop {
            {
                let state = lock(&self.slot.state);
                if let Some(outcome) = state.as_ref() {
                    return match outcome {
                        Ok(seq) => Ok(*seq),
                        Err(e) => Err(Error::state(format!("group commit failed: {e}"))),
                    };
                }
            }
            if self.log.flush_round(true) {
                continue;
            }
            // Another leader is mid-flush (or just finished). Wait on our
            // slot; the timeout covers the race where that leader's batch
            // was capped without us and no other waiter drives a round.
            let state = lock(&self.slot.state);
            if state.is_some() {
                continue;
            }
            let (state, _) = self
                .slot
                .cv
                .wait_timeout(state, Duration::from_millis(1))
                .unwrap_or_else(PoisonError::into_inner);
            drop(state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{EngineConfig, EngineSnapshot, SearchModeState};
    use eve_relational::tup;
    use eve_sync::EvolutionOp;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eve-store-group-tests-{}-{}-{name}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn empty_snapshot() -> EngineSnapshot {
        EngineSnapshot {
            mkb: eve_misd::Mkb::new().export_state(),
            sites: Vec::new(),
            views: Vec::new(),
            config: EngineConfig {
                sync_options: eve_sync::SyncOptions::default(),
                qc_params: eve_qc::QcParams::default(),
                workload: eve_qc::WorkloadModel::SingleUpdate,
                strategy: eve_qc::SelectionStrategy::QcBest,
                search: SearchModeState::default(),
            },
        }
    }

    fn record(k: i64) -> LogRecord {
        LogRecord::Batch(vec![EvolutionOp::insert("R", vec![tup![k]])])
    }

    fn fresh_log(name: &str) -> (PathBuf, GroupCommitLog) {
        let dir = temp_dir(name);
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        (
            dir,
            GroupCommitLog::new(store, GroupCommitPolicy::default()),
        )
    }

    #[test]
    fn single_threaded_appends_keep_exact_seq_order() {
        let (dir, log) = fresh_log("single");
        for k in 0..10 {
            let seq = log.append_durable(0, record(k)).unwrap();
            assert_eq!(seq, k as u64);
        }
        let store = log.into_store();
        assert_eq!(store.next_seq(), 10);
        let stats = store.stats();
        assert_eq!(stats.records_appended, 10);
        assert_eq!(stats.group_commits, stats.fsyncs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_appends_all_durable_with_amortized_fsyncs() {
        let (dir, log) = fresh_log("concurrent");
        const THREADS: i64 = 8;
        const PER_THREAD: i64 = 25;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let log = &log;
                scope.spawn(move || {
                    let mut last = None;
                    for k in 0..PER_THREAD {
                        let seq = log.append_durable(0, record(t * PER_THREAD + k)).unwrap();
                        // Per-thread acknowledgement order follows call
                        // order even when batches interleave threads.
                        if let Some(prev) = last {
                            assert!(seq > prev);
                        }
                        last = Some(seq);
                    }
                });
            }
        });
        let store = log.into_store();
        let stats = store.stats();
        assert_eq!(stats.records_appended, (THREADS * PER_THREAD) as u64);
        assert!(
            stats.fsyncs <= stats.records_appended,
            "fsyncs {} > records {}",
            stats.fsyncs,
            stats.records_appended
        );
        drop(store);
        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.tail.len(), (THREADS * PER_THREAD) as usize);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn queue_overflow_flushes_inline_without_a_waiter() {
        let dir = temp_dir("overflow");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        let log = GroupCommitLog::new(
            store,
            GroupCommitPolicy {
                max_batch: 4,
                max_delay: Duration::ZERO,
            },
        );
        let mut tickets = Vec::new();
        for k in 0..10 {
            tickets.push(log.enqueue(0, record(k)).unwrap());
        }
        // Two full batches of 4 flushed inline during enqueue; the last 2
        // records flush when their tickets are waited.
        let mid_fsyncs = log.with_store(|s| s.stats().fsyncs);
        assert!(mid_fsyncs >= 2);
        let seqs: Vec<u64> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<u64>>());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropping_unwaited_tickets_loses_only_unacknowledged_records() {
        // "Crash with N followers queued": enqueued-but-never-flushed
        // records are not durable — and nothing else is lost.
        let (dir, log) = fresh_log("drop-queued");
        log.append_durable(0, record(0)).unwrap();
        log.append_durable(0, record(1)).unwrap();
        let _t2 = log.enqueue(0, record(2)).unwrap();
        let _t3 = log.enqueue(0, record(3)).unwrap();
        drop(_t2);
        drop(_t3);
        drop(log); // crash: queued records never reached disk

        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(
            recovered.tail.len(),
            2,
            "exactly the acknowledged records survive"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn with_store_drains_queued_records_before_running() {
        let (dir, log) = fresh_log("drain");
        let _ticket = log.enqueue(0, record(7)).unwrap();
        let next_seq = log.with_store(|s| s.next_seq());
        assert_eq!(next_seq, 1, "the queued record was flushed first");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dwell_policy_batches_without_losing_records() {
        let dir = temp_dir("dwell");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        let log = GroupCommitLog::new(
            store,
            GroupCommitPolicy {
                max_batch: 64,
                max_delay: Duration::from_millis(2),
            },
        );
        std::thread::scope(|scope| {
            for t in 0..4i64 {
                let log = &log;
                scope.spawn(move || {
                    for k in 0..10 {
                        log.append_durable(0, record(t * 10 + k)).unwrap();
                    }
                });
            }
        });
        let store = log.into_store();
        assert_eq!(store.stats().records_appended, 40);
        drop(store);
        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.tail.len(), 40);
        std::fs::remove_dir_all(&dir).ok();
    }
}
