//! The group-commit writer: a bounded append queue in front of an
//! [`EvolutionStore`], amortizing one fsync over many records.
//!
//! ## Protocol (leader/follower)
//!
//! Callers [`GroupCommitLog::enqueue`] a record — framing happens off-lock,
//! since a frame does not depend on its sequence number — and block on the
//! returned [`CommitTicket`]. The first waiter to find the queue unclaimed
//! becomes the **leader**: it optionally dwells up to `max_delay` for more
//! arrivals, drains up to `max_batch` entries, writes them as one
//! contiguous buffer with a single fsync
//! ([`EvolutionStore::append_encoded_batch`]), then distributes sequence
//! numbers (or the shared error) to every follower's ticket and wakes
//! them. Followers that enqueued while a flush was in flight simply ride
//! the *next* leader's batch — under fsync pressure the queue naturally
//! fills while the device is busy, which is where the 10–50× amortization
//! comes from even with `max_delay = 0`.
//!
//! ## Crash semantics
//!
//! Durability acknowledgement moves from "append returned" to "ticket
//! resolved": a record is durable iff [`CommitTicket::wait`] returned
//! `Ok`. A crash between the buffer write and the fsync tears the batch —
//! recovery truncates at the last intact *frame*, which is always at or
//! after the last acknowledged batch boundary, because no ticket in a
//! batch resolves before that batch's fsync returns. Records still queued
//! (followers whose batch never flushed) simply never existed on disk.
//!
//! ## Shutdown semantics
//!
//! No ticket may wait forever on a condvar nobody will signal. Dropping
//! the log (or calling [`GroupCommitLog::shutdown`]) resolves every still-
//! queued slot with a typed [`Error::Shutdown`] — queued records stay
//! unacknowledged and are *not* flushed, preserving the exactly-the-acked-
//! prefix crash contract. A leader that panics mid-flush likewise resolves
//! its claimed batch with [`Error::Shutdown`] and releases the flush claim
//! on unwind, so followers never spin behind a dead leader.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::error::{Error, Result};
use crate::log::{frame, LogRecord, SealedRecord};
use crate::store::EvolutionStore;

/// Locks a mutex, ignoring poisoning: a panicking appender must not brick
/// every other appender — the store's own torn-tail recovery already
/// handles half-written state.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Flush policy of the group-commit writer.
#[derive(Debug, Clone, Copy)]
pub struct GroupCommitPolicy {
    /// Most records a single flush may cover. Enqueueing past this bound
    /// drives a flush inline, so the queue never grows without bound.
    pub max_batch: usize,
    /// How long a leader dwells for more arrivals before flushing. Zero
    /// (the default) flushes immediately — a lone appender keeps
    /// fsync-per-record latency, and concurrent appenders still batch
    /// because arrivals during the in-flight fsync ride the next one.
    pub max_delay: Duration,
}

impl Default for GroupCommitPolicy {
    fn default() -> GroupCommitPolicy {
        GroupCommitPolicy {
            max_batch: 512,
            max_delay: Duration::ZERO,
        }
    }
}

/// Completion state of one enqueued record, shared between the enqueuer's
/// ticket and the leader that flushes it. Per-ticket condvars avoid a
/// thundering herd on every flush.
#[derive(Debug, Default)]
struct Slot {
    state: Mutex<Option<std::result::Result<u64, Arc<Error>>>>,
    cv: Condvar,
}

/// The pending queue: framed bytes plus each record's completion slot.
#[derive(Debug, Default)]
struct Queue {
    pending: VecDeque<(Vec<u8>, Arc<Slot>)>,
    /// Whether a leader currently holds the flush (the store write happens
    /// outside the queue lock, so enqueues stay concurrent with fsync).
    flushing: bool,
    /// Once set, no new record is accepted and pending waiters have been
    /// (or are being) resolved with [`Error::Shutdown`].
    shutdown: bool,
}

/// Resolves a slot with the shared error, unless a leader already served
/// it, and wakes its waiter.
fn resolve_with_error(slot: &Slot, e: &Arc<Error>) {
    let mut state = lock(&slot.state);
    if state.is_none() {
        *state = Some(Err(Arc::clone(e)));
    }
    slot.cv.notify_all();
}

impl Drop for Queue {
    /// The drop-while-pending backstop: when the log is dropped with
    /// followers still holding unserved tickets, their slots resolve with
    /// a typed [`Error::Shutdown`] instead of leaving any waiter parked on
    /// a condvar nobody will ever signal. Queued records are *not* flushed
    /// — exactly the acknowledged prefix survives, as on a crash.
    fn drop(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let e = Arc::new(Error::shutdown(
            "the group-commit log was dropped while this record was still queued \
             (never acknowledged, not durable)",
        ));
        for (_, slot) in self.pending.drain(..) {
            resolve_with_error(&slot, &e);
        }
    }
}

/// A group-commit front-end owning an [`EvolutionStore`]. Shared across
/// appender threads by reference (`&GroupCommitLog` is `Sync`); other
/// store operations (snapshots, travel, stats) go through
/// [`GroupCommitLog::with_store`], which drains the queue first so the
/// store never checkpoints with acknowledged-but-unwritten records…
/// there are none by construction, but *queued* records must not be
/// silently reordered past a snapshot either.
#[derive(Debug)]
pub struct GroupCommitLog {
    queue: Mutex<Queue>,
    store: Mutex<EvolutionStore>,
    policy: GroupCommitPolicy,
}

/// A claim on one enqueued record. [`CommitTicket::wait`] blocks until the
/// record's batch is fsync'd and returns its sequence number — the
/// durability acknowledgement.
#[derive(Debug)]
pub struct CommitTicket<'a> {
    log: &'a GroupCommitLog,
    slot: Arc<Slot>,
}

/// Unwind protection for a flush leader: while armed, dropping it (i.e. a
/// panic anywhere between draining the batch and distributing outcomes)
/// resolves the claimed slots with [`Error::Shutdown`] and releases the
/// flush claim.
struct FlushGuard<'a> {
    log: &'a GroupCommitLog,
    batch: Option<Vec<(Vec<u8>, Arc<Slot>)>>,
}

impl Drop for FlushGuard<'_> {
    fn drop(&mut self) {
        let Some(batch) = self.batch.take() else {
            return; // disarmed: the leader completed normally
        };
        let e = Arc::new(Error::shutdown(
            "the group-commit leader died mid-flush; this record was not \
             acknowledged and may not be durable",
        ));
        for (_, slot) in &batch {
            resolve_with_error(slot, &e);
        }
        lock(&self.log.queue).flushing = false;
    }
}

impl GroupCommitLog {
    /// Wraps a store with the given flush policy.
    #[must_use]
    pub fn new(store: EvolutionStore, policy: GroupCommitPolicy) -> GroupCommitLog {
        GroupCommitLog {
            queue: Mutex::new(Queue::default()),
            store: Mutex::new(store),
            policy,
        }
    }

    /// The flush policy.
    #[must_use]
    pub fn policy(&self) -> GroupCommitPolicy {
        self.policy
    }

    /// Enqueues one record for the next group commit. The frame is encoded
    /// before any lock is taken. Returns a ticket; the record is durable
    /// only once [`CommitTicket::wait`] returns `Ok`.
    ///
    /// # Errors
    ///
    /// [`Error::TooLarge`] when the record exceeds the frame format, or
    /// [`Error::Shutdown`] when the log has been shut down.
    pub fn enqueue(&self, post_generation: u64, record: LogRecord) -> Result<CommitTicket<'_>> {
        let bytes = frame(&SealedRecord {
            post_generation,
            record,
        })?;
        let slot = Arc::new(Slot::default());
        let overflowing = {
            let mut queue = lock(&self.queue);
            if queue.shutdown {
                return Err(Error::shutdown(
                    "the group-commit log is shut down and accepts no new records",
                ));
            }
            queue.pending.push_back((bytes, Arc::clone(&slot)));
            queue.pending.len() >= self.policy.max_batch && !queue.flushing
        };
        if overflowing {
            // Bound the queue: the enqueuer itself leads a flush once a
            // full batch is waiting, instead of letting memory grow until
            // somebody waits on a ticket.
            self.flush_round(false);
        }
        Ok(CommitTicket { log: self, slot })
    }

    /// Enqueue + wait in one call: the drop-in durable append.
    ///
    /// # Errors
    ///
    /// As [`GroupCommitLog::enqueue`] and [`CommitTicket::wait`].
    pub fn append_durable(&self, post_generation: u64, record: LogRecord) -> Result<u64> {
        self.enqueue(post_generation, record)?.wait()
    }

    /// One leader round. Returns `true` if this call flushed a batch,
    /// `false` if the queue was empty or another leader held the flush.
    fn flush_round(&self, dwell: bool) -> bool {
        let batch: Vec<(Vec<u8>, Arc<Slot>)> = {
            let mut queue = lock(&self.queue);
            if queue.flushing || queue.pending.is_empty() {
                return false;
            }
            queue.flushing = true;
            if dwell && !self.policy.max_delay.is_zero() {
                // Dwell for more arrivals, up to the batch bound. The
                // deadline is absolute so spurious wakeups don't extend it.
                let deadline = Instant::now() + self.policy.max_delay;
                while queue.pending.len() < self.policy.max_batch {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    // No dedicated arrival condvar: arrivals are frequent
                    // under contention (where dwelling matters) — poll in
                    // short slices of the remaining window.
                    let slice = (deadline - now).min(Duration::from_micros(200));
                    drop(queue);
                    std::thread::sleep(slice);
                    queue = lock(&self.queue);
                }
            }
            let n = queue.pending.len().min(self.policy.max_batch);
            queue.pending.drain(..n).collect()
        };

        let _span = eve_trace::span("store.group_commit_round");
        // From here the leader owns the flush claim and the drained batch.
        // If it dies (the store panics mid-append), the guard's Drop still
        // resolves every claimed slot with a typed shutdown error and
        // releases the claim — otherwise followers would spin forever
        // behind `flushing == true` with nobody left to serve them.
        let mut guard = FlushGuard {
            log: self,
            batch: Some(batch),
        };
        let outcome = {
            let batch = guard.batch.as_ref().expect("armed above");
            let mut store = lock(&self.store);
            let frames: Vec<&[u8]> = batch.iter().map(|(bytes, _)| bytes.as_slice()).collect();
            store.append_encoded_batch(&frames)
        };
        let batch = guard.batch.take().expect("armed above");
        match outcome {
            Ok(first_seq) => {
                for (offset, (_, slot)) in batch.iter().enumerate() {
                    let mut state = lock(&slot.state);
                    *state = Some(Ok(first_seq + offset as u64));
                    slot.cv.notify_all();
                }
            }
            Err(e) => {
                // The whole batch shares the failure: nothing in it was
                // acknowledged and the store rolled back to its durable
                // prefix, so every sequence number is reused.
                let e = Arc::new(e);
                for (_, slot) in &batch {
                    resolve_with_error(slot, &e);
                }
            }
        }
        lock(&self.queue).flushing = false;
        true
    }

    /// Shuts the writer down: no further records are accepted, and every
    /// still-queued record's ticket resolves with [`Error::Shutdown`] —
    /// including waiters currently parked behind a leader that will never
    /// serve them. Records already acknowledged are unaffected; queued
    /// ones are *not* flushed (they were never acknowledged). Idempotent;
    /// also run by Drop.
    pub fn shutdown(&self) {
        let drained: Vec<Arc<Slot>> = {
            let mut queue = lock(&self.queue);
            queue.shutdown = true;
            queue.pending.drain(..).map(|(_, slot)| slot).collect()
        };
        if drained.is_empty() {
            return;
        }
        let e = Arc::new(Error::shutdown(
            "the group-commit log shut down while this record was still queued \
             (never acknowledged, not durable)",
        ));
        for slot in drained {
            resolve_with_error(&slot, &e);
        }
    }

    /// Drains every currently queued record to disk (callers still waiting
    /// on tickets are woken as usual).
    pub fn flush(&self) {
        while self.flush_round(false) {}
    }

    /// Runs `f` against the underlying store, after draining the queue so
    /// queued records are not reordered past whatever `f` does (e.g. a
    /// snapshot rotation).
    pub fn with_store<T>(&self, f: impl FnOnce(&mut EvolutionStore) -> T) -> T {
        self.flush();
        f(&mut lock(&self.store))
    }

    /// Drains the queue and returns the store.
    ///
    /// # Panics
    ///
    /// Never — poisoned locks are ignored, as everywhere in this module.
    #[must_use]
    pub fn into_store(self) -> EvolutionStore {
        self.flush();
        self.store
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl CommitTicket<'_> {
    /// Blocks until this record's batch is fsync'd, returning its sequence
    /// number. The calling thread *participates* in the protocol: if no
    /// leader is active it becomes one (flushing its own record, possibly
    /// with a `max_delay` dwell); otherwise it waits on its completion
    /// slot and re-checks — a leader may have drained a capped batch that
    /// excluded this record, in which case the next round picks it up.
    ///
    /// # Errors
    ///
    /// [`Error::State`] wrapping the batch's shared store error (the
    /// write failed, nothing in the batch was acknowledged, and the
    /// store rolled back to its durable prefix), or [`Error::Shutdown`]
    /// when the log shut down — or its leader died — before this
    /// record's batch was flushed.
    pub fn wait(self) -> Result<u64> {
        loop {
            {
                let state = lock(&self.slot.state);
                if let Some(outcome) = state.as_ref() {
                    return match outcome {
                        Ok(seq) => Ok(*seq),
                        // A shutdown outcome stays typed so callers can
                        // distinguish "log is gone" from a write failure.
                        Err(e) => Err(match e.as_ref() {
                            Error::Shutdown { detail } => Error::shutdown(detail.clone()),
                            other => Error::state(format!("group commit failed: {other}")),
                        }),
                    };
                }
            }
            if self.log.flush_round(true) {
                continue;
            }
            // Another leader is mid-flush (or just finished). Wait on our
            // slot; the timeout covers the race where that leader's batch
            // was capped without us and no other waiter drives a round.
            // A shutdown with this slot still unresolved means nobody will
            // ever serve it — surface the typed error instead of spinning.
            let state = lock(&self.slot.state);
            if state.is_some() {
                continue;
            }
            if lock(&self.log.queue).shutdown {
                return Err(Error::shutdown(
                    "the group-commit log shut down before this record's batch \
                     was flushed (never acknowledged, not durable)",
                ));
            }
            let (state, _) = self
                .slot
                .cv
                .wait_timeout(state, Duration::from_millis(1))
                .unwrap_or_else(PoisonError::into_inner);
            drop(state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{EngineConfig, EngineSnapshot, SearchModeState};
    use eve_relational::tup;
    use eve_sync::EvolutionOp;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eve-store-group-tests-{}-{}-{name}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn empty_snapshot() -> EngineSnapshot {
        EngineSnapshot {
            mkb: eve_misd::Mkb::new().export_state(),
            sites: Vec::new(),
            views: Vec::new(),
            config: EngineConfig {
                sync_options: eve_sync::SyncOptions::default(),
                qc_params: eve_qc::QcParams::default(),
                workload: eve_qc::WorkloadModel::SingleUpdate,
                strategy: eve_qc::SelectionStrategy::QcBest,
                search: SearchModeState::default(),
                index_hints: Vec::new(),
            },
        }
    }

    fn record(k: i64) -> LogRecord {
        LogRecord::Batch(vec![EvolutionOp::insert("R", vec![tup![k]])])
    }

    fn fresh_log(name: &str) -> (PathBuf, GroupCommitLog) {
        let dir = temp_dir(name);
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        (
            dir,
            GroupCommitLog::new(store, GroupCommitPolicy::default()),
        )
    }

    #[test]
    fn single_threaded_appends_keep_exact_seq_order() {
        let (dir, log) = fresh_log("single");
        for k in 0..10 {
            let seq = log.append_durable(0, record(k)).unwrap();
            assert_eq!(seq, k as u64);
        }
        let store = log.into_store();
        assert_eq!(store.next_seq(), 10);
        let stats = store.stats();
        assert_eq!(stats.records_appended, 10);
        assert_eq!(stats.group_commits, stats.fsyncs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_appends_all_durable_with_amortized_fsyncs() {
        let (dir, log) = fresh_log("concurrent");
        const THREADS: i64 = 8;
        const PER_THREAD: i64 = 25;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let log = &log;
                scope.spawn(move || {
                    let mut last = None;
                    for k in 0..PER_THREAD {
                        let seq = log.append_durable(0, record(t * PER_THREAD + k)).unwrap();
                        // Per-thread acknowledgement order follows call
                        // order even when batches interleave threads.
                        if let Some(prev) = last {
                            assert!(seq > prev);
                        }
                        last = Some(seq);
                    }
                });
            }
        });
        let store = log.into_store();
        let stats = store.stats();
        assert_eq!(stats.records_appended, (THREADS * PER_THREAD) as u64);
        assert!(
            stats.fsyncs <= stats.records_appended,
            "fsyncs {} > records {}",
            stats.fsyncs,
            stats.records_appended
        );
        drop(store);
        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.tail.len(), (THREADS * PER_THREAD) as usize);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn queue_overflow_flushes_inline_without_a_waiter() {
        let dir = temp_dir("overflow");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        let log = GroupCommitLog::new(
            store,
            GroupCommitPolicy {
                max_batch: 4,
                max_delay: Duration::ZERO,
            },
        );
        let mut tickets = Vec::new();
        for k in 0..10 {
            tickets.push(log.enqueue(0, record(k)).unwrap());
        }
        // Two full batches of 4 flushed inline during enqueue; the last 2
        // records flush when their tickets are waited.
        let mid_fsyncs = log.with_store(|s| s.stats().fsyncs);
        assert!(mid_fsyncs >= 2);
        let seqs: Vec<u64> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<u64>>());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropping_unwaited_tickets_loses_only_unacknowledged_records() {
        // "Crash with N followers queued": enqueued-but-never-flushed
        // records are not durable — and nothing else is lost.
        let (dir, log) = fresh_log("drop-queued");
        log.append_durable(0, record(0)).unwrap();
        log.append_durable(0, record(1)).unwrap();
        let _t2 = log.enqueue(0, record(2)).unwrap();
        let _t3 = log.enqueue(0, record(3)).unwrap();
        drop(_t2);
        drop(_t3);
        drop(log); // crash: queued records never reached disk

        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(
            recovered.tail.len(),
            2,
            "exactly the acknowledged records survive"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_while_pending_tickets_resolves_with_shutdown_error() {
        // The drop-while-pending regression: tickets still queued when the
        // log goes away must resolve with a typed `Error::Shutdown`, never
        // hang a condvar wait forever.

        // (a) A follower parked behind a leader that will never serve it
        // (simulated stuck flush claim): an explicit shutdown wakes it
        // with the typed error instead of leaving it to spin.
        let (dir, log) = fresh_log("shutdown-waiter");
        lock(&log.queue).flushing = true; // a leader claimed the flush and died
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| log.enqueue(0, record(1)).unwrap().wait());
            std::thread::sleep(Duration::from_millis(20));
            log.shutdown();
            let err = handle.join().unwrap().unwrap_err();
            assert!(
                matches!(err, Error::Shutdown { .. }),
                "expected Error::Shutdown, got {err:?}"
            );
        });
        // After shutdown, new records are refused with the same typed error.
        let err = log.append_durable(0, record(2)).unwrap_err();
        assert!(matches!(err, Error::Shutdown { .. }), "{err:?}");
        drop(log);
        std::fs::remove_dir_all(&dir).ok();

        // (b) Dropping the log itself with unserved tickets queued: every
        // pending slot resolves with `Error::Shutdown` (and the records,
        // never acknowledged, do not reach disk).
        let (dir, log) = fresh_log("shutdown-drop");
        lock(&log.queue).flushing = true; // nothing flushes the queue on drop paths
        let t1 = log.enqueue(0, record(1)).unwrap();
        let t2 = log.enqueue(0, record(2)).unwrap();
        let (s1, s2) = (Arc::clone(&t1.slot), Arc::clone(&t2.slot));
        drop(t1);
        drop(t2);
        drop(log);
        for slot in [&s1, &s2] {
            let state = lock(&slot.state);
            match state.as_ref() {
                Some(Err(e)) => assert!(matches!(e.as_ref(), Error::Shutdown { .. }), "{e:?}"),
                other => panic!("pending slot not resolved with shutdown: {other:?}"),
            }
        }
        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.tail.len(), 0, "queued records never reached disk");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn with_store_drains_queued_records_before_running() {
        let (dir, log) = fresh_log("drain");
        let _ticket = log.enqueue(0, record(7)).unwrap();
        let next_seq = log.with_store(|s| s.next_seq());
        assert_eq!(next_seq, 1, "the queued record was flushed first");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dwell_policy_batches_without_losing_records() {
        let dir = temp_dir("dwell");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        let log = GroupCommitLog::new(
            store,
            GroupCommitPolicy {
                max_batch: 64,
                max_delay: Duration::from_millis(2),
            },
        );
        std::thread::scope(|scope| {
            for t in 0..4i64 {
                let log = &log;
                scope.spawn(move || {
                    for k in 0..10 {
                        log.append_durable(0, record(t * 10 + k)).unwrap();
                    }
                });
            }
        });
        let store = log.into_store();
        assert_eq!(store.stats().records_appended, 40);
        drop(store);
        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.tail.len(), 40);
        std::fs::remove_dir_all(&dir).ok();
    }
}
