//! The write-ahead evolution log: length-prefixed, checksummed record
//! frames in append-only segment files.
//!
//! ## Frame format
//!
//! ```text
//! segment file  := MAGIC ("EVESEG01", 8 bytes) start_seq (u64 LE) frame*
//! frame         := len (u32 LE)  crc64 (u64 LE, over payload)  payload
//! payload       := post_generation (u64 LE)  LogRecord encoding
//! ```
//!
//! `post_generation` is the MKB mutation generation *after* the record was
//! applied — the index generation time-travel addresses history by.
//!
//! ## Torn tails
//!
//! A crash mid-`write` leaves a partial frame at the end of the active
//! segment: a short header, a short payload, or a payload whose checksum
//! does not match. [`read_segment`] detects all three, reports the byte
//! offset of the last intact frame, and recovery truncates the file there.
//! The same conditions anywhere *but* the tail of the last segment are
//! real corruption and fail recovery loudly.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use eve_esql::ViewDef;
use eve_misd::{JoinConstraint, PcConstraint};
use eve_relational::{Relation, Tuple};
use eve_sync::EvolutionOp;

use crate::checksum::crc64;
use crate::codec::{from_bytes, to_bytes, Codec, Dec, Enc};
use crate::error::{Error, Result};

/// Magic prefix of a log segment file (version baked into the last two
/// bytes).
pub const SEGMENT_MAGIC: &[u8; 8] = b"EVESEG01";

/// One durable operation of the evolution history. `Batch` carries the
/// paper's evolution ops (data updates + capability changes); the other
/// variants record the bootstrap/administrative mutations that precede
/// them, so a store can replay from an empty engine.
#[derive(Debug, Clone)]
pub enum LogRecord {
    /// `EveEngine::add_site`.
    AddSite {
        /// Site id.
        id: u32,
        /// Site name.
        name: String,
    },
    /// `EveEngine::register_relation` (metadata + initial extent).
    RegisterRelation {
        /// The relation's MKB description.
        info: eve_misd::RelationInfo,
        /// The initial extent hosted at the site.
        extent: Relation,
    },
    /// Base-data seeding without view maintenance (initial loading).
    SeedTuples {
        /// The seeded relation.
        relation: String,
        /// The seeded tuples.
        tuples: Vec<Tuple>,
    },
    /// `Mkb::add_pc_constraint`.
    AddPcConstraint(PcConstraint),
    /// `Mkb::add_join_constraint`.
    AddJoinConstraint(JoinConstraint),
    /// `Mkb::set_join_selectivity`.
    SetJoinSelectivity {
        /// One endpoint.
        left: String,
        /// The other endpoint.
        right: String,
        /// The pair selectivity.
        js: f64,
    },
    /// `Mkb::set_default_join_selectivity`.
    SetDefaultJoinSelectivity {
        /// The global default.
        js: f64,
    },
    /// `EveEngine::define_view` (the full definition, structurally).
    DefineView(ViewDef),
    /// `EveEngine::drop_view`.
    DropView {
        /// The dropped view's name.
        name: String,
    },
    /// One `EveEngine::apply_batch` call — the evolution ops in order.
    Batch(Vec<EvolutionOp>),
    /// `EveEngine::declare_index` — a persisted secondary-index hint.
    DeclareIndex(crate::snapshot::IndexHintState),
}

impl Codec for LogRecord {
    fn encode(&self, enc: &mut Enc) {
        match self {
            LogRecord::AddSite { id, name } => {
                enc.u8(0);
                enc.u32(*id);
                enc.str(name);
            }
            LogRecord::RegisterRelation { info, extent } => {
                enc.u8(1);
                info.encode(enc);
                extent.encode(enc);
            }
            LogRecord::SeedTuples { relation, tuples } => {
                enc.u8(2);
                enc.str(relation);
                crate::codec::vec_encode(tuples, enc);
            }
            LogRecord::AddPcConstraint(pc) => {
                enc.u8(3);
                pc.encode(enc);
            }
            LogRecord::AddJoinConstraint(jc) => {
                enc.u8(4);
                jc.encode(enc);
            }
            LogRecord::SetJoinSelectivity { left, right, js } => {
                enc.u8(5);
                enc.str(left);
                enc.str(right);
                enc.f64(*js);
            }
            LogRecord::SetDefaultJoinSelectivity { js } => {
                enc.u8(6);
                enc.f64(*js);
            }
            LogRecord::DefineView(view) => {
                enc.u8(7);
                view.encode(enc);
            }
            LogRecord::DropView { name } => {
                enc.u8(8);
                enc.str(name);
            }
            LogRecord::Batch(ops) => {
                enc.u8(9);
                crate::codec::vec_encode(ops, enc);
            }
            LogRecord::DeclareIndex(hint) => {
                enc.u8(10);
                hint.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<LogRecord> {
        Ok(match dec.u8()? {
            0 => LogRecord::AddSite {
                id: dec.u32()?,
                name: dec.str()?,
            },
            1 => LogRecord::RegisterRelation {
                info: eve_misd::RelationInfo::decode(dec)?,
                extent: Relation::decode(dec)?,
            },
            2 => LogRecord::SeedTuples {
                relation: dec.str()?,
                tuples: crate::codec::vec_decode(dec)?,
            },
            3 => LogRecord::AddPcConstraint(PcConstraint::decode(dec)?),
            4 => LogRecord::AddJoinConstraint(JoinConstraint::decode(dec)?),
            5 => LogRecord::SetJoinSelectivity {
                left: dec.str()?,
                right: dec.str()?,
                js: dec.f64()?,
            },
            6 => LogRecord::SetDefaultJoinSelectivity { js: dec.f64()? },
            7 => LogRecord::DefineView(ViewDef::decode(dec)?),
            8 => LogRecord::DropView { name: dec.str()? },
            9 => LogRecord::Batch(crate::codec::vec_decode(dec)?),
            10 => LogRecord::DeclareIndex(crate::snapshot::IndexHintState::decode(dec)?),
            other => return Err(Error::corrupt(format!("invalid LogRecord tag {other}"))),
        })
    }
}

/// A record as stored in a frame: the record plus the MKB generation
/// observed after applying it.
#[derive(Debug, Clone)]
pub struct SealedRecord {
    /// MKB generation after the record was applied.
    pub post_generation: u64,
    /// The logged operation.
    pub record: LogRecord,
}

impl Codec for SealedRecord {
    fn encode(&self, enc: &mut Enc) {
        enc.u64(self.post_generation);
        self.record.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<SealedRecord> {
        Ok(SealedRecord {
            post_generation: dec.u64()?,
            record: LogRecord::decode(dec)?,
        })
    }
}

/// Builds one on-disk frame (`len ++ crc ++ payload`) for a sealed record.
///
/// # Errors
///
/// [`Error::TooLarge`] when the encoded record does not fit the `u32`
/// length prefix — the limit surfaces as a typed error to the appender
/// instead of a panic that would abort the process (or recovery) on an
/// oversized record.
pub fn frame(record: &SealedRecord) -> Result<Vec<u8>> {
    let payload = to_bytes(record);
    let len =
        u32::try_from(payload.len()).map_err(|_| Error::too_large(payload.len(), "log record"))?;
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// The fixed segment header: magic + start sequence number.
#[must_use]
pub fn segment_header(start_seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(SEGMENT_MAGIC);
    out.extend_from_slice(&start_seq.to_le_bytes());
    out
}

/// Everything recovered from one segment file.
#[derive(Debug)]
pub struct SegmentContents {
    /// The sequence number of the segment's first record.
    pub start_seq: u64,
    /// The intact records, in order.
    pub records: Vec<SealedRecord>,
    /// Byte length of the intact prefix (header + whole frames). Anything
    /// past this offset is a torn tail.
    pub valid_len: u64,
    /// Bytes past the intact prefix (0 when the file ends exactly on a
    /// frame boundary).
    pub torn_bytes: u64,
}

/// Reads a whole segment file, stopping cleanly at a torn tail.
///
/// # Errors
///
/// I/O failures, or a missing/foreign header. Torn/corrupt *frames* are
/// not an error here — the caller decides whether a torn tail is
/// acceptable (last segment) or fatal (any earlier segment).
pub fn read_segment(path: &Path) -> Result<SegmentContents> {
    let mut file = File::open(path).map_err(|e| Error::io(path, e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| Error::io(path, e))?;

    if bytes.len() < 16 || &bytes[..8] != SEGMENT_MAGIC {
        return Err(Error::corrupt(format!(
            "{} is not an evolution-log segment (bad or short header)",
            path.display()
        )));
    }
    let start_seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));

    let mut records = Vec::new();
    let mut pos = 16usize;
    let valid_len = loop {
        // Everything here must be a *checked* read: the tail of a crashed
        // segment can be cut at any byte, and a torn `len` field can
        // declare any value up to `u32::MAX` — neither may ever panic on
        // slicing or overflow arithmetic. `None` from either getter means
        // the frame runs past the file's end: a torn tail.
        let Some(tail) = bytes.get(pos..) else {
            break pos; // defensive: pos is always <= len, but never slice-panic
        };
        if tail.is_empty() {
            break pos; // clean end on a frame boundary
        }
        let (Some(len_bytes), Some(crc_bytes)) = (tail.get(..4), tail.get(4..12)) else {
            break pos; // torn frame header (1..=11 bytes)
        };
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        let crc = u64::from_le_bytes(crc_bytes.try_into().expect("8 bytes"));
        // `12 + len` cannot overflow usize on 64-bit (len <= u32::MAX) but
        // the checked form keeps 32-bit targets honest too.
        let Some(payload) = 12usize.checked_add(len).and_then(|end| tail.get(12..end)) else {
            break pos; // torn payload (declared length overruns the file)
        };
        if crc64(payload) != crc {
            break pos; // torn / corrupt payload
        }
        // A frame that passes the checksum but fails decoding is real
        // corruption (the checksum says the bytes are what was written).
        let record: SealedRecord = from_bytes(payload).map_err(|e| {
            Error::corrupt(format!(
                "{} frame at offset {pos} passes its checksum but does not decode: {e}",
                path.display()
            ))
        })?;
        records.push(record);
        pos += 12 + len;
    };

    Ok(SegmentContents {
        start_seq,
        records,
        valid_len: valid_len as u64,
        torn_bytes: (bytes.len() - valid_len) as u64,
    })
}

/// Reads and validates only a segment file's 16-byte header, returning
/// its start sequence. Used to skip frame decoding for segments recovery
/// does not need to replay.
///
/// # Errors
///
/// I/O failures, or a missing/foreign header.
pub fn read_segment_header(path: &Path) -> Result<u64> {
    let mut file = File::open(path).map_err(|e| Error::io(path, e))?;
    let mut header = [0u8; 16];
    file.read_exact(&mut header).map_err(|_| {
        Error::corrupt(format!(
            "{} is not an evolution-log segment (short header)",
            path.display()
        ))
    })?;
    if &header[..8] != SEGMENT_MAGIC {
        return Err(Error::corrupt(format!(
            "{} is not an evolution-log segment (bad magic)",
            path.display()
        )));
    }
    Ok(u64::from_le_bytes(
        header[8..16].try_into().expect("8 bytes"),
    ))
}

/// Truncates a segment file to its intact prefix, discarding a torn tail.
///
/// # Errors
///
/// I/O failures.
pub fn truncate_segment(path: &Path, valid_len: u64) -> Result<()> {
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| Error::io(path, e))?;
    file.set_len(valid_len).map_err(|e| Error::io(path, e))?;
    file.sync_all().map_err(|e| Error::io(path, e))?;
    Ok(())
}

/// Appends raw bytes and flushes them to the OS.
pub(crate) fn append_all(file: &mut File, path: &Path, bytes: &[u8]) -> Result<()> {
    file.write_all(bytes).map_err(|e| Error::io(path, e))?;
    file.flush().map_err(|e| Error::io(path, e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::tup;

    fn sample_records() -> Vec<SealedRecord> {
        vec![
            SealedRecord {
                post_generation: 1,
                record: LogRecord::AddSite {
                    id: 1,
                    name: "one".into(),
                },
            },
            SealedRecord {
                post_generation: 2,
                record: LogRecord::Batch(vec![
                    EvolutionOp::insert("R", vec![tup![1, "x"]]),
                    EvolutionOp::delete("R", vec![tup![2, "y"]]),
                ]),
            },
            SealedRecord {
                post_generation: 2,
                record: LogRecord::SetJoinSelectivity {
                    left: "R".into(),
                    right: "S".into(),
                    js: 0.005,
                },
            },
        ]
    }

    fn write_segment(path: &Path, start_seq: u64, records: &[SealedRecord]) {
        let mut bytes = segment_header(start_seq);
        for r in records {
            bytes.extend_from_slice(&frame(r).unwrap());
        }
        std::fs::write(path, bytes).unwrap();
    }

    fn temp_file(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("eve-store-log-tests-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("segment.evl")
    }

    #[test]
    fn segment_roundtrip() {
        let path = temp_file("roundtrip");
        let records = sample_records();
        write_segment(&path, 7, &records);
        let contents = read_segment(&path).unwrap();
        assert_eq!(contents.start_seq, 7);
        assert_eq!(contents.records.len(), 3);
        assert_eq!(contents.torn_bytes, 0);
        assert_eq!(contents.records[1].post_generation, 2);
        match &contents.records[1].record {
            LogRecord::Batch(ops) => assert_eq!(ops.len(), 2),
            other => panic!("unexpected record {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_truncation_point_yields_a_clean_prefix() {
        let path = temp_file("truncation");
        let records = sample_records();
        write_segment(&path, 0, &records);
        let full = std::fs::read(&path).unwrap();
        // Frame boundaries, for the expected record counts.
        let mut boundaries = vec![16usize];
        {
            let mut pos = 16;
            for r in &records {
                pos += frame(r).unwrap().len();
                boundaries.push(pos);
            }
        }
        for cut in 16..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let contents = read_segment(&path).unwrap();
            let expected_records = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(
                contents.records.len(),
                expected_records,
                "cut at byte {cut}"
            );
            let expected_valid = boundaries[expected_records] as u64;
            assert_eq!(contents.valid_len, expected_valid, "cut at byte {cut}");
            assert_eq!(contents.torn_bytes, cut as u64 - expected_valid);
            // Truncation then re-read is stable.
            truncate_segment(&path, contents.valid_len).unwrap();
            let again = read_segment(&path).unwrap();
            assert_eq!(again.records.len(), expected_records);
            assert_eq!(again.torn_bytes, 0);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_payload_byte_stops_at_previous_boundary() {
        let path = temp_file("bitflip");
        let records = sample_records();
        write_segment(&path, 0, &records);
        let mut bytes = std::fs::read(&path).unwrap();
        let second_frame_start = 16 + frame(&records[0]).unwrap().len();
        // Flip a byte inside the second frame's payload.
        bytes[second_frame_start + 20] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let contents = read_segment(&path).unwrap();
        assert_eq!(contents.records.len(), 1, "only the first frame survives");
        assert_eq!(contents.valid_len, second_frame_start as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_tail_of_every_length_is_torn_not_a_panic() {
        // The short-tail torn-segment regression: a crash can leave a tail
        // of *any* length after the last intact frame — including the 1–3
        // byte stubs that don't even cover the `len` field, and headers
        // whose declared length overruns the file (up to `u32::MAX`).
        // Every such tail must scan as torn bytes, never panic, and
        // truncate to a clean prefix.
        let path = temp_file("short-tail");
        let records = sample_records();
        write_segment(&path, 3, &records);
        let intact = std::fs::read(&path).unwrap();

        // (a) Tails of every length 1..=24 after the full segment: covers
        // partial len fields (1-3 bytes), partial crc fields (4-11), and
        // short payloads against any plausible declared length.
        for tail_len in 1..=24usize {
            let mut bytes = intact.clone();
            bytes.extend(std::iter::repeat_n(0xAB, tail_len));
            std::fs::write(&path, &bytes).unwrap();
            let contents = read_segment(&path).unwrap();
            assert_eq!(contents.records.len(), records.len(), "tail {tail_len}");
            assert_eq!(contents.valid_len, intact.len() as u64, "tail {tail_len}");
            assert_eq!(contents.torn_bytes, tail_len as u64, "tail {tail_len}");
            truncate_segment(&path, contents.valid_len).unwrap();
            assert_eq!(read_segment(&path).unwrap().torn_bytes, 0);
        }

        // (b) A complete 12-byte frame header whose declared length is
        // absurd — u32::MAX and friends — followed by a few bytes. The
        // `pos + len` style arithmetic must not overflow or slice past
        // the end; the whole thing is one torn tail.
        for declared in [u32::MAX, u32::MAX - 1, 1 << 31, 4096] {
            let mut bytes = intact.clone();
            bytes.extend_from_slice(&declared.to_le_bytes());
            bytes.extend_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
            bytes.extend_from_slice(&[1, 2, 3]);
            std::fs::write(&path, &bytes).unwrap();
            let contents = read_segment(&path).unwrap();
            assert_eq!(contents.records.len(), records.len(), "declared {declared}");
            assert_eq!(contents.valid_len, intact.len() as u64);
            assert_eq!(contents.torn_bytes, 15);
        }

        // (c) Files shorter than the 16-byte segment header are a typed
        // corruption error (there is no intact prefix to keep), not a
        // panic.
        for cut in 0..16usize {
            std::fs::write(&path, &intact[..cut]).unwrap();
            let err = read_segment(&path).unwrap_err();
            assert!(err.to_string().contains("segment"), "cut {cut}: {err}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_file_is_rejected() {
        let path = temp_file("foreign");
        std::fs::write(&path, b"not a segment at all").unwrap();
        assert!(read_segment(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
