//! CRC-64 (ECMA-182 polynomial) over byte slices.
//!
//! Hand-rolled because the build environment has no registry access; a
//! table-driven implementation is plenty for the store's torn-write
//! detection (the adversary is a crashed `write(2)`, not an attacker).

/// The ECMA-182 generator polynomial (normal form).
const POLY: u64 = 0x42F0_E1EB_A9EA_3693;

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u64; 256] = build_table();

const fn build_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u64) << 56;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & (1 << 63) != 0 {
                (crc << 1) ^ POLY
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-64/ECMA of `bytes` (initial value and final xor of all-ones, so
/// leading zero bytes and the empty input all checksum distinctly).
#[must_use]
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc: u64 = u64::MAX;
    for &b in bytes {
        let idx = ((crc >> 56) as u8 ^ b) as usize;
        crc = TABLE[idx] ^ (crc << 8);
    }
    crc ^ u64::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_stable() {
        assert_eq!(crc64(&[]), crc64(&[]));
        assert_ne!(crc64(&[]), crc64(&[0]));
    }

    #[test]
    fn deterministic_and_sensitive() {
        let a = crc64(b"evolution log record");
        assert_eq!(a, crc64(b"evolution log record"));
        assert_ne!(a, crc64(b"evolution log recorD"));
        assert_ne!(a, crc64(b"evolution log recor"));
        assert_ne!(crc64(&[0]), crc64(&[0, 0]), "length-extension sensitive");
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"0123456789abcdef".to_vec();
        let reference = crc64(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc64(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }
}
