//! # eve-store
//!
//! The durable evolution log: persistence for the warehouse's *history*.
//!
//! The paper's whole premise is that the information space evolves —
//! sequences of capability and data changes drive re-synchronization — yet
//! an in-memory engine forgets that history on restart. This crate makes
//! the evolution stream itself the unit of durability:
//!
//! * [`log`] — a length-prefixed, CRC-64-checksummed **write-ahead
//!   evolution log**. Every record carries the MKB generation observed
//!   after applying it; appends are `fsync`'d before acknowledgement, and
//!   torn tail frames from a crash mid-write are detected and truncated.
//! * [`snapshot`] — canonical full-state **snapshots** (MKB incl.
//!   generation, per-site relations/extents, installed rewritings, engine
//!   configuration). Equal states encode to equal bytes, which is the
//!   "byte-identical" notion the differential crash-recovery suites pin.
//! * [`store`] — the [`EvolutionStore`]: one directory of segments and
//!   snapshots with **crash recovery** (newest intact snapshot + log tail
//!   replay), segment rotation on checkpoint, compaction, and the
//!   **generation time-travel** planner ([`EvolutionStore::plan_travel`])
//!   that reconstructs the state as of any retained MKB generation.
//! * [`group`] — the **group-commit writer** ([`GroupCommitLog`]): a
//!   bounded append queue where one leader drains waiting records into a
//!   single contiguous write and a single fsync, amortizing durability
//!   cost across concurrent appenders (commit tickets acknowledge each
//!   record only after its batch's fsync returns).
//! * [`codec`] — the hand-rolled binary codec for every persisted domain
//!   type (std-only; the build environment has no registry access).
//!
//! The crate is engine-agnostic by design: it plans recovery and travel
//! (snapshot + records), while `eve-system`'s `DurableEngine` owns the
//! replay through the live `apply_batch` pipeline — keeping the dependency
//! arrow pointing from the runtime to the storage layer.

pub mod checksum;
pub mod codec;
pub mod error;
mod fsutil;
pub mod group;
pub mod log;
pub mod snapshot;
pub mod store;

pub use codec::{from_bytes, to_bytes, vec_decode, vec_encode, Codec, Dec, Enc};
pub use error::{Error, Result};
pub use group::{CommitTicket, GroupCommitLog, GroupCommitPolicy};
pub use log::{LogRecord, SealedRecord};
pub use snapshot::{
    DeltaSite, DeltaSnapshot, EngineConfig, EngineSnapshot, IndexHintState, IndexKindState,
    SearchModeState, SiteSnapshot, ViewSnapshot,
};
pub use store::{
    EvolutionStore, RecoveredLog, RecoveryOptions, SnapshotKind, SnapshotMeta, StoreStats,
};
