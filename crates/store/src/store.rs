//! The durable evolution store: one directory holding log segments and
//! snapshots, with fsync-per-append durability, crash recovery and
//! generation time-travel planning.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/seg-<start_seq>.evl    append-only log segments
//! <dir>/snap-<seq>.evs         full-state snapshots
//! ```
//!
//! Record sequence numbers are global and contiguous across segments: the
//! segment named `seg-<s>` holds records `s, s+1, …` up to the next
//! segment's start. [`EvolutionStore::write_snapshot`] rotates the active
//! segment, so segment boundaries always coincide with snapshot points —
//! recovery never needs a partial segment, and [`EvolutionStore::compact`]
//! can drop whole files.
//!
//! Every append is flushed and `fsync`'d before it is acknowledged: a
//! record the store returned `Ok` for survives `kill -9`. A crash mid-write
//! leaves a torn frame at the active tail, which recovery detects by
//! checksum and truncates away.

use std::fs::{self, File, OpenOptions};
use std::path::{Path, PathBuf};

use crate::error::{Error, Result};
use crate::log::{
    frame, read_segment, segment_header, truncate_segment, LogRecord, SealedRecord, SegmentContents,
};
use crate::snapshot::{read_snapshot_file, write_snapshot_file, EngineSnapshot};

/// Store I/O counters, folded into the engine's `stats` reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records appended (acknowledged durable).
    pub records_appended: u64,
    /// Bytes appended to log segments (frames incl. headers).
    pub log_bytes_appended: u64,
    /// `fsync` calls issued for log appends.
    pub fsyncs: u64,
    /// Snapshots written.
    pub snapshots_written: u64,
    /// Bytes written into snapshot files.
    pub snapshot_bytes_written: u64,
    /// Records replayed by recovery / time-travel reads.
    pub records_replayed: u64,
    /// Torn bytes truncated from the active tail during recovery.
    pub torn_bytes_truncated: u64,
    /// Torn (partial) records dropped during recovery.
    pub torn_records_truncated: u64,
    /// Log segments created (initial + rotations).
    pub segments_created: u64,
}

/// What recovery found on disk.
#[derive(Debug, Clone)]
pub struct RecoveredLog {
    /// The newest intact snapshot, if any, with its sequence number.
    pub snapshot: Option<(u64, EngineSnapshot)>,
    /// The records to replay on top of the snapshot, starting at the
    /// snapshot's sequence number, in order.
    pub tail: Vec<SealedRecord>,
    /// The sequence number the next append will receive.
    pub next_seq: u64,
    /// Bytes dropped from the active tail (torn final write).
    pub torn_bytes: u64,
    /// Snapshot files that failed validation and were ignored.
    pub snapshots_skipped: usize,
}

/// The durable evolution store.
#[derive(Debug)]
pub struct EvolutionStore {
    dir: PathBuf,
    active: File,
    active_path: PathBuf,
    /// Byte length of the active segment's durable prefix (header + every
    /// acknowledged frame). A failed append may leave extra bytes past
    /// this point; they are rolled back eagerly and — as a second line of
    /// defence — before any segment rotation, so a damaged tail can never
    /// end up in a *non-final* segment (where recovery would treat it as
    /// corruption instead of a torn tail).
    active_len: u64,
    next_seq: u64,
    stats: StoreStats,
}

fn seg_path(dir: &Path, start_seq: u64) -> PathBuf {
    dir.join(format!("seg-{start_seq:020}.evl"))
}

fn snap_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq:020}.evs"))
}

fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

impl EvolutionStore {
    /// Creates a fresh store in `dir` (created if absent; must not already
    /// contain store files). The caller is expected to immediately write a
    /// bootstrap snapshot of its current engine state at sequence 0.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`Error::State`] when `dir` already holds a store.
    pub fn create(dir: impl Into<PathBuf>) -> Result<EvolutionStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| Error::io(&dir, e))?;
        if !Self::store_files(&dir)?.is_empty() {
            return Err(Error::state(format!(
                "{} already contains an evolution store — use open",
                dir.display()
            )));
        }
        let active_path = seg_path(&dir, 0);
        let mut active = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&active_path)
            .map_err(|e| Error::io(&active_path, e))?;
        crate::log::append_all(&mut active, &active_path, &segment_header(0))?;
        active.sync_all().map_err(|e| Error::io(&active_path, e))?;
        Ok(EvolutionStore {
            dir,
            active,
            active_path,
            active_len: 16,
            next_seq: 0,
            stats: StoreStats {
                segments_created: 1,
                ..StoreStats::default()
            },
        })
    }

    /// Whether `dir` looks like an existing store (holds segments or
    /// snapshots).
    ///
    /// # Errors
    ///
    /// I/O failures while listing the directory.
    pub fn exists(dir: &Path) -> Result<bool> {
        if !dir.is_dir() {
            return Ok(false);
        }
        Ok(!Self::store_files(dir)?.is_empty())
    }

    fn store_files(dir: &Path) -> Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        if !dir.is_dir() {
            return Ok(out);
        }
        for entry in fs::read_dir(dir).map_err(|e| Error::io(dir, e))? {
            let entry = entry.map_err(|e| Error::io(dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".evl") || name.ends_with(".evs") {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    /// The segment files in start-sequence order.
    fn segment_paths(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for path in Self::store_files(dir)? {
            let name = path
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .to_string();
            if let Some(seq) = parse_numbered(&name, "seg-", ".evl") {
                out.push((seq, path));
            }
        }
        out.sort();
        Ok(out)
    }

    /// The snapshot files in sequence order.
    fn snapshot_paths(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for path in Self::store_files(dir)? {
            let name = path
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .to_string();
            if let Some(seq) = parse_numbered(&name, "snap-", ".evs") {
                out.push((seq, path));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Opens an existing store: picks the newest intact snapshot, reads the
    /// log records after it, truncates a torn tail on the active segment,
    /// and returns both the store (positioned for appends) and the replay
    /// plan.
    ///
    /// # Errors
    ///
    /// I/O failures; [`Error::Corrupt`] for damage anywhere but the active
    /// tail (e.g. a torn frame in a non-final segment, or every snapshot
    /// *and* the bootstrap log damaged); [`Error::State`] when `dir` holds
    /// no store.
    pub fn open(dir: impl Into<PathBuf>) -> Result<(EvolutionStore, RecoveredLog)> {
        let dir = dir.into();
        let mut segments = Self::segment_paths(&dir)?;
        if segments.is_empty() {
            return Err(Error::state(format!(
                "{} holds no evolution store (no log segments)",
                dir.display()
            )));
        }

        // Torn rotation: a crash between creating the new segment file and
        // its 16-byte header reaching disk leaves a short final segment. It
        // holds no acknowledged record, so drop it and continue on the
        // previous segment — unless it is the *only* file, in which case
        // nothing acknowledged ever existed and the store is unusable.
        let mut torn_bytes = 0u64;
        if let Some((_, last_path)) = segments.last() {
            let len = std::fs::metadata(last_path)
                .map_err(|e| Error::io(last_path, e))?
                .len();
            if len < 16 {
                if segments.len() == 1 {
                    return Err(Error::corrupt(format!(
                        "{} holds only a headerless segment (crash during creation)",
                        dir.display()
                    )));
                }
                let (_, path) = segments.pop().expect("checked non-empty");
                fs::remove_file(&path).map_err(|e| Error::io(&path, e))?;
                torn_bytes += len;
            }
        }

        // Newest intact snapshot wins; damaged ones are skipped (recovery
        // then replays more log).
        let mut snapshot: Option<(u64, EngineSnapshot)> = None;
        let mut snapshots_skipped = 0usize;
        for (seq, path) in Self::snapshot_paths(&dir)?.into_iter().rev() {
            match read_snapshot_file(&path) {
                Ok(parsed) => {
                    snapshot = Some((seq, parsed.snapshot));
                    break;
                }
                Err(_) => snapshots_skipped += 1,
            }
        }
        let replay_from = snapshot.as_ref().map_or(0, |(seq, _)| *seq);

        // Walk the segments. Ones wholly before the replay point only get
        // their headers validated (recovery never decodes them); the rest
        // are fully read. Only the final segment may carry a torn tail.
        let mut tail: Vec<SealedRecord> = Vec::new();
        let mut next_seq = replay_from;
        let mut torn_records = 0u64;
        let last_idx = segments.len() - 1;
        let mut active_valid_len = 16u64;
        for (idx, (start_seq, path)) in segments.iter().enumerate() {
            let is_last = idx == last_idx;
            // Segment boundaries align with snapshots (rotation happens on
            // checkpoint), so a non-final segment whose successor starts
            // at or before the replay point holds only pre-snapshot
            // records: header check only.
            if !is_last && segments[idx + 1].0 <= replay_from {
                let header_seq = crate::log::read_segment_header(path)?;
                if header_seq != *start_seq {
                    return Err(Error::corrupt(format!(
                        "{} header start_seq {header_seq} disagrees with its name",
                        path.display()
                    )));
                }
                next_seq = segments[idx + 1].0;
                continue;
            }
            let contents: SegmentContents = read_segment(path)?;
            if contents.start_seq != *start_seq {
                return Err(Error::corrupt(format!(
                    "{} header start_seq {} disagrees with its name",
                    path.display(),
                    contents.start_seq
                )));
            }
            if contents.torn_bytes > 0 {
                if !is_last {
                    return Err(Error::corrupt(format!(
                        "torn frame in non-final segment {}",
                        path.display()
                    )));
                }
                torn_bytes += contents.torn_bytes;
                torn_records = 1;
            }
            let seg_end = start_seq + contents.records.len() as u64;
            if idx + 1 < segments.len() {
                let expected_next = segments[idx + 1].0;
                if seg_end != expected_next {
                    return Err(Error::corrupt(format!(
                        "{} holds records up to {seg_end} but the next segment starts at {expected_next}",
                        path.display()
                    )));
                }
            }
            if is_last {
                active_valid_len = contents.valid_len;
            }
            // Collect the records at/after the replay point.
            if seg_end > replay_from {
                let skip = replay_from.saturating_sub(*start_seq) as usize;
                tail.extend(contents.records.into_iter().skip(skip));
            }
            next_seq = seg_end;
        }

        // Truncate the torn tail so appends continue on a frame boundary.
        let (_, active_path) = segments[last_idx].clone();
        if torn_records > 0 {
            truncate_segment(&active_path, active_valid_len)?;
        }

        let active = OpenOptions::new()
            .append(true)
            .open(&active_path)
            .map_err(|e| Error::io(&active_path, e))?;

        let stats = StoreStats {
            records_replayed: tail.len() as u64,
            torn_bytes_truncated: torn_bytes,
            torn_records_truncated: torn_records,
            ..StoreStats::default()
        };
        let store = EvolutionStore {
            dir,
            active,
            active_path,
            active_len: active_valid_len,
            next_seq,
            stats,
        };
        let recovered = RecoveredLog {
            snapshot,
            tail,
            next_seq,
            torn_bytes,
            snapshots_skipped,
        };
        Ok((store, recovered))
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number the next appended record will receive.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Accumulated I/O counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Zeroes the I/O counters (reporting only; on-disk state untouched).
    pub fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }

    /// Appends one record durably: framed, checksummed, written and
    /// `fsync`'d before returning. Returns the record's sequence number.
    ///
    /// # Errors
    ///
    /// I/O failures (the log may then hold a torn frame, which the next
    /// recovery truncates — the record is *not* considered durable).
    pub fn append(&mut self, post_generation: u64, record: LogRecord) -> Result<u64> {
        let sealed = SealedRecord {
            post_generation,
            record,
        };
        let bytes = frame(&sealed);
        let write =
            crate::log::append_all(&mut self.active, &self.active_path, &bytes).and_then(|()| {
                self.active
                    .sync_data()
                    .map_err(|e| Error::io(&self.active_path, e))
            });
        if let Err(e) = write {
            // The segment may now hold a partial frame — or a complete one
            // whose fsync failed, which was never acknowledged and must not
            // survive (its sequence number will be reused). Roll the file
            // back to the durable prefix; if that also fails,
            // `ensure_tail` retries before the next rotation.
            let _ = self.ensure_tail();
            return Err(e);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.active_len += bytes.len() as u64;
        self.stats.records_appended += 1;
        self.stats.log_bytes_appended += bytes.len() as u64;
        self.stats.fsyncs += 1;
        Ok(seq)
    }

    /// Truncates the active segment back to its durable prefix
    /// ([`Self::active_len`]) if a failed append left extra bytes behind.
    /// No-op when the file already ends on the durable boundary.
    fn ensure_tail(&mut self) -> Result<()> {
        let len = self
            .active
            .metadata()
            .map_err(|e| Error::io(&self.active_path, e))?
            .len();
        if len != self.active_len {
            self.active
                .set_len(self.active_len)
                .map_err(|e| Error::io(&self.active_path, e))?;
            self.active
                .sync_all()
                .map_err(|e| Error::io(&self.active_path, e))?;
        }
        Ok(())
    }

    /// Writes a snapshot of the current engine state at the current
    /// sequence number and rotates the active segment so the next append
    /// starts a fresh file. Historical segments/snapshots are retained for
    /// time-travel until [`EvolutionStore::compact`].
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn write_snapshot(&mut self, snapshot: &EngineSnapshot) -> Result<u64> {
        let seq = self.next_seq;
        let written = write_snapshot_file(&snap_path(&self.dir, seq), seq, snapshot)?;
        self.stats.snapshots_written += 1;
        self.stats.snapshot_bytes_written += written;

        // Rotate: later records land in a segment starting at `seq`. A
        // checkpoint at the very start of a segment needs no rotation.
        // Before the current segment stops being final, any residue of a
        // failed append must be truncated away — recovery only tolerates a
        // damaged tail on the *final* segment. A failing truncation aborts
        // the rotation (the snapshot itself is already durable, so
        // recovery stays anchored and correct).
        let current_start = self
            .active_path
            .file_name()
            .and_then(|n| parse_numbered(&n.to_string_lossy(), "seg-", ".evl"));
        if current_start != Some(seq) {
            self.ensure_tail()?;
            let active_path = seg_path(&self.dir, seq);
            let mut active = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&active_path)
                .map_err(|e| Error::io(&active_path, e))?;
            crate::log::append_all(&mut active, &active_path, &segment_header(seq))?;
            active.sync_all().map_err(|e| Error::io(&active_path, e))?;
            self.active = active;
            self.active_path = active_path;
            self.active_len = 16;
            self.stats.segments_created += 1;
        }
        Ok(seq)
    }

    /// All snapshots with a well-formed header as `(seq, generation)`, in
    /// sequence order (damaged files are skipped). Header-only — listing
    /// does not read whole multi-megabyte state images; payload checksums
    /// are verified when a snapshot is actually loaded.
    ///
    /// # Errors
    ///
    /// I/O failures while listing.
    pub fn snapshot_index(&self) -> Result<Vec<(u64, u64)>> {
        let mut out = Vec::new();
        for (seq, path) in Self::snapshot_paths(&self.dir)? {
            if let Ok((_, generation)) = crate::snapshot::read_snapshot_header(&path) {
                out.push((seq, generation));
            }
        }
        Ok(out)
    }

    /// Number of log segment files currently on disk.
    ///
    /// # Errors
    ///
    /// I/O failures while listing.
    pub fn segment_count(&self) -> Result<usize> {
        Ok(Self::segment_paths(&self.dir)?.len())
    }

    /// Plans a time-travel read: the newest intact snapshot at or before
    /// `generation`, plus every subsequent record whose post-generation is
    /// `<= generation`. The caller replays the records on the snapshot.
    ///
    /// # Errors
    ///
    /// [`Error::State`] when `generation` precedes the retained horizon
    /// (i.e. history before the oldest snapshot was compacted away).
    pub fn plan_travel(&mut self, generation: u64) -> Result<(EngineSnapshot, Vec<SealedRecord>)> {
        // Newest intact snapshot with generation <= target. The header
        // pre-filter skips too-new snapshots without reading their state
        // images; candidates that pass it are fully validated.
        let mut base: Option<(u64, EngineSnapshot)> = None;
        for (seq, path) in Self::snapshot_paths(&self.dir)?.into_iter().rev() {
            let candidate = matches!(
                crate::snapshot::read_snapshot_header(&path),
                Ok((_, g)) if g <= generation
            );
            if !candidate {
                continue;
            }
            if let Ok(parsed) = read_snapshot_file(&path) {
                base = Some((seq, parsed.snapshot));
                break;
            }
        }
        let Some((base_seq, snapshot)) = base else {
            return Err(Error::state(format!(
                "generation {generation} precedes the retained horizon — no snapshot at or \
                 before it exists (history may have been compacted)"
            )));
        };

        // Segments wholly before the base snapshot never replay: rotation
        // aligns boundaries with snapshots, so a segment whose successor
        // starts at or before `base_seq` is skipped without decoding.
        let segments = Self::segment_paths(&self.dir)?;
        let mut records = Vec::new();
        for (idx, (start_seq, path)) in segments.iter().enumerate() {
            if segments
                .get(idx + 1)
                .is_some_and(|(next, _)| *next <= base_seq)
            {
                continue;
            }
            let contents = read_segment(path)?;
            let seg_end = start_seq + contents.records.len() as u64;
            if seg_end <= base_seq {
                continue;
            }
            let skip = base_seq.saturating_sub(*start_seq) as usize;
            for sealed in contents.records.into_iter().skip(skip) {
                if sealed.post_generation > generation {
                    self.stats.records_replayed += records.len() as u64;
                    return Ok((snapshot, records));
                }
                records.push(sealed);
            }
        }
        self.stats.records_replayed += records.len() as u64;
        Ok((snapshot, records))
    }

    /// Deletes segments and snapshots strictly older than the newest
    /// **intact** snapshot, bounding disk use and recovery work. Time
    /// travel before that snapshot's generation becomes impossible
    /// afterwards. Returns `(segments_deleted, snapshots_deleted)`.
    ///
    /// The anchor is validated before anything is deleted: a damaged
    /// newest snapshot is skipped (exactly as recovery skips it), so
    /// compaction can never delete the only snapshot recovery could still
    /// load.
    ///
    /// # Errors
    ///
    /// I/O failures; [`Error::State`] when no intact snapshot exists
    /// (nothing to anchor recovery).
    pub fn compact(&mut self) -> Result<(usize, usize)> {
        let snapshots = Self::snapshot_paths(&self.dir)?;
        let anchor_seq = snapshots
            .iter()
            .rev()
            .find(|(_, path)| read_snapshot_file(path).is_ok())
            .map(|(seq, _)| *seq);
        let Some(anchor_seq) = anchor_seq else {
            return Err(Error::state(
                "cannot compact a store without an intact snapshot".to_owned(),
            ));
        };
        let mut segments_deleted = 0usize;
        for (start_seq, path) in Self::segment_paths(&self.dir)? {
            // Rotation aligns segment boundaries with snapshot points, so a
            // segment starting before the anchor holds only pre-anchor
            // records — except the active segment, which is never deleted.
            if start_seq < anchor_seq && path != self.active_path {
                fs::remove_file(&path).map_err(|e| Error::io(&path, e))?;
                segments_deleted += 1;
            }
        }
        let mut snapshots_deleted = 0usize;
        for (seq, path) in snapshots {
            if seq < anchor_seq {
                fs::remove_file(&path).map_err(|e| Error::io(&path, e))?;
                snapshots_deleted += 1;
            }
        }
        Ok((segments_deleted, snapshots_deleted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::tup;
    use eve_sync::EvolutionOp;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eve-store-store-tests-{}-{name}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn empty_snapshot() -> EngineSnapshot {
        EngineSnapshot {
            mkb: eve_misd::Mkb::new().export_state(),
            sites: Vec::new(),
            views: Vec::new(),
            config: crate::snapshot::EngineConfig {
                sync_options: eve_sync::SyncOptions::default(),
                qc_params: eve_qc::QcParams::default(),
                workload: eve_qc::WorkloadModel::SingleUpdate,
                strategy: eve_qc::SelectionStrategy::QcBest,
                search: crate::snapshot::SearchModeState::default(),
            },
        }
    }

    fn batch_record(k: i64) -> LogRecord {
        LogRecord::Batch(vec![EvolutionOp::insert("R", vec![tup![k]])])
    }

    #[test]
    fn create_append_reopen() {
        let dir = temp_dir("basic");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        for k in 0..5 {
            let seq = store.append(0, batch_record(k)).unwrap();
            assert_eq!(seq, k as u64);
        }
        assert_eq!(store.next_seq(), 5);
        drop(store); // simulated crash: no shutdown handshake exists

        let (store, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.next_seq, 5);
        assert_eq!(recovered.tail.len(), 5, "snapshot at 0, all records replay");
        assert!(recovered.snapshot.is_some());
        assert_eq!(recovered.torn_bytes, 0);
        assert_eq!(store.next_seq(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_existing_store() {
        let dir = temp_dir("refuse");
        let _store = EvolutionStore::create(&dir).unwrap();
        let err = EvolutionStore::create(&dir).unwrap_err();
        assert!(err.to_string().contains("already contains"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_refuses_missing_store() {
        let dir = temp_dir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(EvolutionStore::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_rotates_segment_and_anchors_recovery() {
        let dir = temp_dir("rotate");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        for k in 0..3 {
            store.append(0, batch_record(k)).unwrap();
        }
        store.write_snapshot(&empty_snapshot()).unwrap();
        assert_eq!(store.segment_count().unwrap(), 2);
        for k in 3..5 {
            store.append(0, batch_record(k)).unwrap();
        }
        drop(store);

        let (store, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(
            recovered.snapshot.as_ref().map(|(s, _)| *s),
            Some(3),
            "recovery anchors on the newest snapshot"
        );
        assert_eq!(recovered.tail.len(), 2, "only post-snapshot records replay");
        assert_eq!(recovered.next_seq, 5);
        assert_eq!(store.snapshot_index().unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = temp_dir("torn");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        for k in 0..3 {
            store.append(0, batch_record(k)).unwrap();
        }
        let active_path = store.active_path.clone();
        drop(store);

        // Tear the last record: cut 5 bytes off the file.
        let len = std::fs::metadata(&active_path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&active_path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let (mut store, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.tail.len(), 2, "torn record dropped");
        assert_eq!(recovered.next_seq, 2);
        assert!(recovered.torn_bytes > 0);
        assert_eq!(store.stats().torn_records_truncated, 1);

        // The store keeps working after truncation.
        let seq = store.append(0, batch_record(99)).unwrap();
        assert_eq!(seq, 2);
        drop(store);
        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.tail.len(), 3);
        assert_eq!(recovered.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_snapshot_falls_back_to_older_one() {
        let dir = temp_dir("fallback");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        store.append(0, batch_record(1)).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        store.append(0, batch_record(2)).unwrap();
        drop(store);

        // Damage the newer snapshot.
        let snap1 = snap_path(&dir, 1);
        let mut bytes = std::fs::read(&snap1).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&snap1, &bytes).unwrap();

        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.snapshots_skipped, 1);
        assert_eq!(recovered.snapshot.as_ref().map(|(s, _)| *s), Some(0));
        assert_eq!(recovered.tail.len(), 2, "replays from the older anchor");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_drops_pre_anchor_history() {
        let dir = temp_dir("compact");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        for k in 0..4 {
            store.append(0, batch_record(k)).unwrap();
        }
        store.write_snapshot(&empty_snapshot()).unwrap();
        store.append(0, batch_record(9)).unwrap();
        let (segs, snaps) = store.compact().unwrap();
        assert_eq!(segs, 1);
        assert_eq!(snaps, 1);
        drop(store);
        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.snapshot.as_ref().map(|(s, _)| *s), Some(4));
        assert_eq!(recovered.tail.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_never_anchors_on_a_damaged_snapshot() {
        let dir = temp_dir("compact-damaged");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        store.append(0, batch_record(1)).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        store.append(0, batch_record(2)).unwrap();

        // Damage the newest snapshot: recovery would skip it, so compaction
        // must not delete the older intact anchor.
        let snap1 = snap_path(&dir, 1);
        let mut bytes = std::fs::read(&snap1).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&snap1, &bytes).unwrap();

        let (segs, snaps) = store.compact().unwrap();
        assert_eq!(
            (segs, snaps),
            (0, 0),
            "intact anchor is seq 0 — nothing precedes it"
        );
        drop(store);
        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(
            recovered.snapshot.as_ref().map(|(s, _)| *s),
            Some(0),
            "the intact snapshot survived compaction"
        );
        assert_eq!(recovered.tail.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_rotation_headerless_final_segment_is_dropped() {
        let dir = temp_dir("torn-rotation");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        for k in 0..3 {
            store.append(0, batch_record(k)).unwrap();
        }
        store.write_snapshot(&empty_snapshot()).unwrap(); // rotates to seg-3
        drop(store);

        // Crash window: the rotated segment file exists but its header
        // never reached disk.
        let seg3 = seg_path(&dir, 3);
        let f = OpenOptions::new().write(true).open(&seg3).unwrap();
        f.set_len(7).unwrap();
        drop(f);

        let (mut store, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.next_seq, 3, "no acknowledged record lost");
        assert_eq!(recovered.snapshot.as_ref().map(|(s, _)| *s), Some(3));
        assert!(recovered.torn_bytes > 0, "the headerless file was counted");
        assert!(!seg3.exists(), "the torn rotation residue is gone");
        // Appends continue on the previous segment.
        assert_eq!(store.append(0, batch_record(9)).unwrap(), 3);
        drop(store);
        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.next_seq, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_truncates_foreign_tail_residue_first() {
        // A failed append can leave bytes past the durable prefix. The
        // rotation on checkpoint must truncate them, otherwise the damaged
        // tail would sit in a non-final segment and brick the next open.
        let dir = temp_dir("residue");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        store.append(0, batch_record(1)).unwrap();

        // Simulate the residue through a second handle.
        use std::io::Write;
        let mut raw = OpenOptions::new()
            .append(true)
            .open(&store.active_path)
            .unwrap();
        raw.write_all(&[0xAA, 0xBB, 0xCC]).unwrap();
        raw.sync_all().unwrap();
        drop(raw);

        store.write_snapshot(&empty_snapshot()).unwrap(); // must ensure_tail
        store.append(0, batch_record(2)).unwrap();
        drop(store);

        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.torn_bytes, 0, "no damage survived the rotation");
        assert_eq!(recovered.next_seq, 2);
        assert_eq!(recovered.tail.len(), 1, "replay from the seq-1 snapshot");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_index_is_header_only_but_travel_validates_payloads() {
        let dir = temp_dir("header-only");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        store.append(0, batch_record(1)).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();

        // Flip a payload byte in the newest snapshot: the header still
        // reads, so the listing keeps it, but plan_travel must fall back
        // to the older intact snapshot instead of failing on decode.
        let snap1 = snap_path(&dir, 1);
        let mut bytes = std::fs::read(&snap1).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&snap1, &bytes).unwrap();

        assert_eq!(store.snapshot_index().unwrap().len(), 2, "headers intact");
        let (snapshot, records) = store.plan_travel(u64::MAX).unwrap();
        assert_eq!(snapshot.generation(), 0);
        assert_eq!(records.len(), 1, "replays from the intact seq-0 anchor");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_stats_accumulate_and_reset() {
        let dir = temp_dir("stats");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        store.append(0, batch_record(1)).unwrap();
        let stats = store.stats();
        assert_eq!(stats.records_appended, 1);
        assert_eq!(stats.fsyncs, 1);
        assert!(stats.log_bytes_appended > 12);
        assert_eq!(stats.snapshots_written, 1);
        assert!(stats.snapshot_bytes_written > 0);
        store.reset_stats();
        assert_eq!(store.stats(), StoreStats::default());
        std::fs::remove_dir_all(&dir).ok();
    }
}
