//! The durable evolution store: one directory holding log segments and
//! snapshots, with fsync-per-append durability, crash recovery and
//! generation time-travel planning.
//!
//! ## Directory layout
//!
//! ```text
//! <dir>/seg-<start_seq>.evl    append-only log segments
//! <dir>/snap-<seq>.evs         full-state snapshots
//! <dir>/snap-<seq>.evd         incremental delta snapshots
//! <dir>/store.lock             single-opener advisory lock
//! ```
//!
//! Record sequence numbers are global and contiguous across segments: the
//! segment named `seg-<s>` holds records `s, s+1, …` up to the next
//! segment's start. [`EvolutionStore::write_snapshot`] rotates the active
//! segment, so segment boundaries always coincide with snapshot points —
//! recovery never needs a partial segment, and [`EvolutionStore::compact`]
//! can drop whole files.
//!
//! Every append is flushed and `fsync`'d before it is acknowledged: a
//! record the store returned `Ok` for survives `kill -9`. A crash mid-write
//! leaves a torn frame at the active tail, which recovery detects by
//! checksum and truncates away.

use std::fs::{self, File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use eve_trace::{Counter, Histogram};

use crate::error::{Error, Result};
use crate::fsutil::{sync_dir, DirLock};
use crate::log::{
    frame, read_segment, segment_header, truncate_segment, LogRecord, SealedRecord, SegmentContents,
};
use crate::snapshot::{
    read_delta_file, read_delta_header, read_snapshot_file, read_snapshot_header, write_delta_file,
    write_snapshot_file, DeltaSnapshot, EngineSnapshot,
};

/// Process-wide mirrors of the per-store counters, kept in the global
/// metrics registry's `store.` family. Per-instance [`StoreStats`] stay
/// exact per store handle (and reset per handle); these aggregate across
/// every store in the process for the `metrics` surface, alongside two
/// latency/shape histograms the scalar stats cannot express.
struct StoreMirrors {
    records_appended: Arc<Counter>,
    log_bytes_appended: Arc<Counter>,
    fsyncs: Arc<Counter>,
    group_commits: Arc<Counter>,
    snapshots_written: Arc<Counter>,
    snapshot_bytes_written: Arc<Counter>,
    records_replayed: Arc<Counter>,
    segments_created: Arc<Counter>,
    /// Wall microseconds of each durable append (write + fsync).
    fsync_us: Arc<Histogram>,
    /// Records per group-commit batch.
    group_batch_records: Arc<Histogram>,
}

fn mirrors() -> &'static StoreMirrors {
    static MIRRORS: OnceLock<StoreMirrors> = OnceLock::new();
    MIRRORS.get_or_init(|| {
        let registry = eve_trace::global();
        StoreMirrors {
            records_appended: registry.counter("store.records_appended"),
            log_bytes_appended: registry.counter("store.log_bytes_appended"),
            fsyncs: registry.counter("store.fsyncs"),
            group_commits: registry.counter("store.group_commits"),
            snapshots_written: registry.counter("store.snapshots_written"),
            snapshot_bytes_written: registry.counter("store.snapshot_bytes_written"),
            records_replayed: registry.counter("store.records_replayed"),
            segments_created: registry.counter("store.segments_created"),
            fsync_us: registry.histogram("store.fsync_us"),
            group_batch_records: registry.histogram("store.group_batch_records"),
        }
    })
}

/// Store I/O counters, folded into the engine's `stats` reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records appended (acknowledged durable).
    pub records_appended: u64,
    /// Bytes appended to log segments (frames incl. headers).
    pub log_bytes_appended: u64,
    /// `fsync` calls issued for log appends.
    pub fsyncs: u64,
    /// Snapshots written.
    pub snapshots_written: u64,
    /// Bytes written into snapshot files.
    pub snapshot_bytes_written: u64,
    /// Records replayed by recovery / time-travel reads.
    pub records_replayed: u64,
    /// Torn bytes truncated from the active tail during recovery.
    pub torn_bytes_truncated: u64,
    /// Torn (partial) records dropped during recovery.
    pub torn_records_truncated: u64,
    /// Log segments created (initial + rotations).
    pub segments_created: u64,
    /// Group commits: fsync'd writes that covered a *batch* of one or
    /// more records. `records_appended / group_commits` is the achieved
    /// records-per-fsync amortization.
    pub group_commits: u64,
    /// Delta snapshots written (also counted in `snapshots_written`).
    pub delta_snapshots_written: u64,
    /// Worker threads the last `open` used to read segments.
    pub replay_threads: u64,
    /// Segments whose frames were CRC-verified/decoded on parallel
    /// workers during the last `open`.
    pub segments_read_parallel: u64,
}

/// Snapshot file kinds in a store directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SnapshotKind {
    /// A self-contained full-state image (`.evs`).
    Full,
    /// An incremental delta against an earlier snapshot (`.evd`).
    Delta,
}

/// One entry of the snapshot listing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Sequence number (records `0..seq` are folded in).
    pub seq: u64,
    /// MKB generation at the snapshot point.
    pub generation: u64,
    /// Full image or incremental delta.
    pub kind: SnapshotKind,
}

/// How [`EvolutionStore::open`] reads segment files.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryOptions {
    /// CRC-verify and decode independent segment files on scoped worker
    /// threads before the sequential validation/apply pass (the default).
    /// `false` forces the single-threaded read path — the differential
    /// suite uses it to pin that both paths recover byte-identically.
    pub parallel_replay: bool,
}

impl Default for RecoveryOptions {
    fn default() -> RecoveryOptions {
        RecoveryOptions {
            parallel_replay: true,
        }
    }
}

/// What recovery found on disk.
#[derive(Debug, Clone)]
pub struct RecoveredLog {
    /// The newest intact snapshot, if any, with its sequence number.
    pub snapshot: Option<(u64, EngineSnapshot)>,
    /// The records to replay on top of the snapshot, starting at the
    /// snapshot's sequence number, in order.
    pub tail: Vec<SealedRecord>,
    /// The sequence number the next append will receive.
    pub next_seq: u64,
    /// Bytes dropped from the active tail (torn final write).
    pub torn_bytes: u64,
    /// Snapshot files that failed validation and were ignored.
    pub snapshots_skipped: usize,
}

/// The durable evolution store.
#[derive(Debug)]
pub struct EvolutionStore {
    dir: PathBuf,
    active: File,
    active_path: PathBuf,
    /// Byte length of the active segment's durable prefix (header + every
    /// acknowledged frame). A failed append may leave extra bytes past
    /// this point; they are rolled back eagerly and — as a second line of
    /// defence — before any segment rotation, so a damaged tail can never
    /// end up in a *non-final* segment (where recovery would treat it as
    /// corruption instead of a torn tail).
    active_len: u64,
    next_seq: u64,
    stats: StoreStats,
    /// Exclusive single-opener lock, held for the store's lifetime. Two
    /// concurrent opens of one directory would interleave appends and
    /// corrupt the tail; the second acquisition fails instead.
    _lock: DirLock,
}

fn seg_path(dir: &Path, start_seq: u64) -> PathBuf {
    dir.join(format!("seg-{start_seq:020}.evl"))
}

fn snap_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq:020}.evs"))
}

fn delta_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq:020}.evd"))
}

/// Upper bound on delta-chain length the loader will follow. Chains this
/// deep only arise from corruption (e.g. a cycle smuggled into `base_seq`
/// fields); compaction collapses healthy chains long before.
const MAX_DELTA_CHAIN: usize = 512;

fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

impl EvolutionStore {
    /// Creates a fresh store in `dir` (created if absent; must not already
    /// contain store files). The caller is expected to immediately write a
    /// bootstrap snapshot of its current engine state at sequence 0.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`Error::State`] when `dir` already holds a store.
    pub fn create(dir: impl Into<PathBuf>) -> Result<EvolutionStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| Error::io(&dir, e))?;
        let lock = DirLock::acquire(&dir)?;
        if !Self::store_files(&dir)?.is_empty() {
            return Err(Error::state(format!(
                "{} already contains an evolution store — use open",
                dir.display()
            )));
        }
        let active_path = seg_path(&dir, 0);
        let mut active = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&active_path)
            .map_err(|e| Error::io(&active_path, e))?;
        crate::log::append_all(&mut active, &active_path, &segment_header(0))?;
        active.sync_all().map_err(|e| Error::io(&active_path, e))?;
        // The directory entry for the new segment must be durable too, or
        // a crash leaves an "empty" directory with orphaned fsync'd bytes.
        sync_dir(&dir)?;
        Ok(EvolutionStore {
            dir,
            active,
            active_path,
            active_len: 16,
            next_seq: 0,
            stats: StoreStats {
                segments_created: 1,
                ..StoreStats::default()
            },
            _lock: lock,
        })
    }

    /// Whether `dir` looks like an existing store (holds segments or
    /// snapshots).
    ///
    /// # Errors
    ///
    /// I/O failures while listing the directory.
    pub fn exists(dir: &Path) -> Result<bool> {
        if !dir.is_dir() {
            return Ok(false);
        }
        Ok(!Self::store_files(dir)?.is_empty())
    }

    fn store_files(dir: &Path) -> Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        if !dir.is_dir() {
            return Ok(out);
        }
        for entry in fs::read_dir(dir).map_err(|e| Error::io(dir, e))? {
            let entry = entry.map_err(|e| Error::io(dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".evl") || name.ends_with(".evs") || name.ends_with(".evd") {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    /// The segment files in start-sequence order.
    fn segment_paths(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for path in Self::store_files(dir)? {
            let name = path
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .to_string();
            if let Some(seq) = parse_numbered(&name, "seg-", ".evl") {
                out.push((seq, path));
            }
        }
        out.sort();
        Ok(out)
    }

    /// The snapshot files (full and delta) in sequence order; at equal
    /// sequence numbers a full image sorts before a delta, so backward
    /// scans prefer the self-contained file.
    fn snapshot_files(dir: &Path) -> Result<Vec<(u64, SnapshotKind, PathBuf)>> {
        let mut out = Vec::new();
        for path in Self::store_files(dir)? {
            let name = path
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .to_string();
            if let Some(seq) = parse_numbered(&name, "snap-", ".evs") {
                out.push((seq, SnapshotKind::Full, path));
            } else if let Some(seq) = parse_numbered(&name, "snap-", ".evd") {
                out.push((seq, SnapshotKind::Delta, path));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Loads the full state a snapshot entry describes, resolving delta
    /// chains recursively: a delta's base is looked up by sequence number
    /// (full image preferred), loaded, and overlaid. Any failure anywhere
    /// in the chain fails the whole candidate — the caller then falls
    /// back to an older entry, exactly as with a damaged full snapshot.
    fn load_snapshot_entry(
        entries: &[(u64, SnapshotKind, PathBuf)],
        idx: usize,
        depth: usize,
    ) -> Result<EngineSnapshot> {
        if depth > MAX_DELTA_CHAIN {
            return Err(Error::corrupt(format!(
                "delta-snapshot chain deeper than {MAX_DELTA_CHAIN} (cyclic base_seq?)"
            )));
        }
        let (seq, kind, path) = &entries[idx];
        match kind {
            SnapshotKind::Full => Ok(read_snapshot_file(path)?.snapshot),
            SnapshotKind::Delta => {
                let parsed = read_delta_file(path)?;
                let base_seq = parsed.delta.base_seq;
                if base_seq > *seq {
                    return Err(Error::corrupt(format!(
                        "{}: delta base_seq {base_seq} is newer than the delta itself",
                        path.display()
                    )));
                }
                // Prefer a full image at the base sequence; never resolve
                // a delta to itself (base_seq == seq only matches a full).
                let base_idx = entries
                    .iter()
                    .position(|(s, k, _)| *s == base_seq && *k == SnapshotKind::Full)
                    .or_else(|| {
                        entries.iter().position(|(s, k, _)| {
                            *s == base_seq && *k == SnapshotKind::Delta && base_seq < *seq
                        })
                    })
                    .ok_or_else(|| {
                        Error::corrupt(format!(
                            "{}: delta base snapshot at seq {base_seq} is missing",
                            path.display()
                        ))
                    })?;
                let base = Self::load_snapshot_entry(entries, base_idx, depth + 1)?;
                Ok(parsed.delta.apply_to(&base))
            }
        }
    }

    /// Opens an existing store: picks the newest intact snapshot, reads the
    /// log records after it, truncates a torn tail on the active segment,
    /// and returns both the store (positioned for appends) and the replay
    /// plan.
    ///
    /// # Errors
    ///
    /// I/O failures; [`Error::Corrupt`] for damage anywhere but the active
    /// tail (e.g. a torn frame in a non-final segment, or every snapshot
    /// *and* the bootstrap log damaged); [`Error::State`] when `dir` holds
    /// no store.
    pub fn open(dir: impl Into<PathBuf>) -> Result<(EvolutionStore, RecoveredLog)> {
        Self::open_with(dir, RecoveryOptions::default())
    }

    /// [`EvolutionStore::open`] with explicit [`RecoveryOptions`] — the
    /// differential suite uses the sequential read path as the oracle for
    /// the parallel one.
    ///
    /// # Errors
    ///
    /// As [`EvolutionStore::open`].
    pub fn open_with(
        dir: impl Into<PathBuf>,
        opts: RecoveryOptions,
    ) -> Result<(EvolutionStore, RecoveredLog)> {
        let _span = eve_trace::span("store.recovery");
        let dir = dir.into();
        let lock = DirLock::acquire(&dir)?;
        let mut segments = Self::segment_paths(&dir)?;
        if segments.is_empty() {
            return Err(Error::state(format!(
                "{} holds no evolution store (no log segments)",
                dir.display()
            )));
        }

        // Torn rotation: a crash between creating the new segment file and
        // its 16-byte header reaching disk leaves a short final segment. It
        // holds no acknowledged record, so drop it and continue on the
        // previous segment — unless it is the *only* file, in which case
        // nothing acknowledged ever existed and the store is unusable.
        let mut torn_bytes = 0u64;
        if let Some((_, last_path)) = segments.last() {
            let len = std::fs::metadata(last_path)
                .map_err(|e| Error::io(last_path, e))?
                .len();
            if len < 16 {
                if segments.len() == 1 {
                    return Err(Error::corrupt(format!(
                        "{} holds only a headerless segment (crash during creation)",
                        dir.display()
                    )));
                }
                let (_, path) = segments.pop().expect("checked non-empty");
                fs::remove_file(&path).map_err(|e| Error::io(&path, e))?;
                sync_dir(&dir)?;
                torn_bytes += len;
            }
        }

        // Newest intact snapshot wins; damaged ones — including deltas
        // whose base chain cannot be resolved — are skipped (recovery then
        // replays more log).
        let entries = Self::snapshot_files(&dir)?;
        let mut snapshot: Option<(u64, EngineSnapshot)> = None;
        let mut snapshots_skipped = 0usize;
        for idx in (0..entries.len()).rev() {
            match Self::load_snapshot_entry(&entries, idx, 0) {
                Ok(state) => {
                    snapshot = Some((entries[idx].0, state));
                    break;
                }
                Err(_) => snapshots_skipped += 1,
            }
        }
        let replay_from = snapshot.as_ref().map_or(0, |(seq, _)| *seq);

        // Segments wholly before the replay point only get their headers
        // validated (recovery never decodes them); the rest are fully
        // read. Segment files are independent until the sequential
        // validation pass below, so the expensive part — reading, CRC
        // verification, frame decoding — fans out over scoped worker
        // threads when more than one segment needs a full read.
        let last_idx = segments.len() - 1;
        let needs_full_read = |idx: usize| idx == last_idx || segments[idx + 1].0 > replay_from;
        let to_read: Vec<usize> = (0..segments.len())
            .filter(|&i| needs_full_read(i))
            .collect();
        let workers = if opts.parallel_replay {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(to_read.len())
        } else {
            1
        };
        let mut contents_map: Vec<Option<Result<SegmentContents>>> =
            (0..segments.len()).map(|_| None).collect();
        let mut replay_threads = 1u64;
        let mut segments_read_parallel = 0u64;
        if workers > 1 {
            replay_threads = workers as u64;
            segments_read_parallel = to_read.len() as u64;
            use std::sync::atomic::{AtomicUsize, Ordering};
            use std::sync::Mutex;
            let next = AtomicUsize::new(0);
            let results: Vec<Mutex<Option<Result<SegmentContents>>>> =
                to_read.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= to_read.len() {
                            break;
                        }
                        let slot = read_segment(&segments[to_read[i]].1);
                        *results[i]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(slot);
                    });
                }
            });
            for (i, cell) in results.into_iter().enumerate() {
                contents_map[to_read[i]] = cell
                    .into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        } else {
            for &idx in &to_read {
                contents_map[idx] = Some(read_segment(&segments[idx].1));
            }
        }

        // Sequential pass: validate ordering/continuity and collect the
        // replay tail, consuming the pre-read segment contents in order.
        let mut tail: Vec<SealedRecord> = Vec::new();
        let mut next_seq = replay_from;
        let mut torn_records = 0u64;
        let mut active_valid_len = 16u64;
        for (idx, (start_seq, path)) in segments.iter().enumerate() {
            let is_last = idx == last_idx;
            // Segment boundaries align with snapshots (rotation happens on
            // checkpoint), so a non-final segment whose successor starts
            // at or before the replay point holds only pre-snapshot
            // records: header check only.
            if !needs_full_read(idx) {
                let header_seq = crate::log::read_segment_header(path)?;
                if header_seq != *start_seq {
                    return Err(Error::corrupt(format!(
                        "{} header start_seq {header_seq} disagrees with its name",
                        path.display()
                    )));
                }
                next_seq = segments[idx + 1].0;
                continue;
            }
            let contents: SegmentContents = contents_map[idx]
                .take()
                .expect("full-read segment was read")?;
            if contents.start_seq != *start_seq {
                return Err(Error::corrupt(format!(
                    "{} header start_seq {} disagrees with its name",
                    path.display(),
                    contents.start_seq
                )));
            }
            if contents.torn_bytes > 0 {
                if !is_last {
                    return Err(Error::corrupt(format!(
                        "torn frame in non-final segment {}",
                        path.display()
                    )));
                }
                torn_bytes += contents.torn_bytes;
                torn_records = 1;
            }
            let seg_end = start_seq + contents.records.len() as u64;
            if idx + 1 < segments.len() {
                let expected_next = segments[idx + 1].0;
                if seg_end != expected_next {
                    return Err(Error::corrupt(format!(
                        "{} holds records up to {seg_end} but the next segment starts at {expected_next}",
                        path.display()
                    )));
                }
            }
            if is_last {
                active_valid_len = contents.valid_len;
            }
            // Collect the records at/after the replay point.
            if seg_end > replay_from {
                let skip = replay_from.saturating_sub(*start_seq) as usize;
                tail.extend(contents.records.into_iter().skip(skip));
            }
            next_seq = seg_end;
        }

        // Truncate the torn tail so appends continue on a frame boundary.
        let (_, active_path) = segments[last_idx].clone();
        if torn_records > 0 {
            truncate_segment(&active_path, active_valid_len)?;
        }

        let active = OpenOptions::new()
            .append(true)
            .open(&active_path)
            .map_err(|e| Error::io(&active_path, e))?;

        mirrors().records_replayed.add(tail.len() as u64);
        let stats = StoreStats {
            records_replayed: tail.len() as u64,
            torn_bytes_truncated: torn_bytes,
            torn_records_truncated: torn_records,
            replay_threads,
            segments_read_parallel,
            ..StoreStats::default()
        };
        let store = EvolutionStore {
            dir,
            active,
            active_path,
            active_len: active_valid_len,
            next_seq,
            stats,
            _lock: lock,
        };
        let recovered = RecoveredLog {
            snapshot,
            tail,
            next_seq,
            torn_bytes,
            snapshots_skipped,
        };
        Ok((store, recovered))
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number the next appended record will receive.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Accumulated I/O counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Zeroes the I/O counters (reporting only; on-disk state untouched).
    pub fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }

    /// Appends one record durably: framed, checksummed, written and
    /// `fsync`'d before returning. Returns the record's sequence number.
    ///
    /// # Errors
    ///
    /// I/O failures (the log may then hold a torn frame, which the next
    /// recovery truncates — the record is *not* considered durable).
    pub fn append(&mut self, post_generation: u64, record: LogRecord) -> Result<u64> {
        let sealed = SealedRecord {
            post_generation,
            record,
        };
        let bytes = frame(&sealed)?;
        self.append_encoded_batch(&[&bytes])
    }

    /// Appends a batch of pre-framed records as **one** contiguous write
    /// followed by **one** fsync — the group-commit primitive. Frames must
    /// come from [`frame`] (framing does not depend on the sequence
    /// number, so callers can encode before knowing their position).
    /// Returns the sequence number of the batch's first record; the rest
    /// follow contiguously.
    ///
    /// # Errors
    ///
    /// I/O failures. On failure nothing in the batch is acknowledged: the
    /// file is rolled back to the durable prefix (a torn residue is also
    /// re-truncated by the next recovery), and every sequence number is
    /// reused.
    pub fn append_encoded_batch(&mut self, frames: &[&[u8]]) -> Result<u64> {
        if frames.is_empty() {
            return Ok(self.next_seq);
        }
        let _span = eve_trace::span("store.group_flush");
        let total: usize = frames.iter().map(|f| f.len()).sum();
        let mut buf = Vec::with_capacity(total);
        for f in frames {
            buf.extend_from_slice(f);
        }
        let flush_started = Instant::now();
        let write =
            crate::log::append_all(&mut self.active, &self.active_path, &buf).and_then(|()| {
                self.active
                    .sync_data()
                    .map_err(|e| Error::io(&self.active_path, e))
            });
        if let Err(e) = write {
            // The segment may now hold a partial batch — or a complete one
            // whose fsync failed, which was never acknowledged and must not
            // survive (its sequence numbers will be reused). Roll the file
            // back to the durable prefix; if that also fails,
            // `ensure_tail` retries before the next rotation.
            let _ = self.ensure_tail();
            return Err(e);
        }
        let first_seq = self.next_seq;
        self.next_seq += frames.len() as u64;
        self.active_len += total as u64;
        self.stats.records_appended += frames.len() as u64;
        self.stats.log_bytes_appended += total as u64;
        self.stats.fsyncs += 1;
        self.stats.group_commits += 1;
        let m = mirrors();
        m.records_appended.add(frames.len() as u64);
        m.log_bytes_appended.add(total as u64);
        m.fsyncs.inc();
        m.group_commits.inc();
        m.fsync_us
            .record(u64::try_from(flush_started.elapsed().as_micros()).unwrap_or(u64::MAX));
        m.group_batch_records.record(frames.len() as u64);
        Ok(first_seq)
    }

    /// Truncates the active segment back to its durable prefix
    /// ([`Self::active_len`]) if a failed append left extra bytes behind.
    /// No-op when the file already ends on the durable boundary.
    fn ensure_tail(&mut self) -> Result<()> {
        let len = self
            .active
            .metadata()
            .map_err(|e| Error::io(&self.active_path, e))?
            .len();
        if len != self.active_len {
            self.active
                .set_len(self.active_len)
                .map_err(|e| Error::io(&self.active_path, e))?;
            self.active
                .sync_all()
                .map_err(|e| Error::io(&self.active_path, e))?;
        }
        Ok(())
    }

    /// Writes a snapshot of the current engine state at the current
    /// sequence number and rotates the active segment so the next append
    /// starts a fresh file. Historical segments/snapshots are retained for
    /// time-travel until [`EvolutionStore::compact`].
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn write_snapshot(&mut self, snapshot: &EngineSnapshot) -> Result<u64> {
        let _span = eve_trace::span("store.snapshot");
        let seq = self.next_seq;
        let written = write_snapshot_file(&snap_path(&self.dir, seq), seq, snapshot)?;
        self.stats.snapshots_written += 1;
        self.stats.snapshot_bytes_written += written;
        let m = mirrors();
        m.snapshots_written.inc();
        m.snapshot_bytes_written.add(written);
        self.rotate_after_snapshot(seq)?;
        Ok(seq)
    }

    /// Writes an **incremental** snapshot at the current sequence number:
    /// the state difference against the snapshot at `delta.base_seq`,
    /// which must exist on disk (recovery resolves the chain). Costs
    /// I/O proportional to the state *changed* since the base instead of
    /// total warehouse state. Rotates the active segment exactly like
    /// [`EvolutionStore::write_snapshot`].
    ///
    /// # Errors
    ///
    /// I/O failures, or [`Error::State`] when `base_seq` does not precede
    /// the current sequence number's snapshot point.
    pub fn write_delta_snapshot(&mut self, delta: &DeltaSnapshot) -> Result<u64> {
        let seq = self.next_seq;
        if delta.base_seq > seq {
            return Err(Error::state(format!(
                "delta base_seq {} is ahead of the store (next_seq {seq})",
                delta.base_seq
            )));
        }
        let _span = eve_trace::span("store.snapshot_delta");
        let written = write_delta_file(&delta_path(&self.dir, seq), seq, delta)?;
        self.stats.snapshots_written += 1;
        self.stats.delta_snapshots_written += 1;
        self.stats.snapshot_bytes_written += written;
        let m = mirrors();
        m.snapshots_written.inc();
        m.snapshot_bytes_written.add(written);
        self.rotate_after_snapshot(seq)?;
        Ok(seq)
    }

    /// Rotates the active segment after a snapshot at `seq`: later records
    /// land in a fresh segment starting at `seq`. A checkpoint at the very
    /// start of a segment needs no rotation. Before the current segment
    /// stops being final, any residue of a failed append must be truncated
    /// away — recovery only tolerates a damaged tail on the *final*
    /// segment. A failing truncation aborts the rotation (the snapshot
    /// itself is already durable, so recovery stays anchored and correct).
    fn rotate_after_snapshot(&mut self, seq: u64) -> Result<()> {
        let current_start = self
            .active_path
            .file_name()
            .and_then(|n| parse_numbered(&n.to_string_lossy(), "seg-", ".evl"));
        if current_start != Some(seq) {
            self.ensure_tail()?;
            let active_path = seg_path(&self.dir, seq);
            let mut active = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&active_path)
                .map_err(|e| Error::io(&active_path, e))?;
            crate::log::append_all(&mut active, &active_path, &segment_header(seq))?;
            active.sync_all().map_err(|e| Error::io(&active_path, e))?;
            // Make the rotation itself durable: the new segment's
            // directory entry must survive a crash, or recovery sees a
            // snapshot whose follow-on segment vanished.
            sync_dir(&self.dir)?;
            self.active = active;
            self.active_path = active_path;
            self.active_len = 16;
            self.stats.segments_created += 1;
            mirrors().segments_created.inc();
        }
        Ok(())
    }

    /// All snapshots (full and delta) with a well-formed header, in
    /// sequence order (damaged files are skipped). Header-only — listing
    /// does not read whole multi-megabyte state images; payload checksums
    /// are verified when a snapshot is actually loaded.
    ///
    /// # Errors
    ///
    /// I/O failures while listing.
    pub fn snapshot_index(&self) -> Result<Vec<SnapshotMeta>> {
        let mut out = Vec::new();
        for (seq, kind, path) in Self::snapshot_files(&self.dir)? {
            let generation = match kind {
                SnapshotKind::Full => read_snapshot_header(&path).map(|(_, g)| g),
                SnapshotKind::Delta => read_delta_header(&path).map(|(_, g, _)| g),
            };
            if let Ok(generation) = generation {
                out.push(SnapshotMeta {
                    seq,
                    generation,
                    kind,
                });
            }
        }
        Ok(out)
    }

    /// Number of log segment files currently on disk.
    ///
    /// # Errors
    ///
    /// I/O failures while listing.
    pub fn segment_count(&self) -> Result<usize> {
        Ok(Self::segment_paths(&self.dir)?.len())
    }

    /// Plans a time-travel read: the newest intact snapshot at or before
    /// `generation`, plus every subsequent record whose post-generation is
    /// `<= generation`. The caller replays the records on the snapshot.
    ///
    /// # Errors
    ///
    /// [`Error::State`] when `generation` precedes the retained horizon
    /// (i.e. history before the oldest snapshot was compacted away).
    pub fn plan_travel(&mut self, generation: u64) -> Result<(EngineSnapshot, Vec<SealedRecord>)> {
        let _span = eve_trace::span("store.time_travel");
        let plan = Self::plan_travel_in(&self.dir, generation)?;
        self.stats.records_replayed += plan.1.len() as u64;
        mirrors().records_replayed.add(plan.1.len() as u64);
        Ok(plan)
    }

    /// Read-only time-travel planning against a store *directory* — no
    /// lock, no truncation, no mutation. This is what lets a historical
    /// read run while a live store handle holds the directory lock. A
    /// torn tail on the final segment is simply ignored (its record was
    /// never acknowledged).
    ///
    /// # Errors
    ///
    /// As [`EvolutionStore::plan_travel`].
    pub fn plan_travel_in(
        dir: &Path,
        generation: u64,
    ) -> Result<(EngineSnapshot, Vec<SealedRecord>)> {
        // Newest intact snapshot with generation <= target. The header
        // pre-filter skips too-new snapshots without reading their state
        // images; candidates that pass it are fully validated (delta
        // candidates through their whole base chain).
        let entries = Self::snapshot_files(dir)?;
        let mut base: Option<(u64, EngineSnapshot)> = None;
        for idx in (0..entries.len()).rev() {
            let (seq, kind, path) = &entries[idx];
            let header_generation = match kind {
                SnapshotKind::Full => read_snapshot_header(path).map(|(_, g)| g),
                SnapshotKind::Delta => read_delta_header(path).map(|(_, g, _)| g),
            };
            if !matches!(header_generation, Ok(g) if g <= generation) {
                continue;
            }
            if let Ok(state) = Self::load_snapshot_entry(&entries, idx, 0) {
                base = Some((*seq, state));
                break;
            }
        }
        let Some((base_seq, snapshot)) = base else {
            return Err(Error::state(format!(
                "generation {generation} precedes the retained horizon — no snapshot at or \
                 before it exists (history may have been compacted)"
            )));
        };

        // Segments wholly before the base snapshot never replay: rotation
        // aligns boundaries with snapshots, so a segment whose successor
        // starts at or before `base_seq` is skipped without decoding.
        let segments = Self::segment_paths(dir)?;
        let mut records = Vec::new();
        for (idx, (start_seq, path)) in segments.iter().enumerate() {
            if segments
                .get(idx + 1)
                .is_some_and(|(next, _)| *next <= base_seq)
            {
                continue;
            }
            let contents = read_segment(path)?;
            let seg_end = start_seq + contents.records.len() as u64;
            if seg_end <= base_seq {
                continue;
            }
            let skip = base_seq.saturating_sub(*start_seq) as usize;
            for sealed in contents.records.into_iter().skip(skip) {
                if sealed.post_generation > generation {
                    return Ok((snapshot, records));
                }
                records.push(sealed);
            }
        }
        Ok((snapshot, records))
    }

    /// Deletes segments and snapshots strictly older than the newest
    /// **intact** snapshot, bounding disk use and recovery work. Time
    /// travel before that snapshot's generation becomes impossible
    /// afterwards. Returns `(segments_deleted, snapshots_deleted)`.
    ///
    /// The anchor is validated before anything is deleted: a damaged
    /// newest snapshot is skipped (exactly as recovery skips it), so
    /// compaction can never delete the only snapshot recovery could still
    /// load.
    ///
    /// # Errors
    ///
    /// I/O failures; [`Error::State`] when no intact snapshot exists
    /// (nothing to anchor recovery).
    pub fn compact(&mut self) -> Result<(usize, usize)> {
        let entries = Self::snapshot_files(&self.dir)?;
        let anchor = (0..entries.len()).rev().find_map(|idx| {
            Self::load_snapshot_entry(&entries, idx, 0)
                .ok()
                .map(|state| (idx, state))
        });
        let Some((anchor_idx, anchor_state)) = anchor else {
            return Err(Error::state(
                "cannot compact a store without an intact snapshot".to_owned(),
            ));
        };
        let (anchor_seq, anchor_kind, _) = entries[anchor_idx];

        // A delta anchor depends on its base chain, which is about to be
        // deleted — materialize the chain-resolved state as a full image
        // at the anchor's sequence number first. Only then is everything
        // older (including the delta chain itself) safe to drop.
        if anchor_kind == SnapshotKind::Delta {
            let written =
                write_snapshot_file(&snap_path(&self.dir, anchor_seq), anchor_seq, &anchor_state)?;
            self.stats.snapshots_written += 1;
            self.stats.snapshot_bytes_written += written;
        }

        let mut segments_deleted = 0usize;
        for (start_seq, path) in Self::segment_paths(&self.dir)? {
            // Rotation aligns segment boundaries with snapshot points, so a
            // segment starting before the anchor holds only pre-anchor
            // records — except the active segment, which is never deleted.
            if start_seq < anchor_seq && path != self.active_path {
                fs::remove_file(&path).map_err(|e| Error::io(&path, e))?;
                segments_deleted += 1;
            }
        }
        let mut snapshots_deleted = 0usize;
        for (seq, kind, path) in entries {
            // Deltas at the anchor sequence are superseded by the full
            // image that now exists there (materialized above, or already
            // present and intact).
            let superseded = seq == anchor_seq && kind == SnapshotKind::Delta;
            if seq < anchor_seq || superseded {
                fs::remove_file(&path).map_err(|e| Error::io(&path, e))?;
                snapshots_deleted += 1;
            }
        }
        if segments_deleted + snapshots_deleted > 0 {
            sync_dir(&self.dir)?;
        }
        Ok((segments_deleted, snapshots_deleted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::tup;
    use eve_sync::EvolutionOp;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eve-store-store-tests-{}-{name}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn empty_snapshot() -> EngineSnapshot {
        EngineSnapshot {
            mkb: eve_misd::Mkb::new().export_state(),
            sites: Vec::new(),
            views: Vec::new(),
            config: crate::snapshot::EngineConfig {
                sync_options: eve_sync::SyncOptions::default(),
                qc_params: eve_qc::QcParams::default(),
                workload: eve_qc::WorkloadModel::SingleUpdate,
                strategy: eve_qc::SelectionStrategy::QcBest,
                search: crate::snapshot::SearchModeState::default(),
                index_hints: Vec::new(),
            },
        }
    }

    fn batch_record(k: i64) -> LogRecord {
        LogRecord::Batch(vec![EvolutionOp::insert("R", vec![tup![k]])])
    }

    #[test]
    fn create_append_reopen() {
        let dir = temp_dir("basic");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        for k in 0..5 {
            let seq = store.append(0, batch_record(k)).unwrap();
            assert_eq!(seq, k as u64);
        }
        assert_eq!(store.next_seq(), 5);
        drop(store); // simulated crash: no shutdown handshake exists

        let (store, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.next_seq, 5);
        assert_eq!(recovered.tail.len(), 5, "snapshot at 0, all records replay");
        assert!(recovered.snapshot.is_some());
        assert_eq!(recovered.torn_bytes, 0);
        assert_eq!(store.next_seq(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_existing_store() {
        let dir = temp_dir("refuse");
        drop(EvolutionStore::create(&dir).unwrap());
        let err = EvolutionStore::create(&dir).unwrap_err();
        assert!(err.to_string().contains("already contains"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_open_of_same_directory_is_rejected() {
        // Pins the satellite bugfix: two live handles on one directory
        // would interleave appends and corrupt the tail. The second open
        // (or create) must fail while the first handle is alive, and
        // succeed again once it is dropped — including after a simulated
        // crash (drop without shutdown), since `flock` dies with the
        // descriptor.
        let dir = temp_dir("lock");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        store.append(0, batch_record(1)).unwrap();

        let err = EvolutionStore::open(&dir).unwrap_err();
        assert!(err.to_string().contains("already open"), "{err}");
        let err = EvolutionStore::create(&dir).unwrap_err();
        assert!(err.to_string().contains("already open"), "{err}");

        drop(store); // crash
        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.next_seq, 1, "the lock never blocks recovery");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn encoded_batch_is_one_fsync_and_contiguous_seqs() {
        let dir = temp_dir("group");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        let frames: Vec<Vec<u8>> = (0..5)
            .map(|k| {
                frame(&SealedRecord {
                    post_generation: 0,
                    record: batch_record(k),
                })
                .unwrap()
            })
            .collect();
        let slices: Vec<&[u8]> = frames.iter().map(Vec::as_slice).collect();
        let first = store.append_encoded_batch(&slices).unwrap();
        assert_eq!(first, 0);
        assert_eq!(store.next_seq(), 5);
        let stats = store.stats();
        assert_eq!(stats.records_appended, 5);
        assert_eq!(stats.fsyncs, 1, "one fsync covers the whole batch");
        assert_eq!(stats.group_commits, 1);
        drop(store);

        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.tail.len(), 5);
        assert_eq!(recovered.next_seq, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_snapshot_chain_anchors_recovery() {
        let dir = temp_dir("delta-chain");
        let mut store = EvolutionStore::create(&dir).unwrap();
        let state = empty_snapshot();
        store.write_snapshot(&state).unwrap(); // full @ 0
        for k in 0..3 {
            store.append(0, batch_record(k)).unwrap();
        }
        let d1 = DeltaSnapshot::between(0, &state, &state);
        store.write_delta_snapshot(&d1).unwrap(); // delta @ 3, base 0
        store.append(0, batch_record(3)).unwrap();
        let d2 = DeltaSnapshot::between(3, &state, &state);
        store.write_delta_snapshot(&d2).unwrap(); // delta @ 4, base 3
        store.append(0, batch_record(4)).unwrap();
        assert_eq!(store.stats().delta_snapshots_written, 2);
        drop(store);

        let (store, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(
            recovered.snapshot.as_ref().map(|(s, _)| *s),
            Some(4),
            "recovery anchors on the delta chain head"
        );
        assert_eq!(
            recovered.snapshot.as_ref().unwrap().1.to_bytes(),
            state.to_bytes(),
            "chain resolution reproduces the full state"
        );
        assert_eq!(recovered.tail.len(), 1, "only the post-delta record");
        let kinds: Vec<SnapshotKind> = store
            .snapshot_index()
            .unwrap()
            .iter()
            .map(|m| m.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![SnapshotKind::Full, SnapshotKind::Delta, SnapshotKind::Delta]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_delta_chain_falls_back_to_full_anchor() {
        let dir = temp_dir("delta-damaged");
        let mut store = EvolutionStore::create(&dir).unwrap();
        let state = empty_snapshot();
        store.write_snapshot(&state).unwrap();
        store.append(0, batch_record(1)).unwrap();
        let d = DeltaSnapshot::between(0, &state, &state);
        store.write_delta_snapshot(&d).unwrap(); // delta @ 1, base 0
        store.append(0, batch_record(2)).unwrap();
        drop(store);

        // Damage the delta: the whole chain candidate must be skipped and
        // recovery must re-anchor on the older full snapshot.
        let delta = delta_path(&dir, 1);
        let mut bytes = std::fs::read(&delta).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&delta, &bytes).unwrap();

        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.snapshots_skipped, 1);
        assert_eq!(recovered.snapshot.as_ref().map(|(s, _)| *s), Some(0));
        assert_eq!(recovered.tail.len(), 2, "replays from the older anchor");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_materializes_a_delta_anchor_before_dropping_its_chain() {
        let dir = temp_dir("delta-compact");
        let mut store = EvolutionStore::create(&dir).unwrap();
        let state = empty_snapshot();
        store.write_snapshot(&state).unwrap();
        for k in 0..2 {
            store.append(0, batch_record(k)).unwrap();
        }
        let d = DeltaSnapshot::between(0, &state, &state);
        store.write_delta_snapshot(&d).unwrap(); // delta @ 2, base 0
        store.append(0, batch_record(2)).unwrap();

        let (segs, snaps) = store.compact().unwrap();
        assert_eq!(segs, 1, "the pre-anchor segment is gone");
        assert_eq!(snaps, 2, "the base full image and the delta itself");
        assert!(
            snap_path(&dir, 2).exists(),
            "the anchor was materialized as a full image"
        );
        assert!(!delta_path(&dir, 2).exists());
        drop(store);

        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.snapshot.as_ref().map(|(s, _)| *s), Some(2));
        assert_eq!(
            recovered.snapshot.as_ref().unwrap().1.to_bytes(),
            state.to_bytes()
        );
        assert_eq!(recovered.tail.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_and_sequential_open_agree() {
        let dir = temp_dir("par-vs-seq");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        for k in 0..4 {
            store.append(0, batch_record(k)).unwrap();
        }
        store.write_snapshot(&empty_snapshot()).unwrap();
        for k in 4..9 {
            store.append(0, batch_record(k)).unwrap();
        }
        drop(store);

        let (_, sequential) = EvolutionStore::open_with(
            &dir,
            RecoveryOptions {
                parallel_replay: false,
            },
        )
        .unwrap();
        let (store, parallel) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(parallel.next_seq, sequential.next_seq);
        assert_eq!(parallel.tail.len(), sequential.tail.len());
        for (a, b) in parallel.tail.iter().zip(&sequential.tail) {
            assert_eq!(crate::codec::to_bytes(a), crate::codec::to_bytes(b));
        }
        assert!(store.stats().replay_threads >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_refuses_missing_store() {
        let dir = temp_dir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(EvolutionStore::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_rotates_segment_and_anchors_recovery() {
        let dir = temp_dir("rotate");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        for k in 0..3 {
            store.append(0, batch_record(k)).unwrap();
        }
        store.write_snapshot(&empty_snapshot()).unwrap();
        assert_eq!(store.segment_count().unwrap(), 2);
        for k in 3..5 {
            store.append(0, batch_record(k)).unwrap();
        }
        drop(store);

        let (store, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(
            recovered.snapshot.as_ref().map(|(s, _)| *s),
            Some(3),
            "recovery anchors on the newest snapshot"
        );
        assert_eq!(recovered.tail.len(), 2, "only post-snapshot records replay");
        assert_eq!(recovered.next_seq, 5);
        assert_eq!(store.snapshot_index().unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = temp_dir("torn");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        for k in 0..3 {
            store.append(0, batch_record(k)).unwrap();
        }
        let active_path = store.active_path.clone();
        drop(store);

        // Tear the last record: cut 5 bytes off the file.
        let len = std::fs::metadata(&active_path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&active_path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let (mut store, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.tail.len(), 2, "torn record dropped");
        assert_eq!(recovered.next_seq, 2);
        assert!(recovered.torn_bytes > 0);
        assert_eq!(store.stats().torn_records_truncated, 1);

        // The store keeps working after truncation.
        let seq = store.append(0, batch_record(99)).unwrap();
        assert_eq!(seq, 2);
        drop(store);
        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.tail.len(), 3);
        assert_eq!(recovered.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_snapshot_falls_back_to_older_one() {
        let dir = temp_dir("fallback");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        store.append(0, batch_record(1)).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        store.append(0, batch_record(2)).unwrap();
        drop(store);

        // Damage the newer snapshot.
        let snap1 = snap_path(&dir, 1);
        let mut bytes = std::fs::read(&snap1).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&snap1, &bytes).unwrap();

        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.snapshots_skipped, 1);
        assert_eq!(recovered.snapshot.as_ref().map(|(s, _)| *s), Some(0));
        assert_eq!(recovered.tail.len(), 2, "replays from the older anchor");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_drops_pre_anchor_history() {
        let dir = temp_dir("compact");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        for k in 0..4 {
            store.append(0, batch_record(k)).unwrap();
        }
        store.write_snapshot(&empty_snapshot()).unwrap();
        store.append(0, batch_record(9)).unwrap();
        let (segs, snaps) = store.compact().unwrap();
        assert_eq!(segs, 1);
        assert_eq!(snaps, 1);
        drop(store);
        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.snapshot.as_ref().map(|(s, _)| *s), Some(4));
        assert_eq!(recovered.tail.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_never_anchors_on_a_damaged_snapshot() {
        let dir = temp_dir("compact-damaged");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        store.append(0, batch_record(1)).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        store.append(0, batch_record(2)).unwrap();

        // Damage the newest snapshot: recovery would skip it, so compaction
        // must not delete the older intact anchor.
        let snap1 = snap_path(&dir, 1);
        let mut bytes = std::fs::read(&snap1).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&snap1, &bytes).unwrap();

        let (segs, snaps) = store.compact().unwrap();
        assert_eq!(
            (segs, snaps),
            (0, 0),
            "intact anchor is seq 0 — nothing precedes it"
        );
        drop(store);
        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(
            recovered.snapshot.as_ref().map(|(s, _)| *s),
            Some(0),
            "the intact snapshot survived compaction"
        );
        assert_eq!(recovered.tail.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_rotation_headerless_final_segment_is_dropped() {
        let dir = temp_dir("torn-rotation");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        for k in 0..3 {
            store.append(0, batch_record(k)).unwrap();
        }
        store.write_snapshot(&empty_snapshot()).unwrap(); // rotates to seg-3
        drop(store);

        // Crash window: the rotated segment file exists but its header
        // never reached disk.
        let seg3 = seg_path(&dir, 3);
        let f = OpenOptions::new().write(true).open(&seg3).unwrap();
        f.set_len(7).unwrap();
        drop(f);

        let (mut store, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.next_seq, 3, "no acknowledged record lost");
        assert_eq!(recovered.snapshot.as_ref().map(|(s, _)| *s), Some(3));
        assert!(recovered.torn_bytes > 0, "the headerless file was counted");
        assert!(!seg3.exists(), "the torn rotation residue is gone");
        // Appends continue on the previous segment.
        assert_eq!(store.append(0, batch_record(9)).unwrap(), 3);
        drop(store);
        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.next_seq, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_truncates_foreign_tail_residue_first() {
        // A failed append can leave bytes past the durable prefix. The
        // rotation on checkpoint must truncate them, otherwise the damaged
        // tail would sit in a non-final segment and brick the next open.
        let dir = temp_dir("residue");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        store.append(0, batch_record(1)).unwrap();

        // Simulate the residue through a second handle.
        use std::io::Write;
        let mut raw = OpenOptions::new()
            .append(true)
            .open(&store.active_path)
            .unwrap();
        raw.write_all(&[0xAA, 0xBB, 0xCC]).unwrap();
        raw.sync_all().unwrap();
        drop(raw);

        store.write_snapshot(&empty_snapshot()).unwrap(); // must ensure_tail
        store.append(0, batch_record(2)).unwrap();
        drop(store);

        let (_, recovered) = EvolutionStore::open(&dir).unwrap();
        assert_eq!(recovered.torn_bytes, 0, "no damage survived the rotation");
        assert_eq!(recovered.next_seq, 2);
        assert_eq!(recovered.tail.len(), 1, "replay from the seq-1 snapshot");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_index_is_header_only_but_travel_validates_payloads() {
        let dir = temp_dir("header-only");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        store.append(0, batch_record(1)).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();

        // Flip a payload byte in the newest snapshot: the header still
        // reads, so the listing keeps it, but plan_travel must fall back
        // to the older intact snapshot instead of failing on decode.
        let snap1 = snap_path(&dir, 1);
        let mut bytes = std::fs::read(&snap1).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&snap1, &bytes).unwrap();

        assert_eq!(store.snapshot_index().unwrap().len(), 2, "headers intact");
        let (snapshot, records) = store.plan_travel(u64::MAX).unwrap();
        assert_eq!(snapshot.generation(), 0);
        assert_eq!(records.len(), 1, "replays from the intact seq-0 anchor");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_stats_accumulate_and_reset() {
        let dir = temp_dir("stats");
        let mut store = EvolutionStore::create(&dir).unwrap();
        store.write_snapshot(&empty_snapshot()).unwrap();
        store.append(0, batch_record(1)).unwrap();
        let stats = store.stats();
        assert_eq!(stats.records_appended, 1);
        assert_eq!(stats.fsyncs, 1);
        assert!(stats.log_bytes_appended > 12);
        assert_eq!(stats.snapshots_written, 1);
        assert!(stats.snapshot_bytes_written > 0);
        store.reset_stats();
        assert_eq!(store.stats(), StoreStats::default());
        std::fs::remove_dir_all(&dir).ok();
    }
}
