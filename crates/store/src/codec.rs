//! Hand-rolled binary codec for every domain type the store persists.
//!
//! The format is deliberately boring: little-endian fixed-width integers,
//! `u64`-length-prefixed strings and vectors, one tag byte per enum
//! variant, `f64` as IEEE bit patterns (exact round-trip, no text
//! formatting loss). There is no reflection and no external dependency —
//! the build environment has no registry access, and the paper's engine
//! state is a closed set of types.
//!
//! Encoding is **canonical**: encoding equal states produces equal bytes,
//! which is what lets the differential recovery suites compare engines by
//! their encoded snapshots ("byte-identical").

use eve_esql::{
    AttrEvolution, CondEvolution, ConditionItem, FromItem, RelEvolution, SelectItem, ViewDef,
    ViewExtent,
};
use eve_misd::{
    AttributeInfo, JoinConstraint, MkbState, PcConstraint, PcRelationship, PcSide, RelationInfo,
    SchemaChange, SiteId,
};
use eve_qc::{IoBound, QcParams, SelectionStrategy, WorkloadModel};
use eve_relational::{
    ColumnDef, ColumnRef, CompOp, DataType, Operand, Predicate, PrimitiveClause, Relation, Schema,
    Tuple, Value,
};
use eve_sync::{EvolutionOp, SyncOptions};

use crate::error::{Error, Result};

// ---------------------------------------------------------------------
// Byte-level writer / reader
// ---------------------------------------------------------------------

/// Appends primitive values to a byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE bit pattern, little-endian.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends an optional string (presence byte + string).
    pub fn opt_str(&mut self, v: Option<&str>) {
        match v {
            None => self.bool(false),
            Some(s) => {
                self.bool(true);
                self.str(s);
            }
        }
    }
}

/// Reads primitive values back out of a byte slice, bounds-checked.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Whether every byte has been consumed — decoding a record must drain
    /// its frame exactly, otherwise the frame is corrupt.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Takes the next `n` raw bytes, bounds-checked.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on truncated or malformed input.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| Error::corrupt("length overflow"))?;
        if end > self.buf.len() {
            return Err(Error::corrupt(format!(
                "truncated payload: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on truncated or malformed input.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte (0/1; anything else is corrupt).
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on truncated or malformed input.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::corrupt(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on truncated or malformed input.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on truncated or malformed input.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on truncated or malformed input.
    pub fn i64(&mut self) -> Result<i64> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its IEEE bit pattern.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on truncated or malformed input.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64` and converts it to `usize`, checked.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on truncated or malformed input.
    pub fn usize(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| Error::corrupt("usize overflow"))
    }

    /// A length prefix that must be satisfiable by the remaining bytes —
    /// rejects absurd lengths from corrupt frames before any allocation.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] when the length exceeds the remaining bytes.
    #[allow(clippy::len_without_is_empty)] // decodes a length prefix, not a container size
    pub fn len(&mut self) -> Result<usize> {
        let n = self.usize()?;
        if n > self.buf.len() - self.pos {
            return Err(Error::corrupt(format!(
                "length prefix {n} exceeds remaining {} bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on truncated or malformed input.
    pub fn str(&mut self) -> Result<String> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::corrupt("invalid utf-8 string"))
    }

    /// Reads an optional string (presence byte + string).
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on truncated or malformed input.
    pub fn opt_str(&mut self) -> Result<Option<String>> {
        Ok(if self.bool()? {
            Some(self.str()?)
        } else {
            None
        })
    }
}

/// A type the store can persist.
pub trait Codec: Sized {
    /// Appends the canonical encoding of `self` to `enc`.
    fn encode(&self, enc: &mut Enc);

    /// Decodes one value from `dec`.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on any malformed or truncated input.
    fn decode(dec: &mut Dec<'_>) -> Result<Self>;
}

/// Encodes a value into a fresh byte vector.
#[must_use]
pub fn to_bytes<T: Codec>(value: &T) -> Vec<u8> {
    let mut enc = Enc::new();
    value.encode(&mut enc);
    enc.into_bytes()
}

/// Decodes a value from a byte slice, requiring the slice to be consumed
/// exactly.
///
/// # Errors
///
/// [`Error::Corrupt`] on malformed input or trailing bytes.
pub fn from_bytes<T: Codec>(bytes: &[u8]) -> Result<T> {
    let mut dec = Dec::new(bytes);
    let value = T::decode(&mut dec)?;
    if !dec.is_drained() {
        return Err(Error::corrupt("trailing bytes after payload"));
    }
    Ok(value)
}

/// Encodes a slice as a length-prefixed sequence.
pub fn vec_encode<T: Codec>(items: &[T], enc: &mut Enc) {
    enc.usize(items.len());
    for item in items {
        item.encode(enc);
    }
}

/// Decodes a length-prefixed sequence.
///
/// # Errors
///
/// [`Error::Corrupt`] on malformed input.
pub fn vec_decode<T: Codec>(dec: &mut Dec<'_>) -> Result<Vec<T>> {
    let n = dec.len()?;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(T::decode(dec)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Relational substrate
// ---------------------------------------------------------------------

impl Codec for DataType {
    fn encode(&self, enc: &mut Enc) {
        enc.u8(match self {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Bool => 2,
            DataType::Text => 3,
        });
    }

    fn decode(dec: &mut Dec<'_>) -> Result<DataType> {
        Ok(match dec.u8()? {
            0 => DataType::Int,
            1 => DataType::Float,
            2 => DataType::Bool,
            3 => DataType::Text,
            other => return Err(Error::corrupt(format!("invalid DataType tag {other}"))),
        })
    }
}

impl Codec for Value {
    fn encode(&self, enc: &mut Enc) {
        match self {
            Value::Int(v) => {
                enc.u8(0);
                enc.i64(*v);
            }
            Value::Float(v) => {
                enc.u8(1);
                // Normalize -0.0 exactly as `Value::float` does, keeping the
                // encoding canonical (equal values, equal bytes).
                enc.f64(if *v == 0.0 { 0.0 } else { *v });
            }
            Value::Bool(v) => {
                enc.u8(2);
                enc.bool(*v);
            }
            Value::Text(v) => {
                enc.u8(3);
                enc.str(v);
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Value> {
        Ok(match dec.u8()? {
            0 => Value::Int(dec.i64()?),
            1 => {
                let bits = dec.f64()?;
                Value::float(bits).map_err(|_| Error::corrupt("NaN float value"))?
            }
            2 => Value::Bool(dec.bool()?),
            3 => Value::Text(dec.str()?),
            other => return Err(Error::corrupt(format!("invalid Value tag {other}"))),
        })
    }
}

impl Codec for Tuple {
    fn encode(&self, enc: &mut Enc) {
        vec_encode(self.values(), enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Tuple> {
        Ok(Tuple::new(vec_decode(dec)?))
    }
}

impl Codec for ColumnRef {
    fn encode(&self, enc: &mut Enc) {
        enc.opt_str(self.qualifier.as_deref());
        enc.str(&self.name);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<ColumnRef> {
        Ok(ColumnRef {
            qualifier: dec.opt_str()?,
            name: dec.str()?,
        })
    }
}

impl Codec for ColumnDef {
    fn encode(&self, enc: &mut Enc) {
        self.column.encode(enc);
        self.ty.encode(enc);
        enc.u32(self.byte_size);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<ColumnDef> {
        Ok(ColumnDef {
            column: ColumnRef::decode(dec)?,
            ty: DataType::decode(dec)?,
            byte_size: dec.u32()?,
        })
    }
}

impl Codec for Schema {
    fn encode(&self, enc: &mut Enc) {
        vec_encode(self.columns(), enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Schema> {
        Schema::new(vec_decode(dec)?).map_err(|e| Error::corrupt(format!("invalid schema: {e}")))
    }
}

impl Codec for Relation {
    fn encode(&self, enc: &mut Enc) {
        enc.str(self.name());
        self.schema().encode(enc);
        vec_encode(self.tuples(), enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Relation> {
        let name = dec.str()?;
        let schema = Schema::decode(dec)?;
        let tuples = vec_decode(dec)?;
        Relation::with_tuples(name, schema, tuples)
            .map_err(|e| Error::corrupt(format!("invalid relation extent: {e}")))
    }
}

impl Codec for CompOp {
    fn encode(&self, enc: &mut Enc) {
        enc.u8(match self {
            CompOp::Lt => 0,
            CompOp::Le => 1,
            CompOp::Eq => 2,
            CompOp::Ge => 3,
            CompOp::Gt => 4,
            CompOp::Ne => 5,
        });
    }

    fn decode(dec: &mut Dec<'_>) -> Result<CompOp> {
        Ok(match dec.u8()? {
            0 => CompOp::Lt,
            1 => CompOp::Le,
            2 => CompOp::Eq,
            3 => CompOp::Ge,
            4 => CompOp::Gt,
            5 => CompOp::Ne,
            other => return Err(Error::corrupt(format!("invalid CompOp tag {other}"))),
        })
    }
}

impl Codec for Operand {
    fn encode(&self, enc: &mut Enc) {
        match self {
            Operand::Column(c) => {
                enc.u8(0);
                c.encode(enc);
            }
            Operand::Literal(v) => {
                enc.u8(1);
                v.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Operand> {
        Ok(match dec.u8()? {
            0 => Operand::Column(ColumnRef::decode(dec)?),
            1 => Operand::Literal(Value::decode(dec)?),
            other => return Err(Error::corrupt(format!("invalid Operand tag {other}"))),
        })
    }
}

impl Codec for PrimitiveClause {
    fn encode(&self, enc: &mut Enc) {
        self.left.encode(enc);
        self.op.encode(enc);
        self.right.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<PrimitiveClause> {
        Ok(PrimitiveClause {
            left: ColumnRef::decode(dec)?,
            op: CompOp::decode(dec)?,
            right: Operand::decode(dec)?,
        })
    }
}

impl Codec for Predicate {
    fn encode(&self, enc: &mut Enc) {
        vec_encode(self.clauses(), enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Predicate> {
        Ok(Predicate::new(vec_decode(dec)?))
    }
}

// ---------------------------------------------------------------------
// MISD / MKB
// ---------------------------------------------------------------------

impl Codec for AttributeInfo {
    fn encode(&self, enc: &mut Enc) {
        enc.str(&self.name);
        self.ty.encode(enc);
        enc.u32(self.byte_size);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<AttributeInfo> {
        Ok(AttributeInfo {
            name: dec.str()?,
            ty: DataType::decode(dec)?,
            byte_size: dec.u32()?,
        })
    }
}

impl Codec for RelationInfo {
    fn encode(&self, enc: &mut Enc) {
        enc.str(&self.name);
        enc.u32(self.site.0);
        vec_encode(&self.attributes, enc);
        enc.u64(self.cardinality);
        enc.f64(self.selectivity);
        enc.u64(self.blocking_factor);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<RelationInfo> {
        Ok(RelationInfo {
            name: dec.str()?,
            site: SiteId(dec.u32()?),
            attributes: vec_decode(dec)?,
            cardinality: dec.u64()?,
            selectivity: dec.f64()?,
            blocking_factor: dec.u64()?,
        })
    }
}

impl Codec for PcRelationship {
    fn encode(&self, enc: &mut Enc) {
        enc.u8(match self {
            PcRelationship::Subset => 0,
            PcRelationship::Equivalent => 1,
            PcRelationship::Superset => 2,
        });
    }

    fn decode(dec: &mut Dec<'_>) -> Result<PcRelationship> {
        Ok(match dec.u8()? {
            0 => PcRelationship::Subset,
            1 => PcRelationship::Equivalent,
            2 => PcRelationship::Superset,
            other => {
                return Err(Error::corrupt(format!(
                    "invalid PcRelationship tag {other}"
                )));
            }
        })
    }
}

impl Codec for String {
    fn encode(&self, enc: &mut Enc) {
        enc.str(self);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<String> {
        dec.str()
    }
}

impl Codec for PcSide {
    fn encode(&self, enc: &mut Enc) {
        enc.str(&self.relation);
        vec_encode(&self.attrs, enc);
        self.selection.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<PcSide> {
        Ok(PcSide {
            relation: dec.str()?,
            attrs: vec_decode(dec)?,
            selection: Predicate::decode(dec)?,
        })
    }
}

impl Codec for PcConstraint {
    fn encode(&self, enc: &mut Enc) {
        self.left.encode(enc);
        self.relationship.encode(enc);
        self.right.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<PcConstraint> {
        Ok(PcConstraint {
            left: PcSide::decode(dec)?,
            relationship: PcRelationship::decode(dec)?,
            right: PcSide::decode(dec)?,
        })
    }
}

impl Codec for JoinConstraint {
    fn encode(&self, enc: &mut Enc) {
        enc.str(&self.left);
        enc.str(&self.right);
        vec_encode(&self.condition, enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<JoinConstraint> {
        Ok(JoinConstraint {
            left: dec.str()?,
            right: dec.str()?,
            condition: vec_decode(dec)?,
        })
    }
}

impl Codec for SchemaChange {
    fn encode(&self, enc: &mut Enc) {
        match self {
            SchemaChange::DeleteAttribute {
                relation,
                attribute,
            } => {
                enc.u8(0);
                enc.str(relation);
                enc.str(attribute);
            }
            SchemaChange::AddAttribute {
                relation,
                attribute,
            } => {
                enc.u8(1);
                enc.str(relation);
                attribute.encode(enc);
            }
            SchemaChange::RenameAttribute { relation, from, to } => {
                enc.u8(2);
                enc.str(relation);
                enc.str(from);
                enc.str(to);
            }
            SchemaChange::DeleteRelation { relation } => {
                enc.u8(3);
                enc.str(relation);
            }
            SchemaChange::AddRelation { relation } => {
                enc.u8(4);
                relation.encode(enc);
            }
            SchemaChange::RenameRelation { from, to } => {
                enc.u8(5);
                enc.str(from);
                enc.str(to);
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<SchemaChange> {
        Ok(match dec.u8()? {
            0 => SchemaChange::DeleteAttribute {
                relation: dec.str()?,
                attribute: dec.str()?,
            },
            1 => SchemaChange::AddAttribute {
                relation: dec.str()?,
                attribute: AttributeInfo::decode(dec)?,
            },
            2 => SchemaChange::RenameAttribute {
                relation: dec.str()?,
                from: dec.str()?,
                to: dec.str()?,
            },
            3 => SchemaChange::DeleteRelation {
                relation: dec.str()?,
            },
            4 => SchemaChange::AddRelation {
                relation: RelationInfo::decode(dec)?,
            },
            5 => SchemaChange::RenameRelation {
                from: dec.str()?,
                to: dec.str()?,
            },
            other => return Err(Error::corrupt(format!("invalid SchemaChange tag {other}"))),
        })
    }
}

impl Codec for MkbState {
    fn encode(&self, enc: &mut Enc) {
        enc.usize(self.sites.len());
        for (id, name) in &self.sites {
            enc.u32(*id);
            enc.str(name);
        }
        vec_encode(&self.relations, enc);
        vec_encode(&self.join_constraints, enc);
        vec_encode(&self.pc_constraints, enc);
        enc.usize(self.join_selectivities.len());
        for (a, b, js) in &self.join_selectivities {
            enc.str(a);
            enc.str(b);
            enc.f64(*js);
        }
        enc.f64(self.default_join_selectivity);
        enc.u64(self.generation);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<MkbState> {
        let n_sites = dec.len()?;
        let mut sites = Vec::with_capacity(n_sites.min(4096));
        for _ in 0..n_sites {
            sites.push((dec.u32()?, dec.str()?));
        }
        let relations = vec_decode(dec)?;
        let join_constraints = vec_decode(dec)?;
        let pc_constraints = vec_decode(dec)?;
        let n_js = dec.len()?;
        let mut join_selectivities = Vec::with_capacity(n_js.min(4096));
        for _ in 0..n_js {
            join_selectivities.push((dec.str()?, dec.str()?, dec.f64()?));
        }
        Ok(MkbState {
            sites,
            relations,
            join_constraints,
            pc_constraints,
            join_selectivities,
            default_join_selectivity: dec.f64()?,
            generation: dec.u64()?,
        })
    }
}

// ---------------------------------------------------------------------
// E-SQL views (structural, not via the pretty-printer: the log must
// round-trip definitions exactly, including ones the synchronizer built)
// ---------------------------------------------------------------------

impl Codec for ViewExtent {
    fn encode(&self, enc: &mut Enc) {
        enc.u8(match self {
            ViewExtent::Approximate => 0,
            ViewExtent::Equal => 1,
            ViewExtent::Superset => 2,
            ViewExtent::Subset => 3,
        });
    }

    fn decode(dec: &mut Dec<'_>) -> Result<ViewExtent> {
        Ok(match dec.u8()? {
            0 => ViewExtent::Approximate,
            1 => ViewExtent::Equal,
            2 => ViewExtent::Superset,
            3 => ViewExtent::Subset,
            other => return Err(Error::corrupt(format!("invalid ViewExtent tag {other}"))),
        })
    }
}

impl Codec for SelectItem {
    fn encode(&self, enc: &mut Enc) {
        self.attr.encode(enc);
        enc.opt_str(self.alias.as_deref());
        enc.bool(self.evolution.dispensable);
        enc.bool(self.evolution.replaceable);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<SelectItem> {
        Ok(SelectItem {
            attr: ColumnRef::decode(dec)?,
            alias: dec.opt_str()?,
            evolution: AttrEvolution {
                dispensable: dec.bool()?,
                replaceable: dec.bool()?,
            },
        })
    }
}

impl Codec for FromItem {
    fn encode(&self, enc: &mut Enc) {
        enc.str(&self.relation);
        enc.opt_str(self.alias.as_deref());
        enc.bool(self.evolution.dispensable);
        enc.bool(self.evolution.replaceable);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<FromItem> {
        Ok(FromItem {
            relation: dec.str()?,
            alias: dec.opt_str()?,
            evolution: RelEvolution {
                dispensable: dec.bool()?,
                replaceable: dec.bool()?,
            },
        })
    }
}

impl Codec for ConditionItem {
    fn encode(&self, enc: &mut Enc) {
        self.clause.encode(enc);
        enc.bool(self.evolution.dispensable);
        enc.bool(self.evolution.replaceable);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<ConditionItem> {
        Ok(ConditionItem {
            clause: PrimitiveClause::decode(dec)?,
            evolution: CondEvolution {
                dispensable: dec.bool()?,
                replaceable: dec.bool()?,
            },
        })
    }
}

impl Codec for ViewDef {
    fn encode(&self, enc: &mut Enc) {
        enc.str(&self.name);
        match &self.column_names {
            None => enc.bool(false),
            Some(cols) => {
                enc.bool(true);
                vec_encode(cols, enc);
            }
        }
        self.ve.encode(enc);
        vec_encode(&self.select, enc);
        vec_encode(&self.from, enc);
        vec_encode(&self.conditions, enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<ViewDef> {
        Ok(ViewDef {
            name: dec.str()?,
            column_names: if dec.bool()? {
                Some(vec_decode(dec)?)
            } else {
                None
            },
            ve: ViewExtent::decode(dec)?,
            select: vec_decode(dec)?,
            from: vec_decode(dec)?,
            conditions: vec_decode(dec)?,
        })
    }
}

// ---------------------------------------------------------------------
// Evolution ops and engine configuration
// ---------------------------------------------------------------------

impl Codec for EvolutionOp {
    fn encode(&self, enc: &mut Enc) {
        match self {
            EvolutionOp::Data {
                relation,
                inserts,
                deletes,
            } => {
                enc.u8(0);
                enc.str(relation);
                vec_encode(inserts, enc);
                vec_encode(deletes, enc);
            }
            EvolutionOp::Capability { change, new_extent } => {
                enc.u8(1);
                change.encode(enc);
                match new_extent {
                    None => enc.bool(false),
                    Some(extent) => {
                        enc.bool(true);
                        extent.encode(enc);
                    }
                }
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<EvolutionOp> {
        Ok(match dec.u8()? {
            0 => EvolutionOp::Data {
                relation: dec.str()?,
                inserts: vec_decode(dec)?,
                deletes: vec_decode(dec)?,
            },
            1 => EvolutionOp::Capability {
                change: SchemaChange::decode(dec)?,
                new_extent: if dec.bool()? {
                    Some(Relation::decode(dec)?)
                } else {
                    None
                },
            },
            other => return Err(Error::corrupt(format!("invalid EvolutionOp tag {other}"))),
        })
    }
}

impl Codec for SyncOptions {
    fn encode(&self, enc: &mut Enc) {
        enc.usize(self.max_rewritings);
        enc.bool(self.enumerate_dispensable_drops);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<SyncOptions> {
        Ok(SyncOptions {
            max_rewritings: dec.usize()?,
            enumerate_dispensable_drops: dec.bool()?,
        })
    }
}

impl Codec for IoBound {
    fn encode(&self, enc: &mut Enc) {
        enc.u8(match self {
            IoBound::Lower => 0,
            IoBound::Upper => 1,
            IoBound::Midpoint => 2,
        });
    }

    fn decode(dec: &mut Dec<'_>) -> Result<IoBound> {
        Ok(match dec.u8()? {
            0 => IoBound::Lower,
            1 => IoBound::Upper,
            2 => IoBound::Midpoint,
            other => return Err(Error::corrupt(format!("invalid IoBound tag {other}"))),
        })
    }
}

impl Codec for QcParams {
    fn encode(&self, enc: &mut Enc) {
        for v in [
            self.w1,
            self.w2,
            self.rho_d1,
            self.rho_d2,
            self.rho_attr,
            self.rho_ext,
            self.cost_m,
            self.cost_t,
            self.cost_io,
            self.rho_quality,
            self.rho_cost,
        ] {
            enc.f64(v);
        }
        self.io_bound.encode(enc);
        enc.bool(self.count_notification);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<QcParams> {
        Ok(QcParams {
            w1: dec.f64()?,
            w2: dec.f64()?,
            rho_d1: dec.f64()?,
            rho_d2: dec.f64()?,
            rho_attr: dec.f64()?,
            rho_ext: dec.f64()?,
            cost_m: dec.f64()?,
            cost_t: dec.f64()?,
            cost_io: dec.f64()?,
            rho_quality: dec.f64()?,
            rho_cost: dec.f64()?,
            io_bound: IoBound::decode(dec)?,
            count_notification: dec.bool()?,
        })
    }
}

impl Codec for WorkloadModel {
    fn encode(&self, enc: &mut Enc) {
        match self {
            WorkloadModel::SingleUpdate => {
                enc.u8(0);
            }
            WorkloadModel::TuplesProportional { per_tuple } => {
                enc.u8(1);
                enc.f64(*per_tuple);
            }
            WorkloadModel::PerRelation { updates } => {
                enc.u8(2);
                enc.f64(*updates);
            }
            WorkloadModel::PerSite { updates } => {
                enc.u8(3);
                enc.f64(*updates);
            }
            WorkloadModel::Fixed { updates } => {
                enc.u8(4);
                enc.f64(*updates);
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<WorkloadModel> {
        Ok(match dec.u8()? {
            0 => WorkloadModel::SingleUpdate,
            1 => WorkloadModel::TuplesProportional {
                per_tuple: dec.f64()?,
            },
            2 => WorkloadModel::PerRelation {
                updates: dec.f64()?,
            },
            3 => WorkloadModel::PerSite {
                updates: dec.f64()?,
            },
            4 => WorkloadModel::Fixed {
                updates: dec.f64()?,
            },
            other => return Err(Error::corrupt(format!("invalid WorkloadModel tag {other}"))),
        })
    }
}

impl Codec for SelectionStrategy {
    fn encode(&self, enc: &mut Enc) {
        enc.u8(match self {
            SelectionStrategy::QcBest => 0,
            SelectionStrategy::FirstFound => 1,
            SelectionStrategy::QualityOnly => 2,
            SelectionStrategy::CostOnly => 3,
        });
    }

    fn decode(dec: &mut Dec<'_>) -> Result<SelectionStrategy> {
        Ok(match dec.u8()? {
            0 => SelectionStrategy::QcBest,
            1 => SelectionStrategy::FirstFound,
            2 => SelectionStrategy::QualityOnly,
            3 => SelectionStrategy::CostOnly,
            other => {
                return Err(Error::corrupt(format!(
                    "invalid SelectionStrategy tag {other}"
                )));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::tup;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = to_bytes(value);
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(&back, value);
        // Canonical: re-encoding reproduces the same bytes.
        assert_eq!(to_bytes(&back), bytes);
    }

    #[test]
    fn primitive_values_roundtrip() {
        for v in [
            Value::Int(i64::MIN),
            Value::Int(0),
            Value::float(-0.0).unwrap(),
            Value::Float(1.5e300),
            Value::Bool(true),
            Value::Text("O'Hare —ναί".into()),
            Value::Text(String::new()),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn nan_float_is_rejected_on_decode() {
        let mut enc = Enc::new();
        enc.u8(1);
        enc.f64(f64::NAN);
        let err = from_bytes::<Value>(&enc.into_bytes()).unwrap_err();
        assert!(err.to_string().contains("NaN"), "{err}");
    }

    #[test]
    fn relation_roundtrips_with_duplicates_in_order() {
        let rel = Relation::with_tuples(
            "R",
            Schema::of(&[("A", DataType::Int), ("B", DataType::Text)]).unwrap(),
            vec![tup![2, "y"], tup![1, "x"], tup![2, "y"]],
        )
        .unwrap();
        let back: Relation = from_bytes(&to_bytes(&rel)).unwrap();
        assert_eq!(back, rel);
        assert_eq!(back.tuples(), rel.tuples(), "bag order preserved");
    }

    #[test]
    fn schema_mismatched_tuples_rejected() {
        let rel = Relation::with_tuples(
            "R",
            Schema::of(&[("A", DataType::Int)]).unwrap(),
            vec![tup![1]],
        )
        .unwrap();
        let mut bytes = to_bytes(&rel);
        // Flip the tuple's Value tag (last 9 bytes are tag + i64) to Text
        // with a bogus layout: decoding must fail cleanly, not panic.
        let n = bytes.len();
        bytes[n - 9] = 3;
        assert!(from_bytes::<Relation>(&bytes).is_err());
    }

    #[test]
    fn view_defs_roundtrip_structurally() {
        let view = eve_esql::parse_view(
            "CREATE VIEW Asia-Customer (N, A) (VE = '~') AS \
             SELECT C.Name AS CN (AD = true, AR = true), C.Address \
             FROM Customer C (RR = true), FlightRes F (RD = true) \
             WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') (CD = true)",
        )
        .unwrap();
        roundtrip(&view);
    }

    #[test]
    fn schema_changes_roundtrip() {
        let changes = vec![
            SchemaChange::DeleteAttribute {
                relation: "R".into(),
                attribute: "A".into(),
            },
            SchemaChange::AddAttribute {
                relation: "R".into(),
                attribute: AttributeInfo::sized("Z", DataType::Text, 40),
            },
            SchemaChange::RenameAttribute {
                relation: "R".into(),
                from: "A".into(),
                to: "B".into(),
            },
            SchemaChange::DeleteRelation {
                relation: "R".into(),
            },
            SchemaChange::AddRelation {
                relation: RelationInfo::new("N", SiteId(3), vec![], 7),
            },
            SchemaChange::RenameRelation {
                from: "R".into(),
                to: "S".into(),
            },
        ];
        for c in &changes {
            roundtrip(c);
        }
    }

    #[test]
    fn evolution_ops_roundtrip() {
        // EvolutionOp has no PartialEq; compare by canonical re-encoding.
        for op in [
            EvolutionOp::insert("R", vec![tup![1, "x"], tup![2, "y"]]),
            EvolutionOp::delete("R", vec![tup![3, "z"]]),
        ] {
            let bytes = to_bytes(&op);
            let back: EvolutionOp = from_bytes(&bytes).unwrap();
            assert_eq!(to_bytes(&back), bytes);
        }
        let extent = Relation::with_tuples(
            "N",
            Schema::of(&[("A", DataType::Int)]).unwrap(),
            vec![tup![1]],
        )
        .unwrap();
        let op = EvolutionOp::Capability {
            change: SchemaChange::AddRelation {
                relation: RelationInfo::new(
                    "N",
                    SiteId(1),
                    vec![AttributeInfo::new("A", DataType::Int)],
                    1,
                ),
            },
            new_extent: Some(extent),
        };
        let bytes = to_bytes(&op);
        let back: EvolutionOp = from_bytes(&bytes).unwrap();
        assert_eq!(to_bytes(&back), bytes);
    }

    #[test]
    fn config_types_roundtrip() {
        let params = QcParams {
            io_bound: IoBound::Midpoint,
            rho_cost: 0.25,
            ..QcParams::default()
        };
        roundtrip(&params);
        for w in [
            WorkloadModel::SingleUpdate,
            WorkloadModel::TuplesProportional { per_tuple: 0.01 },
            WorkloadModel::PerRelation { updates: 3.0 },
            WorkloadModel::PerSite { updates: 10.0 },
        ] {
            let bytes = to_bytes(&w);
            let back: WorkloadModel = from_bytes(&bytes).unwrap();
            assert_eq!(to_bytes(&back), bytes);
        }
        for s in [
            SelectionStrategy::QcBest,
            SelectionStrategy::FirstFound,
            SelectionStrategy::QualityOnly,
            SelectionStrategy::CostOnly,
        ] {
            let bytes = to_bytes(&s);
            let back: SelectionStrategy = from_bytes(&bytes).unwrap();
            assert_eq!(to_bytes(&back), bytes);
        }
    }

    #[test]
    fn truncated_and_trailing_inputs_error() {
        let bytes = to_bytes(&Value::Text("hello".into()));
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Value>(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut extended = bytes;
        extended.push(0);
        assert!(from_bytes::<Value>(&extended).is_err(), "trailing byte");
    }

    #[test]
    fn absurd_length_prefix_is_rejected_without_allocation() {
        let mut enc = Enc::new();
        enc.u8(3); // Value::Text
        enc.u64(u64::MAX); // absurd length
        assert!(from_bytes::<Value>(&enc.into_bytes()).is_err());
    }
}
