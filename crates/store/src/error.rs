//! Error type of the durable evolution store.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Any failure of the store: I/O, corruption, or a state/consistency
/// problem (e.g. time-travelling before the retained horizon).
#[derive(Debug)]
pub enum Error {
    /// An operating-system I/O failure, with the path it concerned.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A malformed or checksum-failing on-disk structure. Corruption in the
    /// *tail* of the active log segment is not an error (it is a torn write
    /// and gets truncated); corruption anywhere else is.
    Corrupt {
        /// Human-readable description.
        detail: String,
    },
    /// A usage/consistency problem (store already exists, unknown
    /// generation, horizon violations, …).
    State {
        /// Human-readable description.
        detail: String,
    },
    /// A record or snapshot payload too large for the frame format (the
    /// length prefix is a `u32`, so nothing ≥ 4 GiB can be framed). Raised
    /// on the *encode* side before any byte reaches disk — an oversized
    /// payload must surface as an error to the caller, never as a panic
    /// that aborts the process mid-append.
    TooLarge {
        /// The payload size that did not fit.
        size: usize,
        /// What was being framed.
        what: &'static str,
    },
    /// The store directory is already open by another handle: its advisory
    /// lock is held. Carries the directory and the lock file's path so
    /// callers (e.g. the shell) can say exactly *which* lock blocks them
    /// instead of surfacing a raw flock error.
    Busy {
        /// The store directory that was being opened.
        dir: PathBuf,
        /// The lock file another handle holds.
        lock: PathBuf,
    },
    /// The group-commit log was shut down (dropped, or its leader died)
    /// while this record was still queued. The record was never
    /// acknowledged and is not durable; waiters receive this instead of
    /// blocking on a condvar that nobody will ever signal.
    Shutdown {
        /// What was being waited on.
        detail: String,
    },
}

impl Error {
    /// A corruption error with the given detail.
    #[must_use]
    pub fn corrupt(detail: impl Into<String>) -> Error {
        Error::Corrupt {
            detail: detail.into(),
        }
    }

    /// A state error with the given detail.
    #[must_use]
    pub fn state(detail: impl Into<String>) -> Error {
        Error::State {
            detail: detail.into(),
        }
    }

    /// Wraps an I/O error with the path it concerned.
    #[must_use]
    pub fn io(path: impl Into<PathBuf>, source: io::Error) -> Error {
        Error::Io {
            path: path.into(),
            source,
        }
    }

    /// An oversized-payload error for a frame of the given kind.
    #[must_use]
    pub fn too_large(size: usize, what: &'static str) -> Error {
        Error::TooLarge { size, what }
    }

    /// A store-busy error for a directory whose lock is already held.
    #[must_use]
    pub fn busy(dir: impl Into<PathBuf>, lock: impl Into<PathBuf>) -> Error {
        Error::Busy {
            dir: dir.into(),
            lock: lock.into(),
        }
    }

    /// A shutdown error with the given detail.
    #[must_use]
    pub fn shutdown(detail: impl Into<String>) -> Error {
        Error::Shutdown {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { path, source } => write!(f, "store I/O on {}: {source}", path.display()),
            Error::Corrupt { detail } => write!(f, "store corruption: {detail}"),
            Error::State { detail } => write!(f, "store state: {detail}"),
            Error::TooLarge { size, what } => write!(
                f,
                "store frame overflow: {what} of {size} bytes exceeds the 4 GiB frame limit"
            ),
            Error::Busy { dir, lock } => write!(
                f,
                "store busy: {} is already open by another evolution-store handle \
                 (lock held at {}; close the other session or pick another directory)",
                dir.display(),
                lock.display()
            ),
            Error::Shutdown { detail } => write!(f, "store shut down: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Store result alias.
pub type Result<T> = std::result::Result<T, Error>;
