//! Full-state export/import for the MKB — the serialization seam the
//! durable evolution store (`eve-store`) persists snapshots through.
//!
//! [`MkbState`] is a plain-data mirror of everything an [`Mkb`] knows,
//! including the mutation [`generation`](Mkb::generation) — restoring a
//! state must reproduce the generation exactly, because caches all over the
//! engine (rewrite memoization, PC-partner closures, inverted indexes) key
//! their entries on it, and the store's generation time-travel addresses
//! historical states by it. The ephemeral observability counters
//! ([`Mkb::index_stats`]) are deliberately *not* part of the state: they
//! describe one process's cache behaviour, not the knowledge base.

use std::collections::BTreeMap;

use crate::constraints::{JoinConstraint, PcConstraint};
use crate::error::Result;
use crate::mkb::Mkb;
use crate::source::RelationInfo;

/// A plain-data image of an [`Mkb`], suitable for serialization.
///
/// Constraint vectors preserve registration order (the synchronizer's
/// discovery order depends on it); relations and selectivities are keyed
/// maps, so their order is canonical by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct MkbState {
    /// Registered sites as `(id, name)`, ordered by id.
    pub sites: Vec<(u32, String)>,
    /// Registered relations, ordered by name.
    pub relations: Vec<RelationInfo>,
    /// Join constraints in registration order.
    pub join_constraints: Vec<JoinConstraint>,
    /// PC constraints in registration order.
    pub pc_constraints: Vec<PcConstraint>,
    /// Pair-specific join selectivities (keys are sorted name pairs).
    pub join_selectivities: Vec<(String, String, f64)>,
    /// The global default join selectivity.
    pub default_join_selectivity: f64,
    /// The mutation generation at export time.
    pub generation: u64,
}

impl Mkb {
    /// Exports the complete knowledge-base state (registry, constraints,
    /// statistics and the mutation generation) as plain data.
    #[must_use]
    pub fn export_state(&self) -> MkbState {
        MkbState {
            sites: self
                .sites()
                .map(|(id, name)| (id.0, name.to_owned()))
                .collect(),
            relations: self.relations().cloned().collect(),
            join_constraints: self.join_constraints().to_vec(),
            pc_constraints: self.pc_constraints().to_vec(),
            join_selectivities: self
                .join_selectivity_overrides()
                .map(|((a, b), js)| (a.clone(), b.clone(), js))
                .collect(),
            default_join_selectivity: self.default_join_selectivity(),
            generation: self.generation(),
        }
    }

    /// Reconstructs an MKB from an exported state, re-validating every
    /// registration and constraint, then pinning the mutation generation to
    /// the exported value (so generation-keyed caches and the evolution
    /// store's time-travel agree with the original instance).
    ///
    /// # Errors
    ///
    /// Any registration/constraint validation error — a state produced by
    /// [`Mkb::export_state`] always restores cleanly; hand-rolled or
    /// corrupted states surface the first inconsistency.
    pub fn from_state(state: &MkbState) -> Result<Mkb> {
        let mut mkb = Mkb::new();
        for (id, name) in &state.sites {
            mkb.register_site(crate::SiteId(*id), name.clone())?;
        }
        for info in &state.relations {
            mkb.register_relation(info.clone())?;
        }
        for jc in &state.join_constraints {
            mkb.add_join_constraint(jc.clone())?;
        }
        for pc in &state.pc_constraints {
            mkb.add_pc_constraint(pc.clone())?;
        }
        let mut overrides = BTreeMap::new();
        for (a, b, js) in &state.join_selectivities {
            overrides.insert((a.clone(), b.clone()), *js);
        }
        mkb.restore_statistics(overrides, state.default_join_selectivity);
        mkb.pin_generation(state.generation);
        Ok(mkb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{PcRelationship, PcSide};
    use crate::source::{AttributeInfo, SiteId};
    use eve_relational::{ColumnRef, DataType, PrimitiveClause};

    fn sample() -> Mkb {
        let mut mkb = Mkb::new();
        mkb.register_site(SiteId(1), "one").unwrap();
        mkb.register_site(SiteId(2), "two").unwrap();
        let attrs = vec![
            AttributeInfo::new("A", DataType::Int),
            AttributeInfo::sized("B", DataType::Text, 24),
        ];
        mkb.register_relation(RelationInfo::new("R", SiteId(1), attrs.clone(), 400))
            .unwrap();
        mkb.register_relation(RelationInfo::new("S", SiteId(2), attrs, 800))
            .unwrap();
        mkb.add_pc_constraint(PcConstraint::new(
            PcSide::projection("R", &["A", "B"]),
            PcRelationship::Subset,
            PcSide::projection("S", &["A", "B"]),
        ))
        .unwrap();
        mkb.add_join_constraint(JoinConstraint::new(
            "R",
            "S",
            vec![PrimitiveClause::eq(
                ColumnRef::parse("R.A"),
                ColumnRef::parse("S.A"),
            )],
        ))
        .unwrap();
        mkb.set_join_selectivity("R", "S", 0.002);
        mkb.set_default_join_selectivity(0.01);
        mkb
    }

    #[test]
    fn export_import_roundtrip_preserves_everything() {
        let original = sample();
        let state = original.export_state();
        let restored = Mkb::from_state(&state).unwrap();
        assert_eq!(restored.export_state(), state);
        assert_eq!(restored.generation(), original.generation());
        assert_eq!(
            restored.relation("R").unwrap(),
            original.relation("R").unwrap()
        );
        assert!((restored.join_selectivity("R", "S") - 0.002).abs() < 1e-12);
        assert!((restored.join_selectivity("R", "Z") - 0.01).abs() < 1e-12);
        assert_eq!(restored.pc_constraints(), original.pc_constraints());
        assert_eq!(restored.join_constraints(), original.join_constraints());
    }

    #[test]
    fn restored_mkb_answers_replacement_queries_identically() {
        let original = sample();
        let restored = Mkb::from_state(&original.export_state()).unwrap();
        assert_eq!(
            restored.find_relation_replacements("R", &["A".to_owned(), "B".to_owned()]),
            original.find_relation_replacements("R", &["A".to_owned(), "B".to_owned()]),
        );
        // The index counters start fresh — they are process-local.
        assert_eq!(restored.index_stats().0, 0);
    }

    #[test]
    fn generation_is_pinned_not_recomputed() {
        let mut original = sample();
        // Push the generation well past what replaying the registrations
        // would produce.
        for _ in 0..100 {
            original.set_default_join_selectivity(0.123);
        }
        let restored = Mkb::from_state(&original.export_state()).unwrap();
        assert_eq!(restored.generation(), original.generation());
    }

    #[test]
    fn corrupt_state_is_rejected() {
        let mut state = sample().export_state();
        state.relations[0].site = SiteId(99); // unknown site
        assert!(Mkb::from_state(&state).is_err());
    }
}
