//! The Meta Knowledge Base (paper §3.2, Fig. 1).
//!
//! The MKB is EVE's registry of everything it knows about the information
//! space: which sites exist, which relations they export (with types, sizes
//! and statistics), which join and PC constraints hold between them, and the
//! join selectivities the cost model assumes. It is "an information pool that
//! is critical in finding appropriate replacements for view components when
//! view definitions become undefined".

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, OnceLock};

use eve_trace::Counter;

use crate::constraints::{JoinConstraint, PcConstraint, PcRelationship};
use crate::error::{Error, Result};
use crate::overlap::{estimate_overlap, OverlapEstimate, OverlapInputs};
use crate::source::{AttributeInfo, RelationInfo, SiteId};

/// A candidate replacement for a single attribute, discovered through a PC
/// constraint (used by view synchronization for `AR = true` components).
#[derive(Debug, Clone, PartialEq)]
pub struct AttrReplacement {
    /// Relation providing the replacement attribute.
    pub relation: String,
    /// The replacement attribute within that relation.
    pub attribute: String,
    /// Relationship of the *old* fragment to the *new* one (old ⊑ new).
    pub relationship: PcRelationship,
    /// The PC constraint used, oriented with the old relation on the left.
    pub constraint: PcConstraint,
}

/// A candidate replacement for a whole relation (used for `RR = true`
/// components): a relation whose PC constraint covers all attributes the view
/// still needs.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationReplacement {
    /// The replacement relation.
    pub relation: String,
    /// Maps each needed old attribute to its counterpart in the replacement.
    pub attr_map: BTreeMap<String, String>,
    /// Relationship of the old fragment to the new one (old ⊑ new).
    pub relationship: PcRelationship,
    /// The PC constraint used, oriented with the old relation on the left.
    pub constraint: PcConstraint,
}

/// Inverted indexes over the PC-constraint store, rebuilt lazily whenever
/// the MKB's [`generation`](Mkb::generation) moves. Candidate discovery —
/// the inner loop of view synchronization — reads these maps instead of
/// linear-scanning (and re-orienting) the whole constraint list per lookup.
#[derive(Debug, Clone, Default)]
struct ConstraintIndex {
    /// relation → PC constraints oriented so that relation is on the left
    /// (insertion order preserved, matching the historical scan order).
    pc_by_relation: BTreeMap<String, Vec<PcConstraint>>,
    /// relation → attribute → single-attribute replacement candidates.
    attr_replacements: BTreeMap<String, BTreeMap<String, Vec<AttrReplacement>>>,
    /// relation → whole-relation replacement skeletons carrying the *full*
    /// attribute correspondence of each oriented constraint; coverage of a
    /// concrete `needed_attrs` set is checked against the skeleton map.
    relation_replacements: BTreeMap<String, Vec<RelationReplacement>>,
}

/// The Meta Knowledge Base.
#[derive(Debug, Default)]
pub struct Mkb {
    sites: BTreeMap<u32, String>,
    relations: BTreeMap<String, RelationInfo>,
    join_constraints: Vec<JoinConstraint>,
    pc_constraints: Vec<PcConstraint>,
    join_selectivities: BTreeMap<(String, String), f64>,
    default_join_selectivity: f64,
    generation: u64,
    /// Lazily built inverted indexes for the *current* generation; reset by
    /// every mutation (see [`Mkb::bump_generation`]). `OnceLock` keeps reads
    /// shareable across scoped threads without locking on the hot path.
    index: OnceLock<ConstraintIndex>,
    /// Registry-compatible counter handles ([`eve_trace::Counter`]): the
    /// engine registers them into its telemetry registry so one registry
    /// reset covers them alongside every other counter family.
    index_hits: Arc<Counter>,
    index_misses: Arc<Counter>,
}

impl Clone for Mkb {
    fn clone(&self) -> Mkb {
        Mkb {
            sites: self.sites.clone(),
            relations: self.relations.clone(),
            join_constraints: self.join_constraints.clone(),
            pc_constraints: self.pc_constraints.clone(),
            join_selectivities: self.join_selectivities.clone(),
            default_join_selectivity: self.default_join_selectivity,
            generation: self.generation,
            index: self.index.clone(),
            // Counter::clone detaches: the clone starts at the same value
            // but counts independently (differential-oracle engines must
            // not share accounting with the original).
            index_hits: Arc::new((*self.index_hits).clone()),
            index_misses: Arc::new((*self.index_misses).clone()),
        }
    }
}

fn js_key(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_owned(), b.to_owned())
    } else {
        (b.to_owned(), a.to_owned())
    }
}

impl Mkb {
    /// An empty MKB with the paper's Table 1 default join selectivity
    /// (`js = 0.005`).
    #[must_use]
    pub fn new() -> Mkb {
        Mkb {
            default_join_selectivity: 0.005,
            ..Mkb::default()
        }
    }

    /// The MKB's mutation generation: incremented whenever the registry,
    /// constraint store or statistics change. Caches of anything derived
    /// from the MKB (PC-partner closures, rewriting enumerations) key their
    /// entries on this counter and invalidate when it moves.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn bump_generation(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        // Drop the inverted indexes: they describe the previous generation.
        // (The crate-internal `*_mut` accessors bump *before* handing out
        // their `&mut` reference, so the reset always precedes the mutation
        // and the next read rebuilds against the post-mutation store.)
        self.index = OnceLock::new();
    }

    /// The inverted indexes for the current generation, building them on
    /// first access after a mutation.
    fn index(&self) -> &ConstraintIndex {
        if let Some(built) = self.index.get() {
            self.index_hits.inc();
            return built;
        }
        self.index_misses.inc();
        self.index.get_or_init(|| self.build_index())
    }

    fn build_index(&self) -> ConstraintIndex {
        let mut idx = ConstraintIndex::default();
        let mut insert = |oriented: PcConstraint| {
            let rel = oriented.left.relation.clone();
            if oriented.right.relation != rel {
                // Replacement candidates exclude self-constraints, exactly
                // as the historical `find_*_replacements` scans did.
                let by_attr = idx.attr_replacements.entry(rel.clone()).or_default();
                let mut attr_map: BTreeMap<String, String> = BTreeMap::new();
                for (i, attr) in oriented.left.attrs.iter().enumerate() {
                    // Positional correspondence takes the *first* occurrence
                    // of a repeated attribute (`corresponding_attr`).
                    if oriented.left.attrs[..i].contains(attr) {
                        continue;
                    }
                    let new_attr = oriented.right.attrs[i].clone();
                    by_attr
                        .entry(attr.clone())
                        .or_default()
                        .push(AttrReplacement {
                            relation: oriented.right.relation.clone(),
                            attribute: new_attr.clone(),
                            relationship: oriented.relationship,
                            constraint: oriented.clone(),
                        });
                    attr_map.insert(attr.clone(), new_attr);
                }
                idx.relation_replacements
                    .entry(rel.clone())
                    .or_default()
                    .push(RelationReplacement {
                        relation: oriented.right.relation.clone(),
                        attr_map,
                        relationship: oriented.relationship,
                        constraint: oriented.clone(),
                    });
            }
            idx.pc_by_relation.entry(rel).or_default().push(oriented);
        };
        for pc in &self.pc_constraints {
            insert(pc.clone());
            if pc.left.relation != pc.right.relation {
                insert(pc.flipped());
            }
        }
        idx
    }

    /// Inverted-index statistics `(hits, misses)`: lookups served by an
    /// already-built index versus lazy (re)builds after a mutation.
    #[must_use]
    pub fn index_stats(&self) -> (u64, u64) {
        (self.index_hits.get(), self.index_misses.get())
    }

    /// Zeroes the inverted-index hit/miss counters (the built index itself
    /// is kept). Called by the engine's `reset_io` so `stats` deltas taken
    /// between checkpoints all start from the same origin.
    pub fn reset_index_stats(&self) {
        self.index_hits.reset();
        self.index_misses.reset();
    }

    /// The live counter handles, named for registry adoption. The engine
    /// registers them into its telemetry [`eve_trace::Registry`] so a
    /// single registry reset clears them with every other family.
    #[must_use]
    pub fn index_counter_handles(&self) -> [(&'static str, Arc<Counter>); 2] {
        [
            ("mkb.index_hits", Arc::clone(&self.index_hits)),
            ("mkb.index_misses", Arc::clone(&self.index_misses)),
        ]
    }

    /// Pair-specific join-selectivity overrides (keys are sorted pairs), in
    /// key order. The export half of the [`crate::state`] seam.
    pub fn join_selectivity_overrides(&self) -> impl Iterator<Item = (&(String, String), f64)> {
        self.join_selectivities.iter().map(|(k, v)| (k, *v))
    }

    /// Replaces the statistics store wholesale without touching the
    /// generation — state restoration pins the generation separately via
    /// [`Mkb::pin_generation`].
    pub(crate) fn restore_statistics(
        &mut self,
        overrides: BTreeMap<(String, String), f64>,
        default_js: f64,
    ) {
        self.join_selectivities = overrides;
        self.default_join_selectivity = default_js;
    }

    /// Pins the mutation generation to an exact value (state restoration).
    /// The inverted indexes are dropped so the next read rebuilds against
    /// the restored store.
    pub(crate) fn pin_generation(&mut self, generation: u64) {
        self.generation = generation;
        self.index = OnceLock::new();
    }

    // ------------------------------------------------------------------
    // Registration
    // ------------------------------------------------------------------

    /// Registers an information source (site).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidChange`] when the id is taken.
    pub fn register_site(&mut self, site: SiteId, name: impl Into<String>) -> Result<()> {
        if self.sites.contains_key(&site.0) {
            return Err(Error::InvalidChange {
                detail: format!("site {site} already registered"),
            });
        }
        self.sites.insert(site.0, name.into());
        self.bump_generation();
        Ok(())
    }

    /// Registers a relation exported by a previously registered site.
    ///
    /// # Errors
    ///
    /// Unknown site, duplicate relation name, or duplicate attribute names.
    pub fn register_relation(&mut self, info: RelationInfo) -> Result<()> {
        if !self.sites.contains_key(&info.site.0) {
            return Err(Error::UnknownSite { site: info.site.0 });
        }
        if self.relations.contains_key(&info.name) {
            return Err(Error::DuplicateRelation {
                relation: info.name,
            });
        }
        let mut seen = BTreeSet::new();
        for a in &info.attributes {
            if !seen.insert(a.name.clone()) {
                return Err(Error::DuplicateAttribute {
                    relation: info.name.clone(),
                    attribute: a.name.clone(),
                });
            }
        }
        self.relations.insert(info.name.clone(), info);
        self.bump_generation();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// All registered sites, ordered by id.
    pub fn sites(&self) -> impl Iterator<Item = (SiteId, &str)> {
        self.sites.iter().map(|(id, n)| (SiteId(*id), n.as_str()))
    }

    /// Looks up a relation description.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownRelation`].
    pub fn relation(&self, name: &str) -> Result<&RelationInfo> {
        self.relations
            .get(name)
            .ok_or_else(|| Error::UnknownRelation {
                relation: name.to_owned(),
            })
    }

    /// Whether a relation is registered.
    #[must_use]
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// All registered relations, ordered by name.
    pub fn relations(&self) -> impl Iterator<Item = &RelationInfo> {
        self.relations.values()
    }

    /// Looks up an attribute's type/size information.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownRelation`] / [`Error::UnknownAttribute`].
    pub fn attribute(&self, relation: &str, attribute: &str) -> Result<&AttributeInfo> {
        self.relation(relation)?
            .attribute(attribute)
            .ok_or_else(|| Error::UnknownAttribute {
                relation: relation.to_owned(),
                attribute: attribute.to_owned(),
            })
    }

    /// The hosting site of a relation.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownRelation`].
    pub fn site_of(&self, relation: &str) -> Result<SiteId> {
        Ok(self.relation(relation)?.site)
    }

    // The in-crate mutable accessors (used by the evolver) bump the
    // generation on *access*: over-invalidating derived caches is safe,
    // missing a mutation is not.

    pub(crate) fn relations_mut(&mut self) -> &mut BTreeMap<String, RelationInfo> {
        self.bump_generation();
        &mut self.relations
    }

    pub(crate) fn join_constraints_mut(&mut self) -> &mut Vec<JoinConstraint> {
        self.bump_generation();
        &mut self.join_constraints
    }

    pub(crate) fn pc_constraints_mut(&mut self) -> &mut Vec<PcConstraint> {
        self.bump_generation();
        &mut self.pc_constraints
    }

    pub(crate) fn join_selectivities_mut(&mut self) -> &mut BTreeMap<(String, String), f64> {
        self.bump_generation();
        &mut self.join_selectivities
    }

    // ------------------------------------------------------------------
    // Join selectivities (§6.1 statistic 3)
    // ------------------------------------------------------------------

    /// Sets the global default join selectivity.
    pub fn set_default_join_selectivity(&mut self, js: f64) {
        self.default_join_selectivity = js;
        self.bump_generation();
    }

    /// The global default join selectivity.
    #[must_use]
    pub fn default_join_selectivity(&self) -> f64 {
        self.default_join_selectivity
    }

    /// Registers a pair-specific join selectivity.
    pub fn set_join_selectivity(&mut self, a: &str, b: &str, js: f64) {
        self.join_selectivities.insert(js_key(a, b), js);
        self.bump_generation();
    }

    /// Join selectivity for a pair (pair-specific value or the default).
    #[must_use]
    pub fn join_selectivity(&self, a: &str, b: &str) -> f64 {
        self.join_selectivities
            .get(&js_key(a, b))
            .copied()
            .unwrap_or(self.default_join_selectivity)
    }

    // ------------------------------------------------------------------
    // Constraints
    // ------------------------------------------------------------------

    /// Registers a join constraint after validating both endpoints and the
    /// join condition against their schemas.
    ///
    /// # Errors
    ///
    /// Unknown relations or an ill-typed condition.
    pub fn add_join_constraint(&mut self, jc: JoinConstraint) -> Result<()> {
        let left = self.relation(&jc.left)?;
        let right = self.relation(&jc.right)?;
        if jc.condition.is_empty() {
            return Err(Error::InvalidConstraint {
                detail: format!("JC[{}, {}] has no clauses", jc.left, jc.right),
            });
        }
        let combined =
            left.schema()
                .concat(&right.schema())
                .map_err(|e| Error::InvalidConstraint {
                    detail: format!("JC[{}, {}]: {e}", jc.left, jc.right),
                })?;
        jc.predicate()
            .type_check(&combined, &format!("JC[{}, {}]", jc.left, jc.right))
            .map_err(|e| Error::InvalidConstraint {
                detail: e.to_string(),
            })?;
        self.join_constraints.push(jc);
        self.bump_generation();
        Ok(())
    }

    /// Registers a PC constraint after validating relations, attribute
    /// correspondence (arity + types, per Eq. 5's `TC` requirement) and
    /// selection predicates.
    ///
    /// # Errors
    ///
    /// Unknown relations/attributes, arity or type mismatches.
    pub fn add_pc_constraint(&mut self, pc: PcConstraint) -> Result<()> {
        if pc.left.attrs.is_empty() || pc.left.attrs.len() != pc.right.attrs.len() {
            return Err(Error::InvalidConstraint {
                detail: format!(
                    "PC[{}, {}]: projection lists must be non-empty and equally long",
                    pc.left.relation, pc.right.relation
                ),
            });
        }
        for side in [&pc.left, &pc.right] {
            let rel = self.relation(&side.relation)?;
            for a in &side.attrs {
                if !rel.has_attribute(a) {
                    return Err(Error::UnknownAttribute {
                        relation: side.relation.clone(),
                        attribute: a.clone(),
                    });
                }
            }
            if side.has_selection() {
                // Selection predicates use bare attribute names.
                let bare = rel
                    .schema()
                    .unqualify()
                    .map_err(|e| Error::InvalidConstraint {
                        detail: e.to_string(),
                    })?;
                side.selection
                    .type_check(&bare, &side.relation)
                    .map_err(|e| Error::InvalidConstraint {
                        detail: format!("PC selection on {}: {e}", side.relation),
                    })?;
            }
        }
        for (la, ra) in pc.left.attrs.iter().zip(&pc.right.attrs) {
            let lt = self.attribute(&pc.left.relation, la)?.ty;
            let rt = self.attribute(&pc.right.relation, ra)?.ty;
            if lt != rt {
                return Err(Error::InvalidConstraint {
                    detail: format!(
                        "PC correspondence {}.{la} ({lt}) vs {}.{ra} ({rt}): types differ",
                        pc.left.relation, pc.right.relation
                    ),
                });
            }
        }
        self.pc_constraints.push(pc);
        self.bump_generation();
        Ok(())
    }

    /// All join constraints.
    #[must_use]
    pub fn join_constraints(&self) -> &[JoinConstraint] {
        &self.join_constraints
    }

    /// All PC constraints.
    #[must_use]
    pub fn pc_constraints(&self) -> &[PcConstraint] {
        &self.pc_constraints
    }

    /// Join constraints having `rel` as an endpoint.
    #[must_use]
    pub fn join_constraints_of(&self, rel: &str) -> Vec<&JoinConstraint> {
        self.join_constraints
            .iter()
            .filter(|jc| jc.partner_of(rel).is_some())
            .collect()
    }

    /// The first join constraint connecting `a` and `b`, if any.
    #[must_use]
    pub fn join_constraint_between(&self, a: &str, b: &str) -> Option<&JoinConstraint> {
        self.join_constraints.iter().find(|jc| jc.connects(a, b))
    }

    /// PC constraints involving `rel`, re-oriented so `rel` is on the left.
    ///
    /// Served from the generation-keyed inverted index — like
    /// [`join_constraints_of`](Mkb::join_constraints_of), the result borrows
    /// instead of cloning constraint payloads per call.
    #[must_use]
    pub fn pc_constraints_of(&self, rel: &str) -> Vec<&PcConstraint> {
        self.index()
            .pc_by_relation
            .get(rel)
            .map(|oriented| oriented.iter().collect())
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Replacement discovery (consumed by view synchronization)
    // ------------------------------------------------------------------

    /// Finds replacement candidates for a single attribute `rel.attr` via PC
    /// constraints whose `rel`-side projection covers the attribute.
    /// Candidates from `rel` itself are excluded. Served from the
    /// `attr → replacements` inverted index.
    #[must_use]
    pub fn find_attr_replacements(&self, rel: &str, attr: &str) -> Vec<AttrReplacement> {
        self.index()
            .attr_replacements
            .get(rel)
            .and_then(|by_attr| by_attr.get(attr))
            .cloned()
            .unwrap_or_default()
    }

    /// Finds whole-relation replacements for `rel` covering all of
    /// `needed_attrs` (the attributes of `rel` the view must keep). Coverage
    /// is checked against the `relation → replacements` inverted index; the
    /// returned `attr_map` is restricted to the requested attributes.
    #[must_use]
    pub fn find_relation_replacements(
        &self,
        rel: &str,
        needed_attrs: &[String],
    ) -> Vec<RelationReplacement> {
        let mut out = Vec::new();
        let Some(skeletons) = self.index().relation_replacements.get(rel) else {
            return out;
        };
        for skeleton in skeletons {
            let mut attr_map = BTreeMap::new();
            let mut covered = true;
            for a in needed_attrs {
                match skeleton.attr_map.get(a) {
                    Some(n) => {
                        attr_map.insert(a.clone(), n.clone());
                    }
                    None => {
                        covered = false;
                        break;
                    }
                }
            }
            if covered {
                out.push(RelationReplacement {
                    relation: skeleton.relation.clone(),
                    attr_map,
                    relationship: skeleton.relationship,
                    constraint: skeleton.constraint.clone(),
                });
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Overlap estimation (§5.4.3)
    // ------------------------------------------------------------------

    /// Builds the statistics a PC constraint needs for overlap estimation
    /// from the registered relation metadata. The selectivity of a side's
    /// selection condition is approximated by the relation's registered `σ`.
    ///
    /// # Errors
    ///
    /// Unknown relations.
    pub fn overlap_inputs(&self, pc: &PcConstraint) -> Result<OverlapInputs> {
        let l = self.relation(&pc.left.relation)?;
        let r = self.relation(&pc.right.relation)?;
        #[allow(clippy::cast_precision_loss)]
        Ok(OverlapInputs {
            left_card: l.cardinality as f64,
            right_card: r.cardinality as f64,
            left_selectivity: l.selectivity,
            right_selectivity: r.selectivity,
        })
    }

    /// Estimates `|a ∩~ b|` and (when determinable) the containment
    /// relationship `a ⊑ b`, using a direct PC constraint if one exists, or a
    /// transitive chain of *selection-free* constraints otherwise
    /// (Experiment 4's `S1 ⊆ S2 ⊆ S3 ≡ R2 ⊆ S4 ⊆ S5`). Without any
    /// constraint path the overlap is zero (§5.4.3).
    ///
    /// # Errors
    ///
    /// Unknown relations.
    pub fn relation_overlap(
        &self,
        a: &str,
        b: &str,
    ) -> Result<(Option<PcRelationship>, OverlapEstimate)> {
        let a_info = self.relation(a)?;
        let b_info = self.relation(b)?;
        if a == b {
            #[allow(clippy::cast_precision_loss)]
            return Ok((
                Some(PcRelationship::Equivalent),
                OverlapEstimate {
                    size: a_info.cardinality as f64,
                    exact: true,
                },
            ));
        }

        // Direct constraints first: keep the most informative estimate
        // (exact beats inexact; larger lower bound beats smaller).
        let mut best: Option<(PcRelationship, OverlapEstimate)> = None;
        for pc in self.pc_constraints_of(a) {
            if pc.right.relation != b {
                continue;
            }
            let est = estimate_overlap(pc, self.overlap_inputs(pc)?);
            let better = match &best {
                None => true,
                Some((_, cur)) => {
                    (est.exact && !cur.exact) || (est.exact == cur.exact && est.size > cur.size)
                }
            };
            if better {
                best = Some((pc.relationship, est));
            }
        }
        if let Some((rel, est)) = best {
            return Ok((Some(rel), est));
        }

        // Transitive chain over selection-free constraints (BFS, shortest
        // chain wins; direction composed along the path).
        let mut queue: VecDeque<(String, PcRelationship)> = VecDeque::new();
        let mut visited: BTreeSet<String> = BTreeSet::new();
        visited.insert(a.to_owned());
        queue.push_back((a.to_owned(), PcRelationship::Equivalent));
        while let Some((node, rel_so_far)) = queue.pop_front() {
            for pc in self.pc_constraints_of(&node) {
                if !pc.is_selection_free() {
                    continue;
                }
                let Some(composed) = rel_so_far.compose(pc.relationship) else {
                    continue;
                };
                let next = pc.right.relation.clone();
                if next == b {
                    #[allow(clippy::cast_precision_loss)]
                    let size = match composed {
                        PcRelationship::Subset => a_info.cardinality as f64,
                        PcRelationship::Equivalent => {
                            (a_info.cardinality.min(b_info.cardinality)) as f64
                        }
                        PcRelationship::Superset => b_info.cardinality as f64,
                    };
                    return Ok((Some(composed), OverlapEstimate { size, exact: true }));
                }
                if visited.insert(next.clone()) {
                    queue.push_back((next, composed));
                }
            }
        }

        Ok((None, OverlapEstimate::UNKNOWN))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::PcSide;
    use eve_relational::{ColumnRef, CompOp, DataType, Predicate, PrimitiveClause, Value};

    fn attr(name: &str, ty: DataType) -> AttributeInfo {
        AttributeInfo::new(name, ty)
    }

    /// A small information space: R(A,B) at IS1, S(A,C) at IS2, T(A,D) at
    /// IS3, with PC(R.A ⊆ S.A), PC(R.A ⊆ T.A), JC(R,S on A).
    fn sample() -> Mkb {
        let mut mkb = Mkb::new();
        for (i, name) in [(1u32, "one"), (2, "two"), (3, "three")] {
            mkb.register_site(SiteId(i), name).unwrap();
        }
        mkb.register_relation(RelationInfo::new(
            "R",
            SiteId(1),
            vec![attr("A", DataType::Int), attr("B", DataType::Int)],
            1000,
        ))
        .unwrap();
        mkb.register_relation(RelationInfo::new(
            "S",
            SiteId(2),
            vec![attr("A", DataType::Int), attr("C", DataType::Int)],
            2000,
        ))
        .unwrap();
        mkb.register_relation(RelationInfo::new(
            "T",
            SiteId(3),
            vec![attr("A", DataType::Int), attr("D", DataType::Int)],
            3000,
        ))
        .unwrap();
        mkb.add_pc_constraint(PcConstraint::new(
            PcSide::projection("R", &["A"]),
            PcRelationship::Subset,
            PcSide::projection("S", &["A"]),
        ))
        .unwrap();
        mkb.add_pc_constraint(PcConstraint::new(
            PcSide::projection("R", &["A"]),
            PcRelationship::Subset,
            PcSide::projection("T", &["A"]),
        ))
        .unwrap();
        mkb.add_join_constraint(JoinConstraint::new(
            "R",
            "S",
            vec![PrimitiveClause::eq(
                ColumnRef::parse("R.A"),
                ColumnRef::parse("S.A"),
            )],
        ))
        .unwrap();
        mkb
    }

    #[test]
    fn registration_and_lookup() {
        let mkb = sample();
        assert_eq!(mkb.relation("R").unwrap().cardinality, 1000);
        assert_eq!(mkb.site_of("T").unwrap(), SiteId(3));
        assert_eq!(mkb.attribute("S", "C").unwrap().ty, DataType::Int);
        assert!(matches!(
            mkb.relation("Z"),
            Err(Error::UnknownRelation { .. })
        ));
        assert!(matches!(
            mkb.attribute("S", "Z"),
            Err(Error::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut mkb = sample();
        let e = mkb
            .register_relation(RelationInfo::new("R", SiteId(1), vec![], 0))
            .unwrap_err();
        assert!(matches!(e, Error::DuplicateRelation { .. }));
    }

    #[test]
    fn relation_on_unknown_site_rejected() {
        let mut mkb = Mkb::new();
        let e = mkb
            .register_relation(RelationInfo::new("R", SiteId(9), vec![], 0))
            .unwrap_err();
        assert!(matches!(e, Error::UnknownSite { site: 9 }));
    }

    #[test]
    fn join_constraint_validation() {
        let mut mkb = sample();
        // Unknown column in clause.
        let bad = JoinConstraint::new(
            "R",
            "S",
            vec![PrimitiveClause::eq(
                ColumnRef::parse("R.Z"),
                ColumnRef::parse("S.A"),
            )],
        );
        assert!(mkb.add_join_constraint(bad).is_err());
        // Empty condition.
        let empty = JoinConstraint::new("R", "S", vec![]);
        assert!(mkb.add_join_constraint(empty).is_err());
    }

    #[test]
    fn pc_constraint_validation() {
        let mut mkb = sample();
        // Arity mismatch.
        let bad = PcConstraint::new(
            PcSide::projection("R", &["A", "B"]),
            PcRelationship::Subset,
            PcSide::projection("S", &["A"]),
        );
        assert!(mkb.add_pc_constraint(bad).is_err());
        // Unknown attribute.
        let bad = PcConstraint::new(
            PcSide::projection("R", &["Z"]),
            PcRelationship::Subset,
            PcSide::projection("S", &["A"]),
        );
        assert!(mkb.add_pc_constraint(bad).is_err());
        // Ill-typed selection.
        let bad = PcConstraint::new(
            PcSide::selected(
                "R",
                &["A"],
                Predicate::single(PrimitiveClause::lit(
                    ColumnRef::bare("A"),
                    CompOp::Eq,
                    Value::from("text"),
                )),
            ),
            PcRelationship::Subset,
            PcSide::projection("S", &["A"]),
        );
        assert!(mkb.add_pc_constraint(bad).is_err());
    }

    #[test]
    fn attr_replacements_found() {
        let mkb = sample();
        let reps = mkb.find_attr_replacements("R", "A");
        assert_eq!(reps.len(), 2);
        let names: Vec<&str> = reps.iter().map(|r| r.relation.as_str()).collect();
        assert_eq!(names, vec!["S", "T"]);
        assert!(reps.iter().all(|r| r.attribute == "A"));
        assert!(reps
            .iter()
            .all(|r| r.relationship == PcRelationship::Subset));
        assert!(mkb.find_attr_replacements("R", "B").is_empty());
    }

    #[test]
    fn relation_replacements_require_coverage() {
        let mkb = sample();
        let reps = mkb.find_relation_replacements("R", &["A".to_owned()]);
        assert_eq!(reps.len(), 2);
        assert_eq!(reps[0].attr_map.get("A").map(String::as_str), Some("A"));
        // B is not covered by any constraint.
        assert!(mkb
            .find_relation_replacements("R", &["A".to_owned(), "B".to_owned()])
            .is_empty());
    }

    #[test]
    fn direct_overlap_estimation() {
        let mkb = sample();
        let (rel, est) = mkb.relation_overlap("R", "S").unwrap();
        assert_eq!(rel, Some(PcRelationship::Subset));
        assert_eq!(est.size, 1000.0);
        assert!(est.exact);
        // And flipped.
        let (rel, est) = mkb.relation_overlap("S", "R").unwrap();
        assert_eq!(rel, Some(PcRelationship::Superset));
        assert_eq!(est.size, 1000.0);
    }

    #[test]
    fn unconstrained_overlap_is_zero() {
        let mkb = sample();
        let (rel, est) = mkb.relation_overlap("S", "T").unwrap();
        // S ⊇ R ⊆ T composes to nothing.
        assert_eq!(rel, None);
        assert_eq!(est, OverlapEstimate::UNKNOWN);
    }

    #[test]
    fn chained_overlap_composes_subsets() {
        // Experiment 4 chain: S1 ⊆ S2 ⊆ S3, query overlap(S3, S1).
        let mut mkb = Mkb::new();
        mkb.register_site(SiteId(1), "one").unwrap();
        for (name, card) in [("S1", 2000u64), ("S2", 3000), ("S3", 4000)] {
            mkb.register_relation(RelationInfo::new(
                name,
                SiteId(1),
                vec![attr("A", DataType::Int)],
                card,
            ))
            .unwrap();
        }
        for (a, b) in [("S1", "S2"), ("S2", "S3")] {
            mkb.add_pc_constraint(PcConstraint::new(
                PcSide::projection(a, &["A"]),
                PcRelationship::Subset,
                PcSide::projection(b, &["A"]),
            ))
            .unwrap();
        }
        let (rel, est) = mkb.relation_overlap("S3", "S1").unwrap();
        assert_eq!(rel, Some(PcRelationship::Superset));
        assert_eq!(est.size, 2000.0);
        assert!(est.exact);
        let (rel, est) = mkb.relation_overlap("S1", "S3").unwrap();
        assert_eq!(rel, Some(PcRelationship::Subset));
        assert_eq!(est.size, 2000.0);
    }

    #[test]
    fn self_overlap_is_identity() {
        let mkb = sample();
        let (rel, est) = mkb.relation_overlap("R", "R").unwrap();
        assert_eq!(rel, Some(PcRelationship::Equivalent));
        assert_eq!(est.size, 1000.0);
        assert!(est.exact);
    }

    #[test]
    fn join_selectivity_defaults_and_overrides() {
        let mut mkb = sample();
        assert!((mkb.join_selectivity("R", "S") - 0.005).abs() < 1e-12);
        mkb.set_join_selectivity("S", "R", 0.001);
        assert!((mkb.join_selectivity("R", "S") - 0.001).abs() < 1e-12);
        mkb.set_default_join_selectivity(0.0022);
        assert!((mkb.join_selectivity("R", "T") - 0.0022).abs() < 1e-12);
    }

    #[test]
    fn generation_moves_on_every_mutation() {
        use crate::SchemaChange;
        let mut mkb = sample();
        let g0 = mkb.generation();
        // Read-only access leaves the generation alone.
        let _ = mkb.relation("R").unwrap();
        let _ = mkb.pc_constraints_of("R");
        assert_eq!(mkb.generation(), g0);
        // Every mutator moves it.
        mkb.set_join_selectivity("R", "S", 0.001);
        let g1 = mkb.generation();
        assert_ne!(g1, g0);
        mkb.set_default_join_selectivity(0.01);
        let g2 = mkb.generation();
        assert_ne!(g2, g1);
        mkb.apply_change(&SchemaChange::DeleteAttribute {
            relation: "R".into(),
            attribute: "B".into(),
        })
        .unwrap();
        assert_ne!(mkb.generation(), g2);
        // Clones carry the counter (a cloned MKB is the same knowledge).
        let clone = mkb.clone();
        assert_eq!(clone.generation(), mkb.generation());
    }

    #[test]
    fn inverted_index_rebuilds_after_mutations_and_counts_hits() {
        let mut mkb = sample();
        // Construction never reads the index.
        assert_eq!(mkb.index_stats(), (0, 0));
        // First lookup builds it…
        assert_eq!(mkb.pc_constraints_of("R").len(), 2);
        assert_eq!(mkb.index_stats().1, 1, "one lazy build");
        // …subsequent lookups replay it.
        assert_eq!(mkb.pc_constraints_of("S").len(), 1);
        assert!(mkb.find_attr_replacements("R", "A").len() == 2);
        let (hits, misses) = mkb.index_stats();
        assert!(hits >= 2, "served from memory: {hits}");
        assert_eq!(misses, 1);
        // A mutation invalidates: the next read rebuilds against the new
        // constraint store.
        mkb.add_pc_constraint(PcConstraint::new(
            PcSide::projection("S", &["A"]),
            PcRelationship::Subset,
            PcSide::projection("T", &["A"]),
        ))
        .unwrap();
        assert_eq!(mkb.pc_constraints_of("T").len(), 2);
        assert_eq!(mkb.index_stats().1, 2, "rebuilt once after the mutation");
        // Orientation inside the index matches the historical scan.
        let from_t = mkb.pc_constraints_of("T");
        assert!(from_t.iter().all(|pc| pc.left.relation == "T"));
        // Clones carry the built index and its counters.
        let clone = mkb.clone();
        assert_eq!(clone.pc_constraints_of("R").len(), 2);
        assert_eq!(clone.index_stats().1, 2);
    }

    #[test]
    fn constraint_navigation() {
        let mkb = sample();
        assert_eq!(mkb.join_constraints_of("R").len(), 1);
        assert!(mkb.join_constraint_between("S", "R").is_some());
        assert!(mkb.join_constraint_between("S", "T").is_none());
        assert_eq!(mkb.pc_constraints_of("S").len(), 1);
        assert_eq!(mkb.pc_constraints_of("S")[0].left.relation, "S");
    }
}
