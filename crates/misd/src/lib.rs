//! # eve-misd
//!
//! MISD — the *Model for Information Source Description* (paper §3.2) — and
//! the **Meta Knowledge Base (MKB)** built on it.
//!
//! Autonomous information sources register their relations (`IS.R(A_1…A_n)`,
//! Eq. 3) together with semantic constraints relating them to other sources:
//!
//! * **type integrity constraints** `A_i(Type_i)` — carried by
//!   [`source::AttributeInfo`],
//! * **join constraints** `JC_{R1,R2} = (C_1 AND … AND C_l)` (Eq. 4) —
//!   meaningful ways to join two relations ([`constraints::JoinConstraint`]),
//! * **partial/complete (PC) constraints**
//!   `π(σ(R1)) ⊑ π(σ(R2))`, `⊑ ∈ {⊆, ≡, ⊇}` (Eq. 5) — fragment containment
//!   between sources ([`constraints::PcConstraint`]).
//!
//! The MKB ([`mkb::Mkb`]) indexes this metadata plus the database statistics
//! of §6.1 (cardinalities, tuple sizes, selectivities, join selectivities,
//! blocking factors). It answers the queries view synchronization and the
//! QC-Model need: replacement discovery, join-path lookup and overlap-size
//! estimation (the twelve Fig. 9/10 cases, in [`overlap`]).
//!
//! Capability changes (§3.3) are applied through [`evolver`], which keeps the
//! constraint store consistent as relations and attributes disappear, appear
//! or get renamed.

pub mod constraints;
pub mod error;
pub mod evolver;
pub mod mkb;
pub mod overlap;
pub mod source;
pub mod state;

pub use constraints::{JoinConstraint, PcConstraint, PcRelationship, PcSide};
pub use error::{Error, Result};
pub use evolver::SchemaChange;
pub use mkb::Mkb;
pub use overlap::OverlapEstimate;
pub use source::{AttributeInfo, RelationInfo, SiteId};
pub use state::MkbState;
