//! The MKB evolver and consistency checker (paper Fig. 1).
//!
//! Capability changes (§3.3) arrive from information sources as
//! [`SchemaChange`]s. [`Mkb::apply_change`] updates the relation registry and
//! keeps the constraint store consistent: constraints that mention deleted
//! components are dropped (or narrowed, for PC projection lists), renames are
//! rewritten through. [`check_consistency`] audits an MKB for dangling
//! references — the paper's *MKB Consistency Checker* component.

use eve_relational::ColumnRef;

use crate::constraints::PcConstraint;
use crate::error::{Error, Result};
use crate::mkb::Mkb;
use crate::source::{AttributeInfo, RelationInfo};

/// A capability (schema) change at an information source. These are the six
/// change kinds the paper lists as "commonly found in commercial systems"
/// (§3.3).
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaChange {
    /// `delete-attribute R.A`
    DeleteAttribute {
        /// Relation owning the attribute.
        relation: String,
        /// The attribute being removed.
        attribute: String,
    },
    /// `add-attribute R.A`
    AddAttribute {
        /// Relation gaining the attribute.
        relation: String,
        /// The new attribute.
        attribute: AttributeInfo,
    },
    /// `change-attribute-name R.A → R.B`
    RenameAttribute {
        /// Relation owning the attribute.
        relation: String,
        /// Current name.
        from: String,
        /// New name.
        to: String,
    },
    /// `delete-relation R`
    DeleteRelation {
        /// The relation being removed.
        relation: String,
    },
    /// `add-relation R`
    AddRelation {
        /// The new relation's full description.
        relation: RelationInfo,
    },
    /// `change-relation-name R → S`
    RenameRelation {
        /// Current name.
        from: String,
        /// New name.
        to: String,
    },
}

impl std::fmt::Display for SchemaChange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaChange::DeleteAttribute {
                relation,
                attribute,
            } => write!(f, "delete-attribute {relation}.{attribute}"),
            SchemaChange::AddAttribute {
                relation,
                attribute,
            } => write!(f, "add-attribute {relation}.{}", attribute.name),
            SchemaChange::RenameAttribute { relation, from, to } => {
                write!(
                    f,
                    "change-attribute-name {relation}.{from} -> {relation}.{to}"
                )
            }
            SchemaChange::DeleteRelation { relation } => write!(f, "delete-relation {relation}"),
            SchemaChange::AddRelation { relation } => write!(f, "add-relation {}", relation.name),
            SchemaChange::RenameRelation { from, to } => {
                write!(f, "change-relation-name {from} -> {to}")
            }
        }
    }
}

fn clause_mentions(clause: &eve_relational::PrimitiveClause, rel: &str, attr: &str) -> bool {
    clause
        .columns()
        .iter()
        .any(|c| c.qualifier.as_deref() == Some(rel) && c.name == attr)
}

impl Mkb {
    /// Applies a capability change, evolving relations and constraints.
    ///
    /// View synchronization must run *before* the change is applied — the
    /// constraints about a deleted component are exactly what the
    /// synchronizer mines for replacements.
    ///
    /// # Errors
    ///
    /// [`Error`] variants when the change references unknown components or
    /// would create duplicates.
    pub fn apply_change(&mut self, change: &SchemaChange) -> Result<()> {
        match change {
            SchemaChange::DeleteAttribute {
                relation,
                attribute,
            } => {
                self.attribute(relation, attribute)?; // existence check
                let info = self
                    .relations_mut()
                    .get_mut(relation)
                    .expect("checked above");
                info.attributes.retain(|a| &a.name != attribute);
                self.drop_constraints_on_attr(relation, attribute);
                Ok(())
            }
            SchemaChange::AddAttribute {
                relation,
                attribute,
            } => {
                let exists = self.relation(relation)?.has_attribute(&attribute.name);
                if exists {
                    return Err(Error::DuplicateAttribute {
                        relation: relation.clone(),
                        attribute: attribute.name.clone(),
                    });
                }
                self.relations_mut()
                    .get_mut(relation)
                    .expect("checked above")
                    .attributes
                    .push(attribute.clone());
                Ok(())
            }
            SchemaChange::RenameAttribute { relation, from, to } => {
                self.attribute(relation, from)?;
                if self.relation(relation)?.has_attribute(to) {
                    return Err(Error::DuplicateAttribute {
                        relation: relation.clone(),
                        attribute: to.clone(),
                    });
                }
                let info = self
                    .relations_mut()
                    .get_mut(relation)
                    .expect("checked above");
                for a in &mut info.attributes {
                    if &a.name == from {
                        a.name = to.clone();
                    }
                }
                self.rename_attr_in_constraints(relation, from, to);
                Ok(())
            }
            SchemaChange::DeleteRelation { relation } => {
                self.relation(relation)?;
                self.relations_mut().remove(relation);
                self.join_constraints_mut()
                    .retain(|jc| jc.partner_of(relation).is_none());
                self.pc_constraints_mut()
                    .retain(|pc| pc.left.relation != *relation && pc.right.relation != *relation);
                self.join_selectivities_mut()
                    .retain(|(a, b), _| a != relation && b != relation);
                Ok(())
            }
            SchemaChange::AddRelation { relation } => self.register_relation(relation.clone()),
            SchemaChange::RenameRelation { from, to } => {
                self.relation(from)?;
                if self.has_relation(to) {
                    return Err(Error::DuplicateRelation {
                        relation: to.clone(),
                    });
                }
                let mut info = self.relations_mut().remove(from).expect("checked above");
                info.name = to.clone();
                self.relations_mut().insert(to.clone(), info);
                self.rename_relation_in_constraints(from, to);
                Ok(())
            }
        }
    }

    fn drop_constraints_on_attr(&mut self, relation: &str, attribute: &str) {
        self.join_constraints_mut().retain(|jc| {
            !jc.condition
                .iter()
                .any(|c| clause_mentions(c, relation, attribute))
        });
        // PC constraints: remove the correspondence position; drop the whole
        // constraint when the projection empties or a selection mentions the
        // deleted attribute.
        let mut kept: Vec<PcConstraint> = Vec::new();
        for mut pc in std::mem::take(self.pc_constraints_mut()) {
            let selection_hit = [&pc.left, &pc.right].iter().any(|side| {
                side.relation == relation
                    && side
                        .selection
                        .clauses()
                        .iter()
                        .any(|c| c.columns().iter().any(|col| col.name == attribute))
            });
            if selection_hit {
                continue;
            }
            let mut remove_positions: Vec<usize> = Vec::new();
            if pc.left.relation == relation {
                for (i, a) in pc.left.attrs.iter().enumerate() {
                    if a == attribute {
                        remove_positions.push(i);
                    }
                }
            }
            if pc.right.relation == relation {
                for (i, a) in pc.right.attrs.iter().enumerate() {
                    if a == attribute && !remove_positions.contains(&i) {
                        remove_positions.push(i);
                    }
                }
            }
            if !remove_positions.is_empty() {
                remove_positions.sort_unstable();
                for &i in remove_positions.iter().rev() {
                    pc.left.attrs.remove(i);
                    pc.right.attrs.remove(i);
                }
                if pc.left.attrs.is_empty() {
                    continue;
                }
            }
            kept.push(pc);
        }
        *self.pc_constraints_mut() = kept;
    }

    fn rename_attr_in_constraints(&mut self, relation: &str, from: &str, to: &str) {
        for jc in self.join_constraints_mut() {
            for clause in &mut jc.condition {
                *clause = clause.map_columns(&mut |c| {
                    if c.qualifier.as_deref() == Some(relation) && c.name == from {
                        ColumnRef::qualified(relation, to)
                    } else {
                        c.clone()
                    }
                });
            }
        }
        for pc in self.pc_constraints_mut() {
            for side in [&mut pc.left, &mut pc.right] {
                if side.relation == relation {
                    for a in &mut side.attrs {
                        if a == from {
                            *a = to.to_owned();
                        }
                    }
                    let renamed: Vec<eve_relational::PrimitiveClause> = side
                        .selection
                        .clauses()
                        .iter()
                        .map(|c| {
                            c.map_columns(&mut |col| {
                                if col.qualifier.is_none() && col.name == from {
                                    ColumnRef::bare(to)
                                } else {
                                    col.clone()
                                }
                            })
                        })
                        .collect();
                    side.selection = eve_relational::Predicate::new(renamed);
                }
            }
        }
    }

    fn rename_relation_in_constraints(&mut self, from: &str, to: &str) {
        for jc in self.join_constraints_mut() {
            if jc.left == from {
                jc.left = to.to_owned();
            }
            if jc.right == from {
                jc.right = to.to_owned();
            }
            for clause in &mut jc.condition {
                *clause = clause.map_columns(&mut |c| {
                    if c.qualifier.as_deref() == Some(from) {
                        ColumnRef::qualified(to, c.name.clone())
                    } else {
                        c.clone()
                    }
                });
            }
        }
        for pc in self.pc_constraints_mut() {
            for side in [&mut pc.left, &mut pc.right] {
                if side.relation == from {
                    side.relation = to.to_owned();
                }
            }
        }
        let js = std::mem::take(self.join_selectivities_mut());
        for ((a, b), v) in js {
            let a = if a == from { to.to_owned() } else { a };
            let b = if b == from { to.to_owned() } else { b };
            let key = if a <= b { (a, b) } else { (b, a) };
            self.join_selectivities_mut().insert(key, v);
        }
    }
}

/// One problem found by the consistency checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inconsistency {
    /// Human-readable description of the dangling reference or mismatch.
    pub detail: String,
}

impl std::fmt::Display for Inconsistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.detail)
    }
}

/// Audits the MKB for constraint references to missing relations/attributes
/// and for PC correspondence arity/type mismatches — the paper's *MKB
/// Consistency Checker* (Fig. 1). A consistent MKB yields an empty list.
#[must_use]
pub fn check_consistency(mkb: &Mkb) -> Vec<Inconsistency> {
    let mut out = Vec::new();
    let mut push = |detail: String| out.push(Inconsistency { detail });

    for jc in mkb.join_constraints() {
        for rel in [&jc.left, &jc.right] {
            if !mkb.has_relation(rel) {
                push(format!("{jc} references missing relation `{rel}`"));
            }
        }
        for clause in &jc.condition {
            for col in clause.columns() {
                let Some(q) = col.qualifier.as_deref() else {
                    push(format!("{jc} has unqualified column `{col}`"));
                    continue;
                };
                if mkb.has_relation(q) && mkb.attribute(q, &col.name).is_err() {
                    push(format!("{jc} references missing attribute `{col}`"));
                }
            }
        }
    }

    for pc in mkb.pc_constraints() {
        if pc.left.attrs.len() != pc.right.attrs.len() {
            push(format!("{pc} has mismatched projection arities"));
        }
        for side in [&pc.left, &pc.right] {
            if !mkb.has_relation(&side.relation) {
                push(format!(
                    "{pc} references missing relation `{}`",
                    side.relation
                ));
                continue;
            }
            for a in &side.attrs {
                if mkb.attribute(&side.relation, a).is_err() {
                    push(format!(
                        "{pc} references missing attribute `{}.{a}`",
                        side.relation
                    ));
                }
            }
        }
        if mkb.has_relation(&pc.left.relation) && mkb.has_relation(&pc.right.relation) {
            for (la, ra) in pc.left.attrs.iter().zip(&pc.right.attrs) {
                if let (Ok(l), Ok(r)) = (
                    mkb.attribute(&pc.left.relation, la),
                    mkb.attribute(&pc.right.relation, ra),
                ) {
                    if l.ty != r.ty {
                        push(format!(
                            "{pc}: correspondence {la} ↔ {ra} has mismatched types"
                        ));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{JoinConstraint, PcRelationship, PcSide};
    use crate::source::SiteId;
    use eve_relational::{ColumnRef, DataType, PrimitiveClause};

    fn attr(name: &str) -> AttributeInfo {
        AttributeInfo::new(name, DataType::Int)
    }

    fn mkb() -> Mkb {
        let mut m = Mkb::new();
        m.register_site(SiteId(1), "one").unwrap();
        m.register_site(SiteId(2), "two").unwrap();
        m.register_relation(RelationInfo::new(
            "R",
            SiteId(1),
            vec![attr("A"), attr("B")],
            100,
        ))
        .unwrap();
        m.register_relation(RelationInfo::new(
            "S",
            SiteId(2),
            vec![attr("A"), attr("C")],
            200,
        ))
        .unwrap();
        m.add_join_constraint(JoinConstraint::new(
            "R",
            "S",
            vec![PrimitiveClause::eq(
                ColumnRef::parse("R.A"),
                ColumnRef::parse("S.A"),
            )],
        ))
        .unwrap();
        m.add_pc_constraint(PcConstraint::new(
            PcSide::projection("R", &["A", "B"]),
            PcRelationship::Subset,
            PcSide::projection("S", &["A", "C"]),
        ))
        .unwrap();
        m
    }

    #[test]
    fn delete_attribute_narrows_pc_and_drops_jc() {
        let mut m = mkb();
        m.apply_change(&SchemaChange::DeleteAttribute {
            relation: "R".into(),
            attribute: "A".into(),
        })
        .unwrap();
        assert!(!m.relation("R").unwrap().has_attribute("A"));
        // The JC on R.A is gone.
        assert!(m.join_constraint_between("R", "S").is_none());
        // The PC correspondence (A ↔ A) is removed but (B ↔ C) survives.
        assert_eq!(m.pc_constraints().len(), 1);
        assert_eq!(m.pc_constraints()[0].left.attrs, vec!["B"]);
        assert_eq!(m.pc_constraints()[0].right.attrs, vec!["C"]);
        assert!(check_consistency(&m).is_empty());
    }

    #[test]
    fn delete_attribute_dropping_last_correspondence_drops_pc() {
        let mut m = mkb();
        m.apply_change(&SchemaChange::DeleteAttribute {
            relation: "R".into(),
            attribute: "A".into(),
        })
        .unwrap();
        m.apply_change(&SchemaChange::DeleteAttribute {
            relation: "R".into(),
            attribute: "B".into(),
        })
        .unwrap();
        assert!(m.pc_constraints().is_empty());
    }

    #[test]
    fn delete_relation_drops_everything() {
        let mut m = mkb();
        m.set_join_selectivity("R", "S", 0.001);
        m.apply_change(&SchemaChange::DeleteRelation {
            relation: "R".into(),
        })
        .unwrap();
        assert!(!m.has_relation("R"));
        assert!(m.join_constraints().is_empty());
        assert!(m.pc_constraints().is_empty());
        assert!((m.join_selectivity("R", "S") - 0.005).abs() < 1e-12);
        assert!(check_consistency(&m).is_empty());
    }

    #[test]
    fn rename_attribute_rewrites_constraints() {
        let mut m = mkb();
        m.apply_change(&SchemaChange::RenameAttribute {
            relation: "R".into(),
            from: "A".into(),
            to: "Key".into(),
        })
        .unwrap();
        assert!(m.relation("R").unwrap().has_attribute("Key"));
        let jc = m.join_constraint_between("R", "S").unwrap();
        assert_eq!(jc.condition[0].left, ColumnRef::parse("R.Key"));
        assert_eq!(m.pc_constraints()[0].left.attrs[0], "Key");
        assert!(check_consistency(&m).is_empty());
    }

    #[test]
    fn rename_relation_rewrites_constraints_and_js() {
        let mut m = mkb();
        m.set_join_selectivity("R", "S", 0.002);
        m.apply_change(&SchemaChange::RenameRelation {
            from: "R".into(),
            to: "R2".into(),
        })
        .unwrap();
        assert!(m.has_relation("R2") && !m.has_relation("R"));
        let jc = m.join_constraint_between("R2", "S").unwrap();
        assert_eq!(jc.condition[0].left, ColumnRef::parse("R2.A"));
        assert_eq!(m.pc_constraints()[0].left.relation, "R2");
        assert!((m.join_selectivity("R2", "S") - 0.002).abs() < 1e-12);
        assert!(check_consistency(&m).is_empty());
    }

    #[test]
    fn add_attribute_and_relation() {
        let mut m = mkb();
        m.apply_change(&SchemaChange::AddAttribute {
            relation: "R".into(),
            attribute: attr("D"),
        })
        .unwrap();
        assert!(m.relation("R").unwrap().has_attribute("D"));
        let dup = m.apply_change(&SchemaChange::AddAttribute {
            relation: "R".into(),
            attribute: attr("D"),
        });
        assert!(dup.is_err());
        m.apply_change(&SchemaChange::AddRelation {
            relation: RelationInfo::new("U", SiteId(1), vec![attr("X")], 10),
        })
        .unwrap();
        assert!(m.has_relation("U"));
    }

    #[test]
    fn rename_to_existing_name_rejected() {
        let mut m = mkb();
        assert!(m
            .apply_change(&SchemaChange::RenameRelation {
                from: "R".into(),
                to: "S".into(),
            })
            .is_err());
        assert!(m
            .apply_change(&SchemaChange::RenameAttribute {
                relation: "R".into(),
                from: "A".into(),
                to: "B".into(),
            })
            .is_err());
    }

    #[test]
    fn delete_unknown_components_rejected() {
        let mut m = mkb();
        assert!(m
            .apply_change(&SchemaChange::DeleteRelation {
                relation: "Z".into()
            })
            .is_err());
        assert!(m
            .apply_change(&SchemaChange::DeleteAttribute {
                relation: "R".into(),
                attribute: "Z".into()
            })
            .is_err());
    }

    #[test]
    fn consistency_checker_flags_manual_corruption() {
        let mut m = mkb();
        // Bypass validation to inject a dangling constraint.
        m.pc_constraints_mut().push(PcConstraint::new(
            PcSide::projection("Ghost", &["X"]),
            PcRelationship::Subset,
            PcSide::projection("S", &["A"]),
        ));
        let problems = check_consistency(&m);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].detail.contains("Ghost"));
    }

    #[test]
    fn pc_selection_on_deleted_attribute_drops_constraint() {
        use eve_relational::{CompOp, Predicate, Value};
        let mut m = mkb();
        m.add_pc_constraint(PcConstraint::new(
            PcSide::selected(
                "R",
                &["B"],
                Predicate::single(PrimitiveClause::lit(
                    ColumnRef::bare("A"),
                    CompOp::Gt,
                    Value::Int(0),
                )),
            ),
            PcRelationship::Subset,
            PcSide::projection("S", &["C"]),
        ))
        .unwrap();
        m.apply_change(&SchemaChange::DeleteAttribute {
            relation: "R".into(),
            attribute: "A".into(),
        })
        .unwrap();
        // Only the original (narrowed) PC survives; the selected one is gone.
        assert_eq!(m.pc_constraints().len(), 1);
        assert!(m.pc_constraints()[0].left.selection.is_true());
    }

    #[test]
    fn change_display() {
        assert_eq!(
            SchemaChange::DeleteRelation {
                relation: "R".into()
            }
            .to_string(),
            "delete-relation R"
        );
        assert_eq!(
            SchemaChange::RenameAttribute {
                relation: "R".into(),
                from: "A".into(),
                to: "B".into()
            }
            .to_string(),
            "change-attribute-name R.A -> R.B"
        );
    }
}
