//! Semantic constraints between information sources (paper Fig. 4).

use std::fmt;

use eve_relational::{Predicate, PrimitiveClause};

/// The containment direction of a PC constraint: `left ⊑ right`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcRelationship {
    /// `⊆` — the left fragment is contained in the right fragment.
    Subset,
    /// `≡` — the fragments are equal at all times (complete constraint).
    Equivalent,
    /// `⊇` — the left fragment contains the right fragment.
    Superset,
}

impl PcRelationship {
    /// The relationship seen from the other side (`a ⊆ b` ⇔ `b ⊇ a`).
    #[must_use]
    pub fn flipped(self) -> PcRelationship {
        match self {
            PcRelationship::Subset => PcRelationship::Superset,
            PcRelationship::Equivalent => PcRelationship::Equivalent,
            PcRelationship::Superset => PcRelationship::Subset,
        }
    }

    /// Composition along a chain: if `a ⊑₁ b` and `b ⊑₂ c`, then `a (⊑₁∘⊑₂) c`
    /// — `None` when the directions conflict (e.g. `⊆` then `⊇`), in which
    /// case nothing can be concluded.
    #[must_use]
    pub fn compose(self, next: PcRelationship) -> Option<PcRelationship> {
        use PcRelationship::{Equivalent, Subset, Superset};
        match (self, next) {
            (Equivalent, r) => Some(r),
            (r, Equivalent) => Some(r),
            (Subset, Subset) => Some(Subset),
            (Superset, Superset) => Some(Superset),
            (Subset, Superset) | (Superset, Subset) => None,
        }
    }

    /// Symbol used in displays.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            PcRelationship::Subset => "⊆",
            PcRelationship::Equivalent => "≡",
            PcRelationship::Superset => "⊇",
        }
    }
}

impl fmt::Display for PcRelationship {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// One side of a PC constraint: `π_{attrs}(σ_{selection}(relation))`.
///
/// `attrs[i]` on the left side corresponds positionally to `attrs[i]` on the
/// right side (the paper requires `TC(R1.A_is) = TC(R2.A_ns)` for each `s`).
/// Selection predicates use bare column names referring to the relation's own
/// attributes; [`Predicate::always_true`] encodes the paper's "no selection
/// condition" case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcSide {
    /// Relation name.
    pub relation: String,
    /// Projection attribute list (the correspondence columns).
    pub attrs: Vec<String>,
    /// Selection condition (conjunctive; possibly tautologically true).
    pub selection: Predicate,
}

impl PcSide {
    /// Side with no selection condition.
    #[must_use]
    pub fn projection(relation: impl Into<String>, attrs: &[&str]) -> PcSide {
        PcSide {
            relation: relation.into(),
            attrs: attrs.iter().map(|s| (*s).to_owned()).collect(),
            selection: Predicate::always_true(),
        }
    }

    /// Side with a selection condition.
    #[must_use]
    pub fn selected(relation: impl Into<String>, attrs: &[&str], selection: Predicate) -> PcSide {
        PcSide {
            relation: relation.into(),
            attrs: attrs.iter().map(|s| (*s).to_owned()).collect(),
            selection,
        }
    }

    /// Whether the side has a (non-trivial) selection condition — the paper's
    /// "yes" in the no/yes–yes/no case analysis (§5.4.3).
    #[must_use]
    pub fn has_selection(&self) -> bool {
        !self.selection.is_true()
    }
}

impl fmt::Display for PcSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "π[{}](", self.attrs.join(","))?;
        if self.has_selection() {
            write!(f, "σ[{}]", self.selection)?;
        }
        write!(f, "{})", self.relation)
    }
}

/// A partial/complete (PC) constraint `left ⊑ right` (Eq. 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcConstraint {
    /// Left fragment.
    pub left: PcSide,
    /// Containment direction.
    pub relationship: PcRelationship,
    /// Right fragment.
    pub right: PcSide,
}

impl PcConstraint {
    /// Builds a constraint.
    #[must_use]
    pub fn new(left: PcSide, relationship: PcRelationship, right: PcSide) -> PcConstraint {
        PcConstraint {
            left,
            relationship,
            right,
        }
    }

    /// The constraint with sides (and direction) swapped; semantically
    /// identical.
    #[must_use]
    pub fn flipped(&self) -> PcConstraint {
        PcConstraint {
            left: self.right.clone(),
            relationship: self.relationship.flipped(),
            right: self.left.clone(),
        }
    }

    /// Returns the constraint oriented so that `left.relation == relation`,
    /// if the constraint involves that relation at all.
    #[must_use]
    pub fn oriented_from(&self, relation: &str) -> Option<PcConstraint> {
        if self.left.relation == relation {
            Some(self.clone())
        } else if self.right.relation == relation {
            Some(self.flipped())
        } else {
            None
        }
    }

    /// Positional correspondent of `attr` on the other (right) side, given
    /// the constraint is oriented with `attr`'s relation on the left.
    #[must_use]
    pub fn corresponding_attr(&self, attr: &str) -> Option<&str> {
        let idx = self.left.attrs.iter().position(|a| a == attr)?;
        self.right.attrs.get(idx).map(String::as_str)
    }

    /// Whether both sides are selection-free (the `no/no` row of Fig. 9/10);
    /// only such constraints participate in transitive chains.
    #[must_use]
    pub fn is_selection_free(&self) -> bool {
        !self.left.has_selection() && !self.right.has_selection()
    }
}

impl fmt::Display for PcConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PC: {} {} {}", self.left, self.relationship, self.right)
    }
}

/// A join constraint `JC_{R1,R2}` (Eq. 4): `R1 ⋈_{C1 ∧ … ∧ Cl} R2` is a
/// meaningful join. Clause columns are qualified with the two relation names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinConstraint {
    /// First relation.
    pub left: String,
    /// Second relation.
    pub right: String,
    /// Join condition clauses.
    pub condition: Vec<PrimitiveClause>,
}

impl JoinConstraint {
    /// Builds a join constraint.
    #[must_use]
    pub fn new(
        left: impl Into<String>,
        right: impl Into<String>,
        condition: Vec<PrimitiveClause>,
    ) -> JoinConstraint {
        JoinConstraint {
            left: left.into(),
            right: right.into(),
            condition,
        }
    }

    /// Whether this constraint joins relations `a` and `b` (either order).
    #[must_use]
    pub fn connects(&self, a: &str, b: &str) -> bool {
        (self.left == a && self.right == b) || (self.left == b && self.right == a)
    }

    /// The partner relation when `rel` is one endpoint.
    #[must_use]
    pub fn partner_of(&self, rel: &str) -> Option<&str> {
        if self.left == rel {
            Some(&self.right)
        } else if self.right == rel {
            Some(&self.left)
        } else {
            None
        }
    }

    /// The join condition as a conjunctive predicate.
    #[must_use]
    pub fn predicate(&self) -> Predicate {
        Predicate::new(self.condition.clone())
    }
}

impl fmt::Display for JoinConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JC[{}, {}]: {}", self.left, self.right, self.predicate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::{ColumnRef, CompOp, Value};

    #[test]
    fn relationship_flip() {
        assert_eq!(PcRelationship::Subset.flipped(), PcRelationship::Superset);
        assert_eq!(
            PcRelationship::Equivalent.flipped(),
            PcRelationship::Equivalent
        );
    }

    #[test]
    fn relationship_composition_table() {
        use PcRelationship::{Equivalent, Subset, Superset};
        assert_eq!(Subset.compose(Subset), Some(Subset));
        assert_eq!(Subset.compose(Equivalent), Some(Subset));
        assert_eq!(Equivalent.compose(Superset), Some(Superset));
        assert_eq!(Equivalent.compose(Equivalent), Some(Equivalent));
        assert_eq!(Superset.compose(Superset), Some(Superset));
        assert_eq!(Subset.compose(Superset), None);
        assert_eq!(Superset.compose(Subset), None);
    }

    #[test]
    fn orientation() {
        let pc = PcConstraint::new(
            PcSide::projection("R", &["A"]),
            PcRelationship::Subset,
            PcSide::projection("S", &["X"]),
        );
        let from_s = pc.oriented_from("S").unwrap();
        assert_eq!(from_s.left.relation, "S");
        assert_eq!(from_s.relationship, PcRelationship::Superset);
        assert_eq!(from_s.corresponding_attr("X"), Some("A"));
        assert!(pc.oriented_from("T").is_none());
    }

    #[test]
    fn corresponding_attr_is_positional() {
        let pc = PcConstraint::new(
            PcSide::projection("R", &["A", "B"]),
            PcRelationship::Equivalent,
            PcSide::projection("S", &["X", "Y"]),
        );
        assert_eq!(pc.corresponding_attr("A"), Some("X"));
        assert_eq!(pc.corresponding_attr("B"), Some("Y"));
        assert_eq!(pc.corresponding_attr("Z"), None);
    }

    #[test]
    fn selection_free_detection() {
        let free = PcConstraint::new(
            PcSide::projection("R", &["A"]),
            PcRelationship::Subset,
            PcSide::projection("S", &["A"]),
        );
        assert!(free.is_selection_free());
        let selected = PcConstraint::new(
            PcSide::selected(
                "R",
                &["A"],
                Predicate::single(PrimitiveClause::lit(
                    ColumnRef::bare("A"),
                    CompOp::Gt,
                    Value::Int(0),
                )),
            ),
            PcRelationship::Subset,
            PcSide::projection("S", &["A"]),
        );
        assert!(!selected.is_selection_free());
    }

    #[test]
    fn join_constraint_navigation() {
        let jc = JoinConstraint::new(
            "Customer",
            "FlightRes",
            vec![PrimitiveClause::eq(
                ColumnRef::parse("Customer.Name"),
                ColumnRef::parse("FlightRes.PName"),
            )],
        );
        assert!(jc.connects("FlightRes", "Customer"));
        assert_eq!(jc.partner_of("Customer"), Some("FlightRes"));
        assert_eq!(jc.partner_of("Hotel"), None);
        assert_eq!(
            jc.to_string(),
            "JC[Customer, FlightRes]: (Customer.Name = FlightRes.PName)"
        );
    }

    #[test]
    fn pc_display() {
        let pc = PcConstraint::new(
            PcSide::projection("R", &["A"]),
            PcRelationship::Subset,
            PcSide::projection("S", &["A"]),
        );
        assert_eq!(pc.to_string(), "PC: π[A](R) ⊆ π[A](S)");
    }
}
