//! Information source and relation descriptions (paper Eq. 3, §6.1).

use std::fmt;

use eve_relational::{ColumnDef, ColumnRef, DataType, Schema};

/// Identifier of an information source (site). The paper's `IS_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IS{}", self.0)
    }
}

/// One attribute of a registered relation, carrying its type integrity
/// constraint `A(Type)` and its registered size `s_{R.A}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeInfo {
    /// Attribute name.
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// Declared size in bytes.
    pub byte_size: u32,
}

impl AttributeInfo {
    /// Attribute with the type's default byte size.
    #[must_use]
    pub fn new(name: impl Into<String>, ty: DataType) -> AttributeInfo {
        AttributeInfo {
            name: name.into(),
            ty,
            byte_size: ty.default_byte_size(),
        }
    }

    /// Attribute with an explicit byte size.
    #[must_use]
    pub fn sized(name: impl Into<String>, ty: DataType, byte_size: u32) -> AttributeInfo {
        AttributeInfo {
            name: name.into(),
            ty,
            byte_size,
        }
    }
}

/// Description of a relation registered by an information source, together
/// with the database statistics the cost model consumes (§6.1).
#[derive(Debug, Clone, PartialEq)]
pub struct RelationInfo {
    /// Globally unique relation name.
    pub name: String,
    /// Hosting information source.
    pub site: SiteId,
    /// Attributes with their type integrity constraints.
    pub attributes: Vec<AttributeInfo>,
    /// Cardinality `|R|`.
    pub cardinality: u64,
    /// Local-condition selectivity `σ` of this relation's selection in view
    /// queries (§6.1 assumption 4; Table 1 default 0.5).
    pub selectivity: f64,
    /// Blocking factor `bfr` — tuples per physical block (Table 1 default 10).
    pub blocking_factor: u64,
}

impl RelationInfo {
    /// Builds a relation description with the paper's Table 1 defaults for
    /// `σ` (0.5) and `bfr` (10).
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        site: SiteId,
        attributes: Vec<AttributeInfo>,
        cardinality: u64,
    ) -> RelationInfo {
        RelationInfo {
            name: name.into(),
            site,
            attributes,
            cardinality,
            selectivity: 0.5,
            blocking_factor: 10,
        }
    }

    /// Looks up an attribute by name.
    #[must_use]
    pub fn attribute(&self, name: &str) -> Option<&AttributeInfo> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Whether the relation has an attribute named `name`.
    #[must_use]
    pub fn has_attribute(&self, name: &str) -> bool {
        self.attribute(name).is_some()
    }

    /// Tuple size `s_R` in bytes: sum of attribute sizes.
    #[must_use]
    pub fn tuple_bytes(&self) -> u64 {
        self.attributes.iter().map(|a| u64::from(a.byte_size)).sum()
    }

    /// Number of I/Os for a full scan: `⌈|R| / bfr⌉` (Eq. 32).
    #[must_use]
    pub fn full_scan_ios(&self) -> u64 {
        if self.blocking_factor == 0 {
            return self.cardinality;
        }
        self.cardinality.div_ceil(self.blocking_factor)
    }

    /// The relation's schema with columns qualified by the relation name.
    ///
    /// # Panics
    ///
    /// Never panics for a validly registered relation (attribute names are
    /// checked unique at registration).
    #[must_use]
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.attributes
                .iter()
                .map(|a| {
                    ColumnDef::sized(
                        ColumnRef::qualified(self.name.clone(), a.name.clone()),
                        a.ty,
                        a.byte_size,
                    )
                })
                .collect(),
        )
        .expect("registered relations have unique attribute names")
    }
}

impl fmt::Display for RelationInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}(", self.site, self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, ") |R|={}", self.cardinality)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> RelationInfo {
        RelationInfo::new(
            "Customer",
            SiteId(1),
            vec![
                AttributeInfo::sized("Name", DataType::Text, 30),
                AttributeInfo::sized("Address", DataType::Text, 60),
                AttributeInfo::new("Age", DataType::Int),
            ],
            4000,
        )
    }

    #[test]
    fn attribute_lookup() {
        let r = rel();
        assert!(r.has_attribute("Name"));
        assert!(!r.has_attribute("Phone"));
        assert_eq!(r.attribute("Age").unwrap().ty, DataType::Int);
    }

    #[test]
    fn tuple_bytes_sums_sizes() {
        assert_eq!(rel().tuple_bytes(), 30 + 60 + 8);
    }

    #[test]
    fn defaults_match_table_1() {
        let r = rel();
        assert!((r.selectivity - 0.5).abs() < f64::EPSILON);
        assert_eq!(r.blocking_factor, 10);
    }

    #[test]
    fn full_scan_ios_eq_32() {
        let r = rel();
        assert_eq!(r.full_scan_ios(), 400);
        let mut odd = rel();
        odd.cardinality = 4001;
        assert_eq!(odd.full_scan_ios(), 401);
    }

    #[test]
    fn schema_is_qualified() {
        let s = rel().schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column(0).column, ColumnRef::qualified("Customer", "Name"));
        assert_eq!(s.tuple_byte_size(), 98);
    }

    #[test]
    fn display_shows_site_and_stats() {
        let text = rel().to_string();
        assert!(text.starts_with("IS1.Customer("));
        assert!(text.ends_with("|R|=4000"));
    }
}
