//! Errors raised by MKB operations.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised when registering sources/constraints or evolving the MKB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A relation name is not registered.
    UnknownRelation {
        /// The missing relation.
        relation: String,
    },
    /// An attribute is not part of a registered relation.
    UnknownAttribute {
        /// Relation searched.
        relation: String,
        /// Missing attribute.
        attribute: String,
    },
    /// A site id is not registered.
    UnknownSite {
        /// The missing site id.
        site: u32,
    },
    /// Registering a relation name twice.
    DuplicateRelation {
        /// The duplicated name.
        relation: String,
    },
    /// Adding an attribute that already exists.
    DuplicateAttribute {
        /// Relation affected.
        relation: String,
        /// The duplicated attribute.
        attribute: String,
    },
    /// A constraint is malformed (detail explains why).
    InvalidConstraint {
        /// Human-readable reason.
        detail: String,
    },
    /// A schema change cannot be applied.
    InvalidChange {
        /// Human-readable reason.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownRelation { relation } => write!(f, "unknown relation `{relation}`"),
            Error::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "unknown attribute `{relation}.{attribute}`"),
            Error::UnknownSite { site } => write!(f, "unknown site `{site}`"),
            Error::DuplicateRelation { relation } => {
                write!(f, "relation `{relation}` is already registered")
            }
            Error::DuplicateAttribute {
                relation,
                attribute,
            } => write!(f, "attribute `{relation}.{attribute}` already exists"),
            Error::InvalidConstraint { detail } => write!(f, "invalid constraint: {detail}"),
            Error::InvalidChange { detail } => write!(f, "invalid schema change: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            Error::UnknownRelation {
                relation: "R".into()
            }
            .to_string(),
            "unknown relation `R`"
        );
        assert_eq!(
            Error::UnknownAttribute {
                relation: "R".into(),
                attribute: "A".into()
            }
            .to_string(),
            "unknown attribute `R.A`"
        );
    }
}
