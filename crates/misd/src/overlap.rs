//! Overlap-size estimation from PC constraints (paper §5.4.3, Fig. 9/10).
//!
//! To score the extent quality of a rewriting, EVE must estimate
//! `|R1 ∩~ R2|` — how many tuples the dropped relation `R1` and its
//! replacement `R2` share on the corresponding attributes. A PC constraint
//! `π(σ_{C1} R1) ⊑ π(σ_{C2} R2)` determines this size *exactly* in seven of
//! the twelve (selection-shape × direction) cases and gives a *minimal bound*
//! in the remaining five (the asterisked subsets of Fig. 9):
//!
//! | `C1`/`C2`   | `⊆`              | `≡`                   | `⊇`              |
//! |-------------|------------------|-----------------------|------------------|
//! | no / no     | `|R1|` exact     | `|R1| = |R2|` exact   | `|R2|` exact     |
//! | no / yes    | `|R1|` exact     | `|R1| = σ₂|R2|` exact | `≥ σ₂|R2|`       |
//! | yes / no    | `≥ σ₁|R1|`       | `|R2| = σ₁|R1|` exact | `|R2|` exact     |
//! | yes / yes   | `≥ σ₁|R1|`       | `≥ σ₁|R1| = σ₂|R2|`   | `≥ σ₂|R2|`       |
//!
//! When no PC constraint links two relations, the overlap must be assumed
//! zero (§5.4.3 last paragraph).

use crate::constraints::{PcConstraint, PcRelationship};

/// An estimated intersection size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapEstimate {
    /// Estimated number of shared (projected, deduplicated) tuples. For
    /// inexact cases this is the *minimal* value the constraint guarantees.
    pub size: f64,
    /// Whether the constraint pins the size exactly (`true`) or only bounds
    /// it from below (`false`) — the asterisked cases of Fig. 9.
    pub exact: bool,
}

impl OverlapEstimate {
    /// The "no information" estimate: without a PC constraint relations must
    /// be assumed disjoint (§5.4.3).
    pub const UNKNOWN: OverlapEstimate = OverlapEstimate {
        size: 0.0,
        exact: false,
    };
}

/// Statistics needed to evaluate one PC constraint: fragment cardinalities
/// and the selectivities of the two selection conditions (only consulted for
/// sides that actually carry a selection).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapInputs {
    /// `|R1|` — cardinality of the left relation.
    pub left_card: f64,
    /// `|R2|` — cardinality of the right relation.
    pub right_card: f64,
    /// Selectivity `σ₁` of the left selection condition.
    pub left_selectivity: f64,
    /// Selectivity `σ₂` of the right selection condition.
    pub right_selectivity: f64,
}

/// Estimates `|R1 ∩~ R2|` from one PC constraint (Fig. 10).
#[must_use]
pub fn estimate_overlap(pc: &PcConstraint, inputs: OverlapInputs) -> OverlapEstimate {
    let left_sel = pc.left.has_selection();
    let right_sel = pc.right.has_selection();
    let l_frag = if left_sel {
        inputs.left_selectivity * inputs.left_card
    } else {
        inputs.left_card
    };
    let r_frag = if right_sel {
        inputs.right_selectivity * inputs.right_card
    } else {
        inputs.right_card
    };
    match pc.relationship {
        // left fragment ⊆ right fragment: everything in σ(R1) is in R2; when
        // the left side is unselected the whole of R1 is covered (exact).
        PcRelationship::Subset => OverlapEstimate {
            size: l_frag,
            exact: !left_sel,
        },
        // left fragment ⊇ right fragment: symmetric.
        PcRelationship::Superset => OverlapEstimate {
            size: r_frag,
            exact: !right_sel,
        },
        PcRelationship::Equivalent => {
            if left_sel && right_sel {
                // σ(R1) = σ(R2): only the selected fragments are known equal.
                OverlapEstimate {
                    size: l_frag.min(r_frag),
                    exact: false,
                }
            } else {
                // At most one side selected: the unselected side is wholly
                // contained in the other relation, so the overlap is the
                // smaller fragment, exactly.
                OverlapEstimate {
                    size: l_frag.min(r_frag),
                    exact: true,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::PcSide;
    use eve_relational::{ColumnRef, CompOp, Predicate, PrimitiveClause, Value};

    fn selected_side(rel: &str) -> PcSide {
        PcSide::selected(
            rel,
            &["A"],
            Predicate::single(PrimitiveClause::lit(
                ColumnRef::bare("A"),
                CompOp::Gt,
                Value::Int(0),
            )),
        )
    }

    fn inputs() -> OverlapInputs {
        OverlapInputs {
            left_card: 1000.0,
            right_card: 4000.0,
            left_selectivity: 0.3,
            right_selectivity: 0.2,
        }
    }

    fn pc(left_selected: bool, rel: PcRelationship, right_selected: bool) -> PcConstraint {
        let l = if left_selected {
            selected_side("R1")
        } else {
            PcSide::projection("R1", &["A"])
        };
        let r = if right_selected {
            selected_side("R2")
        } else {
            PcSide::projection("R2", &["A"])
        };
        PcConstraint::new(l, rel, r)
    }

    #[test]
    fn twelve_cases_of_fig_10() {
        use PcRelationship::{Equivalent, Subset, Superset};
        let cases = [
            // (left_sel, rel, right_sel, size, exact)
            (false, Subset, false, 1000.0, true),
            (false, Subset, true, 1000.0, true),
            (true, Subset, false, 300.0, false),
            (true, Subset, true, 300.0, false),
            (false, Equivalent, false, 1000.0, true),
            (false, Equivalent, true, 800.0, true), // min(1000, 0.2·4000)
            (true, Equivalent, false, 300.0, true), // min(0.3·1000, 4000)
            (true, Equivalent, true, 300.0, false),
            (false, Superset, false, 4000.0, true),
            (false, Superset, true, 800.0, false),
            (true, Superset, false, 4000.0, true),
            (true, Superset, true, 800.0, false),
        ];
        for (ls, rel, rs, size, exact) in cases {
            let est = estimate_overlap(&pc(ls, rel, rs), inputs());
            assert!(
                (est.size - size).abs() < 1e-9 && est.exact == exact,
                "case ({ls}, {rel:?}, {rs}): got {est:?}, want size {size} exact {exact}"
            );
        }
    }

    #[test]
    fn exactly_five_inexact_cases() {
        use PcRelationship::{Equivalent, Subset, Superset};
        let mut inexact = 0;
        for rel in [Subset, Equivalent, Superset] {
            for ls in [false, true] {
                for rs in [false, true] {
                    if !estimate_overlap(&pc(ls, rel, rs), inputs()).exact {
                        inexact += 1;
                    }
                }
            }
        }
        assert_eq!(inexact, 5, "Fig. 9 marks exactly five subsets with *");
    }

    #[test]
    fn unknown_estimate_is_zero() {
        let unknown = OverlapEstimate::UNKNOWN;
        assert_eq!(unknown.size, 0.0);
        assert!(!unknown.exact);
    }

    #[test]
    fn experiment4_chain_endpoints() {
        // Experiment 4: PC(S1 ⊆ S3) with |S1| = 2000 ⇒ overlap(S3, S1) = 2000.
        let c = pc(false, PcRelationship::Subset, false);
        let est = estimate_overlap(
            &c,
            OverlapInputs {
                left_card: 2000.0,
                right_card: 4000.0,
                left_selectivity: 1.0,
                right_selectivity: 1.0,
            },
        );
        assert_eq!(est.size, 2000.0);
        assert!(est.exact);
    }
}
