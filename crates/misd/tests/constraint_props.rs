//! Property-based tests of the constraint model, overlap estimation and the
//! MKB evolver.

use proptest::prelude::*;

use eve_misd::overlap::{estimate_overlap, OverlapInputs};
use eve_misd::{
    AttributeInfo, JoinConstraint, Mkb, PcConstraint, PcRelationship, PcSide, RelationInfo,
    SchemaChange, SiteId,
};
use eve_relational::{ColumnRef, CompOp, DataType, Predicate, PrimitiveClause, Value};

fn relationship() -> impl Strategy<Value = PcRelationship> {
    prop_oneof![
        Just(PcRelationship::Subset),
        Just(PcRelationship::Equivalent),
        Just(PcRelationship::Superset),
    ]
}

fn side(rel: &'static str, selected: bool) -> PcSide {
    if selected {
        PcSide::selected(
            rel,
            &["A"],
            Predicate::single(PrimitiveClause::lit(
                ColumnRef::bare("A"),
                CompOp::Gt,
                Value::Int(0),
            )),
        )
    } else {
        PcSide::projection(rel, &["A"])
    }
}

/// A chain MKB: relations X0 … Xn with consecutive constraints of given
/// directions.
fn chain_mkb(directions: &[PcRelationship], cards: &[u64]) -> Mkb {
    let mut mkb = Mkb::new();
    mkb.register_site(SiteId(1), "one").unwrap();
    for (i, &card) in cards.iter().enumerate() {
        mkb.register_relation(RelationInfo::new(
            format!("X{i}"),
            SiteId(1),
            vec![AttributeInfo::new("A", DataType::Int)],
            card,
        ))
        .unwrap();
    }
    for (i, &dir) in directions.iter().enumerate() {
        mkb.add_pc_constraint(PcConstraint::new(
            PcSide::projection(format!("X{i}"), &["A"]),
            dir,
            PcSide::projection(format!("X{}", i + 1), &["A"]),
        ))
        .unwrap();
    }
    mkb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // -------------------------------------------------------------------
    // Relationship algebra.
    // -------------------------------------------------------------------

    #[test]
    fn flip_is_involutive_and_compose_flips(a in relationship(), b in relationship()) {
        prop_assert_eq!(a.flipped().flipped(), a);
        // (a ∘ b) flipped == b.flipped ∘ a.flipped (when both defined).
        let lhs = a.compose(b).map(PcRelationship::flipped);
        let rhs = b.flipped().compose(a.flipped());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn equivalent_is_composition_identity(a in relationship()) {
        prop_assert_eq!(PcRelationship::Equivalent.compose(a), Some(a));
        prop_assert_eq!(a.compose(PcRelationship::Equivalent), Some(a));
    }

    // -------------------------------------------------------------------
    // Overlap estimation (Fig. 9/10).
    // -------------------------------------------------------------------

    #[test]
    fn overlap_is_bounded_by_fragments(
        rel in relationship(),
        lsel in proptest::bool::ANY,
        rsel in proptest::bool::ANY,
        lc in 1.0f64..10_000.0,
        rc in 1.0f64..10_000.0,
        s1 in 0.01f64..1.0,
        s2 in 0.01f64..1.0,
    ) {
        let pc = PcConstraint::new(side("L", lsel), rel, side("R", rsel));
        let est = estimate_overlap(&pc, OverlapInputs {
            left_card: lc,
            right_card: rc,
            left_selectivity: s1,
            right_selectivity: s2,
        });
        prop_assert!(est.size >= 0.0);
        prop_assert!(est.size <= lc.max(rc) + 1e-9);
        // Exact estimates of unselected containments equal a full side.
        if !lsel && !rsel {
            prop_assert!(est.exact);
            match rel {
                PcRelationship::Subset => prop_assert_eq!(est.size, lc),
                PcRelationship::Superset => prop_assert_eq!(est.size, rc),
                PcRelationship::Equivalent => prop_assert_eq!(est.size, lc.min(rc)),
            }
        }
    }

    #[test]
    fn overlap_is_symmetric_under_flip(
        rel in relationship(),
        lsel in proptest::bool::ANY,
        rsel in proptest::bool::ANY,
        lc in 1.0f64..10_000.0,
        rc in 1.0f64..10_000.0,
        s in 0.01f64..1.0,
    ) {
        let pc = PcConstraint::new(side("L", lsel), rel, side("R", rsel));
        let est = estimate_overlap(&pc, OverlapInputs {
            left_card: lc, right_card: rc, left_selectivity: s, right_selectivity: s,
        });
        let flipped = estimate_overlap(&pc.flipped(), OverlapInputs {
            left_card: rc, right_card: lc, left_selectivity: s, right_selectivity: s,
        });
        prop_assert!((est.size - flipped.size).abs() < 1e-9);
        prop_assert_eq!(est.exact, flipped.exact);
    }

    // -------------------------------------------------------------------
    // Transitive overlap through chains.
    // -------------------------------------------------------------------

    #[test]
    fn subset_chains_compose_to_first_cardinality(
        len in 1usize..5,
        cards in prop::collection::vec(10u64..5000, 6..=6),
    ) {
        // Ascending subset chain: X0 ⊆ X1 ⊆ … — overlap(X0, Xk) = |X0|.
        let mut sorted = cards.clone();
        sorted.sort_unstable();
        let dirs = vec![PcRelationship::Subset; len];
        let mkb = chain_mkb(&dirs, &sorted[..=len]);
        let (rel, est) = mkb.relation_overlap("X0", &format!("X{len}")).unwrap();
        prop_assert_eq!(rel, Some(PcRelationship::Subset));
        #[allow(clippy::cast_precision_loss)]
        let expect = sorted[0] as f64;
        prop_assert!((est.size - expect).abs() < 1e-9);
        prop_assert!(est.exact);
    }

    #[test]
    fn mixed_direction_chains_yield_unknown(cards in prop::collection::vec(10u64..5000, 3..=3)) {
        // X0 ⊆ X1 ⊇ X2 composes to nothing: overlap must be the
        // conservative zero (§5.4.3).
        let mkb = chain_mkb(
            &[PcRelationship::Subset, PcRelationship::Superset],
            &cards,
        );
        let (rel, est) = mkb.relation_overlap("X0", "X2").unwrap();
        prop_assert_eq!(rel, None);
        prop_assert_eq!(est.size, 0.0);
    }

    // -------------------------------------------------------------------
    // Evolver: apply_change never leaves dangling constraint references.
    // -------------------------------------------------------------------

    #[test]
    fn evolver_preserves_consistency(
        ops in prop::collection::vec(0u8..6, 1..8),
    ) {
        let mut mkb = Mkb::new();
        mkb.register_site(SiteId(1), "one").unwrap();
        mkb.register_site(SiteId(2), "two").unwrap();
        let attrs = |n: usize| {
            (0..n)
                .map(|i| AttributeInfo::new(format!("A{i}"), DataType::Int))
                .collect::<Vec<_>>()
        };
        mkb.register_relation(RelationInfo::new("R", SiteId(1), attrs(3), 100)).unwrap();
        mkb.register_relation(RelationInfo::new("S", SiteId(2), attrs(3), 200)).unwrap();
        mkb.add_pc_constraint(PcConstraint::new(
            PcSide::projection("R", &["A0", "A1"]),
            PcRelationship::Subset,
            PcSide::projection("S", &["A0", "A1"]),
        )).unwrap();
        mkb.add_join_constraint(JoinConstraint::new(
            "R",
            "S",
            vec![PrimitiveClause::eq(ColumnRef::parse("R.A0"), ColumnRef::parse("S.A0"))],
        )).unwrap();

        let mut fresh = 0u32;
        for op in ops {
            let change = match op {
                0 => SchemaChange::DeleteAttribute { relation: "R".into(), attribute: "A0".into() },
                1 => SchemaChange::DeleteAttribute { relation: "S".into(), attribute: "A1".into() },
                2 => {
                    fresh += 1;
                    SchemaChange::AddAttribute {
                        relation: "R".into(),
                        attribute: AttributeInfo::new(format!("N{fresh}"), DataType::Int),
                    }
                }
                3 => SchemaChange::RenameAttribute {
                    relation: "S".into(),
                    from: "A2".into(),
                    to: "Z".into(),
                },
                4 => SchemaChange::DeleteRelation { relation: "S".into() },
                _ => SchemaChange::RenameRelation { from: "R".into(), to: "R2".into() },
            };
            // Changes may legitimately fail (e.g. deleting twice); the
            // invariant is that *successful* changes keep the MKB
            // consistent and failed ones leave it untouched enough to stay
            // consistent too.
            let _ = mkb.apply_change(&change);
            let problems = eve_misd::evolver::check_consistency(&mkb);
            prop_assert!(
                problems.is_empty(),
                "inconsistent after {change}: {problems:?}"
            );
        }
    }
}
