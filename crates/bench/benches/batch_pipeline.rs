//! Criterion bench for the batched evolution pipeline: `apply_batch` vs
//! the legacy op-by-op application on the 50-site / 200-op workload (and a
//! smaller point for shape). The acceptance bar — batched ≥ 2× faster at
//! 50/200 — is recorded in EXPERIMENTS.md; `repro batch` prints the same
//! comparison with an equivalence assertion between the arms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eve_bench::experiments::batch_pipeline::{build_workload, run_sequential};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_pipeline");
    for (sites, ops) in [(10u32, 50usize), (50, 200)] {
        let (engine, workload) = build_workload(sites, ops, 2024).unwrap();
        group.bench_with_input(
            BenchmarkId::new("sequential", format!("{sites}x{ops}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    let mut e = engine.clone();
                    run_sequential(&mut e, &workload).unwrap();
                    std::hint::black_box(e.total_io())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched", format!("{sites}x{ops}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    let mut e = engine.clone();
                    let outcome = e.apply_batch(workload.clone()).unwrap();
                    std::hint::black_box((e.total_io(), outcome.max_width))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600));
    targets = bench_pipeline
}
criterion_main!(benches);
