//! Criterion bench for Experiment 5 / Table 6 / Figure 16: the M3 workload
//! totals over all distributions and origin sites.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eve_bench::experiments::exp5_workload::{model_update_counts, table6};

fn bench_fig16(c: &mut Criterion) {
    c.bench_function("fig16/table6_full", |b| {
        b.iter(|| std::hint::black_box(table6(10.0)));
    });

    let mut group = c.benchmark_group("fig16/update_models");
    for dist in [vec![6], vec![3, 3], vec![2, 2, 2]] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{dist:?}")),
            &dist,
            |b, dist| {
                b.iter(|| std::hint::black_box(model_update_counts(dist)));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600));
    targets = bench_fig16
}
criterion_main!(benches);
