//! Criterion bench for the durable evolution log: fsync'd append
//! throughput, the group-commit writer against the fsync-per-record
//! baseline, and crash-recovery (snapshot load + log-tail replay) under
//! the snapshot policies the `durability` experiment compares.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eve_bench::experiments::batch_pipeline;
use eve_bench::experiments::durability::{append_throughput, into_batches};
use eve_system::DurableEngine;

fn scratch(tag: &str, n: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "eve-durability-criterion-{}-{tag}-{n}",
        std::process::id()
    ))
}

fn bench_durability(c: &mut Criterion) {
    let mut counter = 0u64;

    let mut group = c.benchmark_group("durability/append_fsync");
    for (sites, ops) in [(5u32, 50usize), (10, 100)] {
        let (engine, workload) = batch_pipeline::build_workload(sites, ops, 7).unwrap();
        let batches = into_batches(workload, 8);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{sites}x{ops}")),
            &batches,
            |b, batches| {
                b.iter(|| {
                    counter += 1;
                    let dir = scratch("append", counter);
                    std::fs::remove_dir_all(&dir).ok();
                    let mut durable = DurableEngine::create_with(&dir, engine.clone()).unwrap();
                    for batch in batches {
                        durable.apply_batch(batch.clone()).unwrap();
                    }
                    let seq = durable.next_seq();
                    drop(durable);
                    std::fs::remove_dir_all(&dir).ok();
                    std::hint::black_box(seq)
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("durability/group_commit");
    // Whole-comparison arms: each iteration measures the full append run
    // (baseline 1 fsync/record vs pipelined group commit), crash included.
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}-threads")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let report = append_throughput(256, threads).unwrap();
                    assert!(report.rows.iter().all(|r| r.recovered_identical));
                    std::hint::black_box(report.rows.len())
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("durability/recovery");
    for (label, snapshot_every) in [("replay-all", None), ("snap-every-4", Some(4u64))] {
        let (engine, workload) = batch_pipeline::build_workload(8, 80, 7).unwrap();
        let batches = into_batches(workload, 8);
        counter += 1;
        let dir = scratch(label, counter);
        std::fs::remove_dir_all(&dir).ok();
        let mut durable = DurableEngine::create_with(&dir, engine).unwrap();
        durable.snapshot_every = snapshot_every;
        for batch in &batches {
            durable.apply_batch(batch.clone()).unwrap();
        }
        drop(durable); // crash; only the fsync'd store remains
        group.bench_with_input(BenchmarkId::from_parameter(label), &dir, |b, dir| {
            b.iter(|| {
                let (recovered, report) = DurableEngine::open(dir).unwrap();
                std::hint::black_box((
                    recovered.engine().mkb().generation(),
                    report.replayed_records,
                ))
            });
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group!(benches, bench_durability);
criterion_main!(benches);
