//! Criterion bench for morsel-driven parallel execution: the same
//! compiled plan executed through the serial columnar path vs the morsel
//! pool at 2, 4 and 8 workers. The acceptance bars — byte-identity
//! always, wall-clock ≥ 3× at 8 threads on ≥ 8-core machines, modeled
//! ≥ 1.5× everywhere (`repro parallel` / the tier-1 gate) — are enforced
//! elsewhere; this bench times the same arms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eve_bench::experiments::parallel;
use eve_relational::exec::{execute_with_options, ExecMode};
use eve_relational::ExecOptions;
use eve_system::query::plan_view;

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    for workload in parallel::workloads().unwrap() {
        let plan = plan_view(&workload.view, &workload.extents, &workload.stats).unwrap();
        group.bench_with_input(
            BenchmarkId::new("serial", &workload.name),
            &plan,
            |b, plan| {
                b.iter(|| {
                    let out =
                        execute_with_options(plan, ExecMode::Columnar, &ExecOptions::serial())
                            .unwrap();
                    std::hint::black_box(out.cardinality())
                });
            },
        );
        for threads in [2usize, 4, 8] {
            let opts = ExecOptions {
                parallelism: threads,
                morsel_rows: parallel::MORSEL_ROWS,
                force_parallel: false,
            };
            group.bench_with_input(
                BenchmarkId::new(format!("threads-{threads}"), &workload.name),
                &plan,
                |b, plan| {
                    b.iter(|| {
                        let out = execute_with_options(plan, ExecMode::Columnar, &opts).unwrap();
                        std::hint::black_box(out.cardinality())
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600));
    targets = bench_parallel
}
criterion_main!(benches);
