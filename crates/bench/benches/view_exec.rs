//! Criterion bench for the cost-ordered physical planner: planned
//! execution vs the naive left-to-right evaluator on the `view_exec`
//! workload set. The acceptance bar — planned ≥ 3× faster than naive on
//! the wide-join workload — is enforced by the soak suite
//! (`tests/soak.rs::view_exec_meets_speedup_gate`) and recorded in
//! EXPERIMENTS.md; this bench times the same arms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eve_bench::experiments::view_exec;
use eve_system::query::{evaluate_view_naive, plan_view};

fn bench_view_exec(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_exec");
    for workload in view_exec::workloads().unwrap() {
        group.bench_with_input(
            BenchmarkId::new("naive", &workload.name),
            &workload,
            |b, w| {
                b.iter(|| {
                    let out = evaluate_view_naive(&w.view, &w.extents).unwrap();
                    std::hint::black_box(out.cardinality())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("planned", &workload.name),
            &workload,
            |b, w| {
                b.iter(|| {
                    let plan = plan_view(&w.view, &w.extents, &w.stats).unwrap();
                    let out = plan.execute().unwrap();
                    std::hint::black_box(out.cardinality())
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600));
    targets = bench_view_exec
}
criterion_main!(benches);
