//! Criterion bench for the view synchronizer itself: rewriting-generation
//! throughput as the information-space redundancy grows (the paper's §4
//! concern that the rewriting space "may grow exponentially").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eve_esql::parse_view;
use eve_misd::{
    AttributeInfo, Mkb, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
};
use eve_relational::DataType;
use eve_sync::{synchronize, SyncOptions};

/// An information space with `replicas` full replicas of R(A0..A3).
fn space(replicas: usize) -> Mkb {
    let mut mkb = Mkb::new();
    mkb.register_site(SiteId(1), "one").unwrap();
    let attrs = || {
        (0..4)
            .map(|i| AttributeInfo::new(format!("A{i}"), DataType::Int))
            .collect::<Vec<_>>()
    };
    mkb.register_relation(RelationInfo::new("R", SiteId(1), attrs(), 400))
        .unwrap();
    let names: Vec<String> = (0..4).map(|i| format!("A{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    for r in 0..replicas {
        let site = SiteId(u32::try_from(r).unwrap() + 2);
        mkb.register_site(site, format!("rep{r}")).unwrap();
        let name = format!("Rep{r}");
        mkb.register_relation(RelationInfo::new(&name, site, attrs(), 400))
            .unwrap();
        mkb.add_pc_constraint(PcConstraint::new(
            PcSide::projection("R", &refs),
            PcRelationship::Equivalent,
            PcSide::projection(&name, &refs),
        ))
        .unwrap();
    }
    mkb
}

fn bench_synchronizer(c: &mut Criterion) {
    let view = parse_view(
        "CREATE VIEW V (VE = '~') AS \
         SELECT R.A0 (AD = true, AR = true), R.A1 (AD = true, AR = true), \
                R.A2 (AD = true), R.A3 (AR = true) \
         FROM R (RR = true) \
         WHERE R.A0 > 10 (CD = true)",
    )
    .unwrap();
    let change = SchemaChange::DeleteRelation {
        relation: "R".into(),
    };

    let mut group = c.benchmark_group("synchronize/by_replicas");
    for replicas in [1usize, 4, 16, 64] {
        let mkb = space(replicas);
        group.bench_with_input(BenchmarkId::from_parameter(replicas), &mkb, |b, mkb| {
            let options = SyncOptions {
                max_rewritings: 256,
                ..SyncOptions::default()
            };
            b.iter(|| std::hint::black_box(synchronize(&view, &change, mkb, &options).unwrap()));
        });
    }
    group.finish();

    // The CVS-style widened search.
    let mkb = space(8);
    c.bench_function("synchronize/with_dispensable_spectrum", |b| {
        let options = SyncOptions {
            max_rewritings: 256,
            enumerate_dispensable_drops: true,
        };
        b.iter(|| std::hint::black_box(synchronize(&view, &change, &mkb, &options).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600));
    targets = bench_synchronizer
}
criterion_main!(benches);
