//! Criterion bench for the executed maintenance substrate: Algorithm 1
//! (incremental) vs full recomputation on the uniform chain-join scenario —
//! the measured counterpart of the paper's cost study.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eve_relational::tup;
use eve_system::maintainer::{maintain_view, recompute_view, DataUpdate};
use eve_system::scenario::{build_uniform_space, UniformSpaceSpec};

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance/incremental_by_distribution");
    for dist in [vec![6], vec![3, 3], vec![2, 2, 2], vec![1, 1, 1, 1, 1, 1]] {
        let spec = UniformSpaceSpec {
            distribution: dist.clone(),
            inverse_selectivity: 2,
            ..UniformSpaceSpec::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{dist:?}")),
            &spec,
            |b, spec| {
                let (mut engine, view) = build_uniform_space(spec).unwrap();
                let extent = engine.evaluate(&view).unwrap();
                let mkb = engine.mkb().clone();
                b.iter(|| {
                    let mut extent = extent.clone();
                    let update = DataUpdate::insert("R1_1", vec![tup![0, 0]]);
                    std::hint::black_box(
                        maintain_view(&view, &mut extent, &update, engine.sites_mut(), &mkb)
                            .unwrap(),
                    )
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("maintenance/recompute_by_distribution");
    for dist in [vec![6], vec![3, 3], vec![2, 2, 2]] {
        let spec = UniformSpaceSpec {
            distribution: dist.clone(),
            inverse_selectivity: 2,
            ..UniformSpaceSpec::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{dist:?}")),
            &spec,
            |b, spec| {
                let (mut engine, view) = build_uniform_space(spec).unwrap();
                let mkb = engine.mkb().clone();
                b.iter(|| {
                    std::hint::black_box(recompute_view(&view, engine.sites_mut(), &mkb).unwrap())
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600));
    targets = bench_maintenance
}
criterion_main!(benches);
