//! Criterion bench for Experiment 4 / Tables 3–4 / Figure 15: the full
//! synchronize-and-rank pipeline over the cardinality chain, per trade-off
//! case, plus the Table 5 (M1 workload) variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eve_bench::experiments::exp4_cardinality::{figure15, setup, table4, FIG15_CASES};
use eve_bench::experiments::exp5_workload::table5;
use eve_qc::{rank_rewritings, QcParams, WorkloadModel};

fn bench_fig15(c: &mut Criterion) {
    c.bench_function("fig15/setup_and_synchronize", |b| {
        b.iter(|| std::hint::black_box(setup()));
    });

    // Ranking only (synchronization hoisted out).
    let (view, rewritings, mkb) = setup();
    c.bench_function("fig15/rank_only", |b| {
        let params = QcParams::experiment4(0.9, 0.1);
        b.iter(|| {
            std::hint::black_box(
                rank_rewritings(
                    &view,
                    &rewritings,
                    &mkb,
                    &params,
                    WorkloadModel::SingleUpdate,
                )
                .unwrap(),
            )
        });
    });

    let mut group = c.benchmark_group("fig15/table4_by_case");
    for (q, cost) in FIG15_CASES {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("q{q}_c{cost}")),
            &(q, cost),
            |b, &(q, cost)| {
                b.iter(|| std::hint::black_box(table4(q, cost).unwrap()));
            },
        );
    }
    group.finish();

    c.bench_function("fig15/all_cases", |b| {
        b.iter(|| std::hint::black_box(figure15().unwrap()));
    });

    c.bench_function("table5/workload_m1", |b| {
        b.iter(|| std::hint::black_box(table5().unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600));
    targets = bench_fig15
}
criterion_main!(benches);
