//! Criterion bench for the rewrite-search policies on the wide-MKB
//! workload: exhaustive cross-product enumeration (plus post-hoc QC
//! ranking) versus the QC-bounded best-first search stopping at its first —
//! already QC-best — emission.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eve_bench::experiments::search_space;
use eve_qc::{rank_rewritings, synchronize_qc_best_first, QcGuide, QcParams, WorkloadModel};
use eve_sync::{synchronize_with_policy, ExplorationPolicy, PartnerCache, SyncOptions};

fn bench_search_space(c: &mut Criterion) {
    let params = QcParams::default();
    let workload = WorkloadModel::SingleUpdate;

    let mut group = c.benchmark_group("search/exhaustive_then_rank");
    for (partners, bindings) in search_space::configurations() {
        let (mkb, view, change) = search_space::wide_space(partners, bindings).unwrap();
        let options = SyncOptions {
            max_rewritings: 256,
            ..SyncOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{partners}x{bindings}")),
            &mkb,
            |b, mkb| {
                b.iter(|| {
                    let (outcome, _) = synchronize_with_policy(
                        &view,
                        &change,
                        mkb,
                        &options,
                        &ExplorationPolicy::Exhaustive,
                        &mut PartnerCache::new(),
                    )
                    .unwrap();
                    let scored =
                        rank_rewritings(&view, &outcome.rewritings, mkb, &params, workload)
                            .unwrap();
                    std::hint::black_box(scored.len())
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("search/qc_best_first_first_emission");
    for (partners, bindings) in search_space::configurations() {
        let (mkb, view, change) = search_space::wide_space(partners, bindings).unwrap();
        let options = SyncOptions {
            max_rewritings: 1,
            ..SyncOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{partners}x{bindings}")),
            &mkb,
            |b, mkb| {
                let guide = QcGuide::auto(&view, mkb, &params, workload).unwrap();
                b.iter(|| {
                    let (outcome, _) =
                        synchronize_qc_best_first(&view, &change, mkb, &options, &guide).unwrap();
                    std::hint::black_box(outcome.rewritings.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600));
    targets = bench_search_space
}
criterion_main!(benches);
