//! Criterion bench for Experiment 3 / Figure 14: grouped distribution
//! sweeps across the three join selectivities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eve_bench::experiments::exp3_distribution::{figure14, FIG14_JS};

fn bench_fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14/by_join_selectivity");
    for js in FIG14_JS {
        group.bench_with_input(BenchmarkId::from_parameter(js), &js, |b, &js| {
            b.iter(|| std::hint::black_box(figure14(js)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600));
    targets = bench_fig14
}
criterion_main!(benches);
