//! Criterion bench for Experiment 2 / Figure 13: evaluating the per-update
//! cost factors over all Table 2 distributions, per site count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eve_bench::experiments::exp2_sites::{figure13, plan_for, Table1};
use eve_qc::cost::{cf_io, cf_messages, cf_transfer, compositions};
use eve_qc::IoBound;

fn bench_fig13(c: &mut Criterion) {
    let params = Table1::default();

    // The full figure (all six averages).
    c.bench_function("fig13/full_series", |b| {
        b.iter(|| std::hint::black_box(figure13(&params)));
    });

    // Per-m cost of evaluating every distribution.
    let mut group = c.benchmark_group("fig13/per_site_count");
    for m in 1..=6usize {
        let dists = compositions(params.relations, m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &dists, |b, dists| {
            b.iter(|| {
                let mut acc = 0.0;
                for d in dists {
                    let plan = plan_for(d, &params);
                    acc += cf_messages(&plan, true)
                        + cf_transfer(&plan)
                        + cf_io(&plan, IoBound::Lower);
                }
                std::hint::black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600));
    targets = bench_fig13
}
criterion_main!(benches);
