//! Criterion bench for the columnar physical layer: the same compiled
//! plan executed row-at-a-time vs vectorized over interned columns and
//! lazily built secondary indexes. The acceptance bars — columnar ≥ 5×
//! row on the wide text join in release (`repro columns`), ≥ 2× in the
//! tier-1 debug gate (`columnar_wide_text_join_at_least_2x_row`) — are
//! enforced elsewhere; this bench times the same arms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use eve_bench::experiments::columns;
use eve_relational::exec::{execute_with, ExecMode};
use eve_system::query::plan_view;

fn bench_columns(c: &mut Criterion) {
    let mut group = c.benchmark_group("columns");
    for workload in columns::workloads().unwrap() {
        let plan = plan_view(&workload.view, &workload.extents, &workload.stats).unwrap();
        group.bench_with_input(BenchmarkId::new("row", &workload.name), &plan, |b, plan| {
            b.iter(|| {
                let out = execute_with(plan, ExecMode::RowOriented).unwrap();
                std::hint::black_box(out.cardinality())
            });
        });
        group.bench_with_input(
            BenchmarkId::new("columnar", &workload.name),
            &plan,
            |b, plan| {
                b.iter(|| {
                    let out = execute_with(plan, ExecMode::Columnar).unwrap();
                    std::hint::black_box(out.cardinality())
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600));
    targets = bench_columns
}
criterion_main!(benches);
