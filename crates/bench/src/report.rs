//! Canonical text renderings of the paper tables the `repro` binary
//! prints, plus machine-readable `BENCH_*.json` perf reports.
//!
//! The tables are shared between `repro` and the golden-file regression
//! tests (`tests/reproduction.rs` + `tests/golden/`), so a pipeline
//! refactor that drifts a digit — or even a column width — fails the build
//! instead of silently rewriting history.
//!
//! The JSON side ([`Json`], [`write_bench_json`]) carries the wall-clock
//! bench trajectory (`repro batch`, `repro view-exec`) in a form CI can
//! upload and diff; it is hand-rolled because the workspace builds without
//! registry access (no serde).

use std::path::PathBuf;

use crate::experiments::{exp4_cardinality, exp5_workload};
use crate::table::{num, TextTable};

/// A minimal JSON value for perf reports.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object fields.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Renders the value as compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Num(v) if v.is_finite() => out.push_str(&format!("{v}")),
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        #[allow(clippy::cast_precision_loss)]
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        #[allow(clippy::cast_precision_loss)]
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// Writes `value` to `BENCH_{name}.json` and returns the path. The target
/// directory is `$BENCH_REPORT_DIR` when set, the current directory
/// otherwise.
///
/// # Errors
///
/// Filesystem failures.
pub fn write_bench_json(name: &str, value: &Json) -> std::io::Result<PathBuf> {
    let dir = std::env::var_os("BENCH_REPORT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    write_bench_json_to(&dir, name, value)
}

/// [`write_bench_json`] with an explicit target directory.
///
/// # Errors
///
/// Filesystem failures.
pub fn write_bench_json_to(
    dir: &std::path::Path,
    name: &str,
    value: &Json,
) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, value.render() + "\n")?;
    Ok(path)
}

/// Table 4 (Experiment 4, case ρ_quality = 0.9 / ρ_cost = 0.1) exactly as
/// `repro exp4` prints it.
///
/// # Errors
///
/// QC-Model failures while reproducing the experiment.
pub fn table4_text() -> eve_qc::Result<String> {
    let mut t = TextTable::new(&[
        "rewriting",
        "DD_attr",
        "DD_ext",
        "DD",
        "cost",
        "cost*",
        "QC",
        "rating",
    ]);
    for r in exp4_cardinality::table4(0.9, 0.1)? {
        t.row(vec![
            r.rewriting,
            num(r.dd_attr, 4),
            num(r.dd_ext, 4),
            num(r.dd, 4),
            num(r.cost, 1),
            num(r.normalized_cost, 2),
            num(r.qc, 5),
            r.rating.to_string(),
        ]);
    }
    Ok(t.render())
}

/// Table 6 (Experiment 5, workload model M3 with u = 10 updates per IS)
/// exactly as `repro exp5` prints it.
#[must_use]
pub fn table6_text() -> String {
    let mut t = TextTable::new(&["sites", "#updates", "CF_M", "CF_T", "CF_IO"]);
    for r in exp5_workload::table6(10.0) {
        t.row(vec![
            r.sites.to_string(),
            num(r.updates, 0),
            num(r.cf_m, 0),
            num(r.cf_t, 0),
            num(r.cf_io, 0),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_is_valid_and_ordered() {
        let v = Json::obj(vec![
            ("name", "view_exec".into()),
            ("speedup", Json::Num(3.25)),
            ("ok", Json::Bool(true)),
            ("rows", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
            ("quote", "a\"b\\c\nd".into()),
            ("nan", Json::Num(f64::NAN)),
        ]);
        assert_eq!(
            v.render(),
            "{\"name\":\"view_exec\",\"speedup\":3.25,\"ok\":true,\
             \"rows\":[1,2],\"quote\":\"a\\\"b\\\\c\\nd\",\"nan\":null}"
        );
    }

    #[test]
    fn bench_json_writes_to_report_dir() {
        let dir = std::env::temp_dir().join(format!("eve-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = write_bench_json_to(&dir, "unit_test", &Json::obj(vec![("x", Json::Num(1.0))]))
            .unwrap();
        assert_eq!(path, dir.join("BENCH_unit_test.json"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"x\":1}\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn renderings_are_nonempty_and_tabular() {
        let t4 = table4_text().unwrap();
        assert!(t4.lines().count() >= 7, "{t4}"); // header + rule + 5 rows
        assert!(t4.contains("rating"));
        let t6 = table6_text();
        assert!(t6.lines().count() >= 8, "{t6}"); // header + rule + 6 rows
        assert!(t6.contains("CF_IO"));
    }
}
