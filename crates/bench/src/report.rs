//! Canonical text renderings of the paper tables the `repro` binary
//! prints.
//!
//! Shared between `repro` and the golden-file regression tests
//! (`tests/reproduction.rs` + `tests/golden/`), so a pipeline refactor that
//! drifts a digit — or even a column width — fails the build instead of
//! silently rewriting history.

use crate::experiments::{exp4_cardinality, exp5_workload};
use crate::table::{num, TextTable};

/// Table 4 (Experiment 4, case ρ_quality = 0.9 / ρ_cost = 0.1) exactly as
/// `repro exp4` prints it.
///
/// # Errors
///
/// QC-Model failures while reproducing the experiment.
pub fn table4_text() -> eve_qc::Result<String> {
    let mut t = TextTable::new(&[
        "rewriting",
        "DD_attr",
        "DD_ext",
        "DD",
        "cost",
        "cost*",
        "QC",
        "rating",
    ]);
    for r in exp4_cardinality::table4(0.9, 0.1)? {
        t.row(vec![
            r.rewriting,
            num(r.dd_attr, 4),
            num(r.dd_ext, 4),
            num(r.dd, 4),
            num(r.cost, 1),
            num(r.normalized_cost, 2),
            num(r.qc, 5),
            r.rating.to_string(),
        ]);
    }
    Ok(t.render())
}

/// Table 6 (Experiment 5, workload model M3 with u = 10 updates per IS)
/// exactly as `repro exp5` prints it.
#[must_use]
pub fn table6_text() -> String {
    let mut t = TextTable::new(&["sites", "#updates", "CF_M", "CF_T", "CF_IO"]);
    for r in exp5_workload::table6(10.0) {
        t.row(vec![
            r.sites.to_string(),
            num(r.updates, 0),
            num(r.cf_m, 0),
            num(r.cf_t, 0),
            num(r.cf_io, 0),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renderings_are_nonempty_and_tabular() {
        let t4 = table4_text().unwrap();
        assert!(t4.lines().count() >= 7, "{t4}"); // header + rule + 5 rows
        assert!(t4.contains("rating"));
        let t6 = table6_text();
        assert!(t6.lines().count() >= 8, "{t6}"); // header + rule + 6 rows
        assert!(t6.contains("CF_IO"));
    }
}
