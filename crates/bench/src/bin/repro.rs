//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [exp1|exp2|exp3|exp4|exp5|heuristics|validate|all]
//! ```

use eve_bench::experiments::{
    batch_pipeline, columns, durability, exp1_survival, exp2_sites, exp3_distribution,
    exp4_cardinality, exp5_workload, heuristics, observe, parallel, search_space, serve,
    strategy_regret, validation, view_exec,
};
use eve_bench::report::{write_bench_json, Json};
use eve_bench::table::{num, TextTable};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let run_all = arg == "all";
    let mut ran = false;
    if run_all || arg == "exp1" {
        exp1();
        ran = true;
    }
    if run_all || arg == "exp2" {
        exp2();
        ran = true;
    }
    if run_all || arg == "exp3" {
        exp3();
        ran = true;
    }
    if run_all || arg == "exp4" {
        exp4();
        ran = true;
    }
    if run_all || arg == "exp5" {
        exp5();
        ran = true;
    }
    if run_all || arg == "heuristics" {
        heuristics_report();
        ran = true;
    }
    if run_all || arg == "validate" {
        validate();
        ran = true;
    }
    if run_all || arg == "regret" {
        regret();
        ran = true;
    }
    // Wall-clock-dependent, so not part of `all` (keeps `all` output
    // deterministic for the golden-file regression tests). These emit
    // machine-readable BENCH_*.json perf reports alongside the tables.
    if arg == "batch" {
        batch();
        ran = true;
    }
    if arg == "view-exec" || arg == "view_exec" {
        view_exec_report();
        ran = true;
    }
    if arg == "columns" {
        columns_report();
        ran = true;
    }
    if arg == "parallel" {
        parallel_report();
        ran = true;
    }
    if arg == "search" || arg == "search-space" || arg == "search_space" {
        search_report();
        ran = true;
    }
    if arg == "durability" {
        durability_report();
        ran = true;
    }
    if arg == "serve" {
        serve_report();
        ran = true;
    }
    if arg == "observe" {
        observe_report();
        ran = true;
    }
    if !ran {
        eprintln!("unknown experiment `{arg}`");
        eprintln!(
            "usage: repro [exp1|exp2|exp3|exp4|exp5|heuristics|validate|regret|batch|view-exec|columns|parallel|search|durability|serve|observe|all]"
        );
        std::process::exit(2);
    }
}

fn heading(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn exp1() {
    heading("Experiment 1 — Survival of a View (Figure 12)");
    let mut t = TextTable::new(&["step", "change", "choice (w1 > w2)", "choice (w2 > w1)"]);
    for (i, step) in exp1_survival::figure12().iter().enumerate() {
        t.row(vec![
            (i + 1).to_string(),
            step.change.clone(),
            step.choice_w1.clone().unwrap_or_else(|| "† dead".into()),
            step.choice_w2.clone().unwrap_or_else(|| "† dead".into()),
        ]);
    }
    println!("{}", t.render());
    println!("Survival sweep (changes survived vs replication factor):");
    let mut t = TextTable::new(&["replicas", "survived (w1 > w2)", "survived (w2 > w1)"]);
    for row in exp1_survival::survival_sweep(4) {
        t.row(vec![
            row.replicas.to_string(),
            row.survived_w1.to_string(),
            row.survived_w2.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn exp2() {
    heading("Experiment 2 — Relations vs ISs (Tables 1–2, Figure 13)");
    println!("Table 1 parameters: n=6, |R|=400, s=100, σ=0.5, js=0.005, bfr=10\n");
    println!("Table 2 distribution counts:");
    let mut t = TextTable::new(&["sites (m)", "#distributions", "examples"]);
    for (m, dists) in exp2_sites::table2(6) {
        let examples = dists
            .iter()
            .take(3)
            .map(|d| {
                format!(
                    "({})",
                    d.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                )
            })
            .collect::<Vec<_>>()
            .join(" ");
        t.row(vec![
            m.to_string(),
            dists.len().to_string(),
            examples + " …",
        ]);
    }
    println!("{}", t.render());
    println!("Figure 13 — per-update cost factors (averaged over distributions):");
    let mut t = TextTable::new(&[
        "sites (m)",
        "CF_M (messages)",
        "CF_T (bytes)",
        "CF_IO (lower)",
        "CF_IO (upper)",
    ]);
    for row in exp2_sites::figure13(&exp2_sites::Table1::default()) {
        t.row(vec![
            row.sites.to_string(),
            num(row.messages, 1),
            num(row.bytes, 0),
            num(row.io_lower, 0),
            num(row.io_upper, 0),
        ]);
    }
    println!("{}", t.render());
    println!("Paper shape: messages and bytes increase with m; I/O stays flat (§7.2).");

    println!("\nSensitivity (extension) — avg CF_T by m under varied js and |R|:");
    let mut t = TextTable::new(&["js", "|R|", "m=1", "m=2", "m=3", "m=4", "m=5", "m=6"]);
    for row in exp2_sites::sensitivity(&[0.001, 0.005], &[100.0, 400.0, 1600.0]) {
        let mut cells = vec![format!("{}", row.js), num(row.cardinality, 0)];
        cells.extend(row.bytes_by_sites.iter().map(|b| num(*b, 0)));
        t.row(cells);
    }
    println!("{}", t.render());
}

fn exp3() {
    heading("Experiment 3 — Relation Distribution (Figure 14)");
    for js in exp3_distribution::FIG14_JS {
        println!("\nFigure 14, js = {js}:");
        let mut t = TextTable::new(&[
            "sites",
            "distribution",
            "best CF_T",
            "worst CF_T",
            "avg CF_T",
        ]);
        for g in exp3_distribution::figure14(js) {
            t.row(vec![
                g.sites.to_string(),
                g.label,
                num(g.best, 1),
                num(g.worst, 1),
                num(g.average, 1),
            ]);
        }
        println!("{}", t.render());
    }
    println!("Paper shape: js=0.005 favours even distributions, js=0.001 favours skew (§7.3).");
}

fn exp4() {
    heading("Experiment 4 — Relation Cardinality (Tables 3–4, Figure 15)");
    println!("Table 3 cardinalities:");
    let mut t = TextTable::new(&["relation", "cardinality"]);
    for (name, card) in exp4_cardinality::TABLE3 {
        t.row(vec![name.to_owned(), card.to_string()]);
    }
    println!("{}", t.render());
    println!("Table 4 — ranking under case 1 (ρ_quality=0.9, ρ_cost=0.1):");
    match eve_bench::report::table4_text() {
        Ok(text) => println!("{text}"),
        Err(e) => println!("error: {e}"),
    }
    println!("Figure 15 — QC per rewriting across the trade-off cases:");
    let mut t = TextTable::new(&[
        "rewriting",
        "case 1 (0.9/0.1)",
        "case 2 (0.75/0.25)",
        "case 3 (0.5/0.5)",
    ]);
    match exp4_cardinality::figure15() {
        Ok(rows) => {
            for (name, qcs) in rows {
                t.row(vec![name, num(qcs[0], 5), num(qcs[1], 5), num(qcs[2], 5)]);
            }
            println!("{}", t.render());
        }
        Err(e) => println!("error: {e}"),
    }
    println!("Paper values (Table 4): QC = 0.9325, 0.94125, 0.95, 0.898, 0.855; V3 best in case 1, V1 in cases 2–3.");
}

fn exp5() {
    heading("Experiment 5 — Workload Models (Tables 5–6, Figure 16)");
    println!("Table 5 — workload model M1 (1 update per 100 tuples):");
    let mut t = TextTable::new(&[
        "rewriting",
        "DD",
        "cost/update",
        "#updates",
        "cost*",
        "QC",
        "rating",
    ]);
    match exp5_workload::table5() {
        Ok(rows) => {
            for r in rows {
                t.row(vec![
                    r.rewriting,
                    num(r.dd, 4),
                    num(r.cost, 1),
                    num(r.updates, 0),
                    num(r.normalized_cost, 2),
                    num(r.qc, 5),
                    r.rating.to_string(),
                ]);
            }
            println!("{}", t.render());
        }
        Err(e) => println!("error: {e}"),
    }
    println!("Table 6 / Figure 16 — workload model M3 (u = 10 updates per IS):");
    println!("{}", eve_bench::report::table6_text());
    println!("Paper values (Table 6): 30/92/186/312/470/660; 8000..216000; 310..1860 — reproduced exactly.");
}

fn heuristics_report() {
    heading("§7.6 — Heuristics validated against the model");
    match heuristics::all_checks() {
        Ok(checks) => {
            let mut t = TextTable::new(&["heuristic", "holds", "evidence"]);
            for c in checks {
                t.row(vec![
                    c.name,
                    if c.holds { "yes" } else { "NO" }.into(),
                    c.evidence,
                ]);
            }
            println!("{}", t.render());
        }
        Err(e) => println!("error: {e}"),
    }
}

fn validate() {
    heading("Validation — analytic model vs executed system (extension)");
    println!("Measured (Algorithm 1 on exact-statistics data) vs analytic cost factors:");
    match validation::validate_costs() {
        Ok(rows) => {
            let mut t = TextTable::new(&[
                "distribution",
                "msgs measured",
                "msgs analytic",
                "bytes measured",
                "bytes analytic",
                "io measured",
                "io analytic",
            ]);
            for r in rows {
                t.row(vec![
                    r.distribution,
                    num(r.messages.0, 0),
                    num(r.messages.1, 0),
                    num(r.bytes.0, 0),
                    num(r.bytes.1, 0),
                    num(r.io.0, 0),
                    num(r.io.1, 0),
                ]);
            }
            println!("{}", t.render());
        }
        Err(e) => println!("error: {e}"),
    }
    println!("Estimated vs measured extent divergence on a materialized containment chain:");
    match validation::validate_quality(42) {
        Ok(rows) => {
            let mut t = TextTable::new(&["substitute", "DD_ext estimated", "DD_ext measured"]);
            for r in rows {
                t.row(vec![r.substitute, num(r.estimated, 4), num(r.measured, 4)]);
            }
            println!("{}", t.render());
        }
        Err(e) => println!("error: {e}"),
    }
    println!("Full recomputation vs one incremental update (bytes shipped):");
    match validation::recompute_vs_incremental() {
        Ok(rows) => {
            let mut t = TextTable::new(&["distribution", "recompute bytes", "incremental bytes"]);
            for r in rows {
                t.row(vec![
                    r.distribution,
                    r.recompute_bytes.to_string(),
                    r.incremental_bytes.to_string(),
                ]);
            }
            println!("{}", t.render());
        }
        Err(e) => println!("error: {e}"),
    }
}

fn batch() {
    heading("Batched multi-site pipeline vs op-by-op application (extension)");
    let mut t = TextTable::new(&[
        "sites",
        "ops",
        "sequential ms",
        "batched ms",
        "speedup",
        "max width",
        "I/O",
        "messages",
        "analytic cost",
    ]);
    let mut json_rows = Vec::new();
    for (sites, ops) in [(10u32, 50usize), (25, 100), (50, 200)] {
        match batch_pipeline::compare(sites, ops, 2024) {
            Ok(r) => {
                t.row(vec![
                    r.sites.to_string(),
                    r.ops.to_string(),
                    num(r.sequential_ms, 1),
                    num(r.batched_ms, 1),
                    format!("{:.1}x", r.speedup),
                    r.max_width.to_string(),
                    r.total_io.to_string(),
                    r.total_messages.to_string(),
                    num(r.analytic_cost, 0),
                ]);
                json_rows.push(Json::obj(vec![
                    ("sites", u64::from(r.sites).into()),
                    ("ops", r.ops.into()),
                    ("sequential_ms", r.sequential_ms.into()),
                    ("batched_ms", r.batched_ms.into()),
                    ("speedup", r.speedup.into()),
                    ("max_width", r.max_width.into()),
                    ("total_io", r.total_io.into()),
                    ("total_messages", r.total_messages.into()),
                    ("analytic_cost", r.analytic_cost.into()),
                ]));
            }
            Err(e) => {
                // Divergence between the arms (or any engine failure) must
                // fail the invocation — CI relies on the exit code.
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("{}", t.render());
    println!("Both arms are asserted to reach identical extents, verdicts and measured costs.");
    emit_json(
        "batch_pipeline",
        Json::obj(vec![
            ("bench", "batch_pipeline".into()),
            ("gate", Json::obj(vec![("min_speedup", Json::Num(2.0))])),
            ("rows", Json::Arr(json_rows)),
        ]),
    );
}

fn view_exec_report() {
    heading("Cost-ordered planner vs naive evaluator (extension)");
    let mut t = TextTable::new(&[
        "workload",
        "rels",
        "naive ms",
        "planned ms",
        "speedup",
        "est rows",
        "actual rows",
        "est IO",
        "analytic IO",
        "est cost",
    ]);
    let mut json_rows = Vec::new();
    // A planned-vs-naive bag divergence surfaces as Err from compare();
    // it must fail the invocation — CI relies on the exit code.
    let rows = view_exec::compare(3).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            r.relations.to_string(),
            num(r.naive_ms, 2),
            num(r.planned_ms, 2),
            format!("{:.1}x", r.speedup),
            num(r.est_rows, 0),
            r.actual_rows.to_string(),
            num(r.est_io_blocks, 0),
            num(r.analytic_io, 0),
            num(r.est_total, 0),
        ]);
        json_rows.push(Json::obj(vec![
            ("workload", r.workload.into()),
            ("relations", r.relations.into()),
            ("naive_ms", r.naive_ms.into()),
            ("planned_ms", r.planned_ms.into()),
            ("speedup", r.speedup.into()),
            ("est_rows", r.est_rows.into()),
            ("actual_rows", r.actual_rows.into()),
            ("est_io_blocks", r.est_io_blocks.into()),
            ("analytic_io", r.analytic_io.into()),
            ("est_total", r.est_total.into()),
        ]));
    }
    println!("{}", t.render());
    println!(
        "Both arms are asserted to produce identical bags; planner scan I/O \
         coincides with eve-core's analytic recompute I/O."
    );
    emit_json(
        "view_exec",
        Json::obj(vec![
            ("bench", "view_exec".into()),
            (
                "gate",
                Json::obj(vec![
                    ("workload", "wide_join".into()),
                    ("min_speedup", Json::Num(3.0)),
                ]),
            ),
            ("rows", Json::Arr(json_rows)),
        ]),
    );
}

fn columns_report() {
    heading("Columnar execution vs the row-oriented baseline (extension)");
    let mut t = TextTable::new(&[
        "workload",
        "row ms",
        "columnar ms",
        "speedup",
        "rows out",
        "idx scans",
        "idx builds",
        "idx hits",
    ]);
    let mut json_rows = Vec::new();
    // A row/columnar byte-divergence surfaces as Err from compare(); it
    // must fail the invocation — CI relies on the exit code.
    let rows = columns::compare(5).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let mut wide_speedup = f64::INFINITY;
    let mut star_index_hits = u64::MAX;
    for r in rows {
        if r.workload.starts_with("wide_text_join") {
            wide_speedup = r.speedup;
        }
        if r.workload.starts_with("star_text") {
            star_index_hits = r.index.hits;
        }
        t.row(vec![
            r.workload.clone(),
            num(r.row_ms, 2),
            num(r.columnar_ms, 2),
            format!("{:.1}x", r.speedup),
            r.rows_out.to_string(),
            r.index_scans.to_string(),
            r.index.builds.to_string(),
            r.index.hits.to_string(),
        ]);
        json_rows.push(Json::obj(vec![
            ("workload", r.workload.into()),
            ("row_ms", r.row_ms.into()),
            ("columnar_ms", r.columnar_ms.into()),
            ("speedup", r.speedup.into()),
            ("rows_out", r.rows_out.into()),
            ("index_scans", u64::from(r.index_scans).into()),
            ("index_builds", r.index.builds.into()),
            ("index_hits", r.index.hits.into()),
        ]));
    }
    println!("{}", t.render());
    println!(
        "Both arms execute the SAME plan and are asserted byte-identical \
         (order included); the columnar arm reads interned u64 join keys \
         from the cached batch and probes lazily built secondary indexes."
    );

    if wide_speedup < 5.0 || star_index_hits == 0 {
        eprintln!(
            "error: columns gate failed (wide_text_join speedup {wide_speedup:.2}x < 5x \
             or star_text index hits = {star_index_hits})"
        );
        std::process::exit(1);
    }

    emit_json(
        "columns",
        Json::obj(vec![
            ("bench", "columns".into()),
            (
                "gate",
                Json::obj(vec![
                    ("workload", "wide_text_join".into()),
                    ("min_speedup", Json::Num(5.0)),
                ]),
            ),
            ("rows", Json::Arr(json_rows)),
        ]),
    );
}

fn parallel_report() {
    heading("Morsel-driven parallel columnar execution vs serial (extension)");
    let mut t = TextTable::new(&[
        "workload",
        "threads",
        "ms",
        "speedup",
        "morsels",
        "steals",
        "partitions",
    ]);
    let mut json_rows = Vec::new();
    // A serial/parallel byte-divergence surfaces as Err from compare();
    // it must fail the invocation — CI relies on the exit code.
    let rows = parallel::compare(5).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut wide_speedup_8 = f64::INFINITY;
    let mut wide_modeled_8 = f64::INFINITY;
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            "serial".into(),
            num(r.serial_ms, 2),
            "1.0x".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        let mut json_arms = Vec::new();
        for a in &r.arms {
            if r.workload.starts_with("wide_text_join") && a.threads == 8 {
                wide_speedup_8 = a.speedup;
            }
            t.row(vec![
                r.workload.clone(),
                a.threads.to_string(),
                num(a.ms, 2),
                format!("{:.1}x", a.speedup),
                a.morsels.to_string(),
                a.steals.to_string(),
                a.partitions.to_string(),
            ]);
            json_arms.push(Json::obj(vec![
                ("threads", a.threads.into()),
                ("ms", a.ms.into()),
                ("speedup", a.speedup.into()),
                ("morsels", a.morsels.into()),
                ("steals", a.steals.into()),
                ("partitions", a.partitions.into()),
            ]));
        }
        if r.workload.starts_with("wide_text_join") {
            wide_modeled_8 = r.modeled_ratio_8;
        }
        json_rows.push(Json::obj(vec![
            ("workload", r.workload.into()),
            ("serial_ms", r.serial_ms.into()),
            ("rows_out", r.rows_out.into()),
            ("modeled_ratio_8", r.modeled_ratio_8.into()),
            ("arms", Json::Arr(json_arms)),
        ]));
    }
    println!("{}", t.render());
    println!(
        "Every parallel arm executes the SAME plan and is asserted \
         byte-identical (order included) to serial columnar: morsels are \
         fixed row ranges merged back in morsel order, and partitioned \
         hash-join builds drain their buckets in morsel order."
    );

    // The modeled ratio is machine-independent; the wall-clock gate only
    // means something when the machine actually has the 8 cores the arm
    // asks for, so it is enforced on >= 8-core machines only.
    if wide_modeled_8 < 1.5 {
        eprintln!(
            "error: parallel gate failed (modeled 8-worker ratio \
             {wide_modeled_8:.2}x < 1.5x on wide_text_join)"
        );
        std::process::exit(1);
    }
    if cores >= 8 && wide_speedup_8 < 3.0 {
        eprintln!(
            "error: parallel gate failed (wide_text_join speedup \
             {wide_speedup_8:.2}x < 3x at 8 threads on a {cores}-core machine)"
        );
        std::process::exit(1);
    }
    if cores < 8 {
        println!(
            "note: wall-clock >=3x gate skipped on this {cores}-core machine \
             (needs >= 8 cores); byte-identity and the modeled >=1.5x gate \
             were enforced."
        );
    }

    emit_json(
        "parallel",
        Json::obj(vec![
            ("bench", "parallel".into()),
            ("cores", cores.into()),
            (
                "gate",
                Json::obj(vec![
                    ("workload", "wide_text_join".into()),
                    ("min_speedup_at_8_threads", Json::Num(3.0)),
                    ("min_modeled_ratio_8", Json::Num(1.5)),
                    ("wall_clock_enforced", Json::Bool(cores >= 8)),
                ]),
            ),
            ("rows", Json::Arr(json_rows)),
        ]),
    );
}

fn search_report() {
    heading("QC-bounded branch-and-bound vs exhaustive enumeration (extension)");
    let mut t = TextTable::new(&[
        "partners",
        "bindings",
        "exh. rewritings",
        "exh. candidates",
        "exh. ms",
        "b&b candidates",
        "b&b ms",
        "pruning",
        "speedup",
        "regret",
    ]);
    let mut json_rows = Vec::new();
    // A zero-regret violation (or any search failure) must fail the
    // invocation — CI relies on the exit code.
    let rows = search_space::compare(3).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    for r in &rows {
        if r.regret.abs() > 1e-9 {
            eprintln!(
                "error: nonzero regret {} on {}x{} — the QC bound is no longer admissible",
                r.regret, r.partners, r.bindings
            );
            std::process::exit(1);
        }
    }
    for r in rows {
        t.row(vec![
            r.partners.to_string(),
            r.bindings.to_string(),
            r.exhaustive_rewritings.to_string(),
            r.exhaustive_candidates.to_string(),
            num(r.exhaustive_ms, 2),
            r.best_first_candidates.to_string(),
            num(r.best_first_ms, 2),
            format!("{:.1}x", r.pruning_ratio),
            format!("{:.1}x", r.speedup),
            num(r.regret, 6),
        ]);
        json_rows.push(Json::obj(vec![
            ("partners", r.partners.into()),
            ("bindings", r.bindings.into()),
            ("exhaustive_rewritings", r.exhaustive_rewritings.into()),
            ("exhaustive_candidates", r.exhaustive_candidates.into()),
            ("exhaustive_ms", r.exhaustive_ms.into()),
            ("best_first_candidates", r.best_first_candidates.into()),
            ("best_first_ms", r.best_first_ms.into()),
            ("pruning_ratio", r.pruning_ratio.into()),
            ("speedup", r.speedup.into()),
            ("regret", r.regret.into()),
        ]));
    }
    println!("{}", t.render());
    println!(
        "The branch-and-bound arm's first emission attains QC-best badness \
         (regret 0) while materializing the reported fraction of the \
         exhaustive candidate space."
    );
    emit_json(
        "search_space",
        Json::obj(vec![
            ("bench", "search_space".into()),
            (
                "gate",
                Json::obj(vec![
                    ("workload", "wide_mkb".into()),
                    ("min_pruning_ratio", Json::Num(5.0)),
                ]),
            ),
            ("rows", Json::Arr(json_rows)),
        ]),
    );
}

fn durability_report() {
    heading(
        "Durable evolution log: recovery throughput and snapshot-vs-replay crossover (extension)",
    );
    let mut t = TextTable::new(&[
        "snapshot every",
        "batches",
        "ops",
        "append ms",
        "append ops/s",
        "log KiB",
        "snap KiB",
        "recovery ms",
        "replayed",
        "recovery ops/s",
        "identical",
    ]);
    let mut json_rows = Vec::new();
    // Any recovered-state divergence (or engine/store failure) must fail
    // the invocation — CI relies on the exit code.
    let report = durability::compare(10, 200, 8, 2024).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    if !report.torn_tail_recovered {
        eprintln!("error: torn-tail recovery check failed");
        std::process::exit(1);
    }
    for r in &report.rows {
        let every = r
            .snapshot_every
            .map_or_else(|| "never".to_owned(), |k| k.to_string());
        t.row(vec![
            every.clone(),
            r.batches.to_string(),
            r.ops.to_string(),
            num(r.append_ms, 1),
            num(r.append_ops_per_s, 0),
            num(r.log_bytes as f64 / 1024.0, 1),
            num(r.snapshot_bytes as f64 / 1024.0, 1),
            num(r.recovery_ms, 2),
            r.replayed_records.to_string(),
            num(r.recovery_ops_per_s, 0),
            if r.identical { "yes" } else { "NO" }.into(),
        ]);
        json_rows.push(Json::obj(vec![
            ("snapshot_every", Json::Str(every)),
            ("batches", r.batches.into()),
            ("ops", r.ops.into()),
            ("append_ms", r.append_ms.into()),
            ("append_ops_per_s", r.append_ops_per_s.into()),
            ("log_bytes", r.log_bytes.into()),
            ("snapshot_bytes", r.snapshot_bytes.into()),
            ("recovery_ms", r.recovery_ms.into()),
            ("replayed_records", r.replayed_records.into()),
            ("recovery_ops_per_s", r.recovery_ops_per_s.into()),
            ("identical", Json::Bool(r.identical)),
        ]));
    }
    println!("{}", t.render());
    println!(
        "Every arm is crash-recovered (snapshot + log-tail replay through the live \
         apply_batch pipeline) and asserted byte-identical to the uncrashed engine; \
         the torn-tail smoke truncated a partial frame and recovered cleanly."
    );

    heading("Durable append throughput: fsync-per-record vs the group-commit writer");
    let append = durability::append_throughput(2_000, 8).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let mut at = TextTable::new(&[
        "mode",
        "threads",
        "records",
        "wall ms",
        "records/s",
        "fsyncs",
        "records/fsync",
        "speedup",
        "recovered",
    ]);
    let mut append_rows = Vec::new();
    for r in &append.rows {
        at.row(vec![
            r.mode.to_owned(),
            r.threads.to_string(),
            r.records.to_string(),
            num(r.wall_ms, 1),
            num(r.records_per_s, 0),
            r.fsyncs.to_string(),
            num(r.records_per_fsync, 1),
            format!("{:.1}x", r.speedup_vs_baseline),
            if r.recovered_identical { "yes" } else { "NO" }.into(),
        ]);
        append_rows.push(Json::obj(vec![
            ("mode", Json::Str(r.mode.to_owned())),
            ("threads", r.threads.into()),
            ("records", r.records.into()),
            ("wall_ms", r.wall_ms.into()),
            ("records_per_s", r.records_per_s.into()),
            ("fsyncs", r.fsyncs.into()),
            ("records_per_fsync", r.records_per_fsync.into()),
            ("speedup_vs_baseline", r.speedup_vs_baseline.into()),
            ("recovered_identical", Json::Bool(r.recovered_identical)),
        ]));
    }
    println!("{}", at.render());
    let group = append.rows.last().expect("group-commit arm");
    let amortization_ok =
        group.records_per_fsync >= 10.0 && append.rows.iter().all(|r| r.recovered_identical);
    println!(
        "Group commit at {} threads acknowledged {:.1} records per fsync \
         ({}x the fsync-per-record baseline); every arm crash-recovered its \
         exact acknowledged record set.",
        group.threads,
        group.records_per_fsync,
        num(group.records_per_fsync, 0)
    );
    if !amortization_ok {
        eprintln!(
            "error: group-commit gate failed (need >=10 records/fsync and \
             identical recovery, got {:.1})",
            group.records_per_fsync
        );
        std::process::exit(1);
    }

    emit_json(
        "durability",
        Json::obj(vec![
            ("bench", "durability".into()),
            (
                "gate",
                Json::obj(vec![
                    ("byte_identical", Json::Bool(true)),
                    (
                        "torn_tail_recovered",
                        Json::Bool(report.torn_tail_recovered),
                    ),
                    (
                        "group_commit_records_per_fsync",
                        group.records_per_fsync.into(),
                    ),
                    ("group_commit_amortization_ok", Json::Bool(amortization_ok)),
                ]),
            ),
            ("rows", Json::Arr(json_rows)),
            ("append_rows", Json::Arr(append_rows)),
        ]),
    );
}

fn serve_report() {
    heading("Multi-tenant serving layer: concurrent sessions vs a serial oracle (extension)");
    let cfg = serve::ServeConfig::default();
    // Any oracle divergence, typed error or transport failure must fail
    // the invocation — CI relies on the exit code.
    let report = serve::run(&cfg).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let mut t = TextTable::new(&["tenant", "writes", "view rows", "identical"]);
    let mut json_rows = Vec::new();
    for r in &report.rows {
        t.row(vec![
            r.tenant.clone(),
            r.writes.to_string(),
            r.view_rows.to_string(),
            if r.identical { "yes" } else { "NO" }.into(),
        ]);
        json_rows.push(Json::obj(vec![
            ("tenant", Json::Str(r.tenant.clone())),
            ("writes", r.writes.into()),
            ("view_rows", r.view_rows.into()),
            ("identical", Json::Bool(r.identical)),
        ]));
    }
    println!("{}", t.render());

    let writes: usize = report.rows.iter().map(|r| r.writes).sum();
    let reads = report.requests - writes;
    let mut lt = TextTable::new(&["class", "requests", "p50 us", "p99 us"]);
    lt.row(vec![
        "writer statements".into(),
        writes.to_string(),
        report.write_p50_us.to_string(),
        report.write_p99_us.to_string(),
    ]);
    lt.row(vec![
        "reader requests".into(),
        reads.to_string(),
        report.read_p50_us.to_string(),
        report.read_p99_us.to_string(),
    ]);
    lt.row(vec![
        "all (driver stopwatch)".into(),
        report.requests.to_string(),
        report.p50_us.to_string(),
        report.p99_us.to_string(),
    ]);
    // The quoted latency comes from the server's own per-request-type
    // histograms (`server.latency_us.*`), not the driver's stopwatch.
    lt.row(vec![
        "all (server histograms)".into(),
        report.server_latency.count().to_string(),
        report.server_p50_us.to_string(),
        report.server_p99_us.to_string(),
    ]);
    println!("{}", lt.render());
    println!(
        "{} sessions stayed concurrently open across {} tenants; {} requests drained in {} ms \
         ({} req/s) with {} typed errors; every tenant byte-identical to its serial oracle: {}.",
        report.clients,
        report.tenants,
        report.requests,
        num(report.elapsed_ms, 1),
        num(report.throughput_rps, 0),
        report.errors,
        if report.byte_identical { "yes" } else { "NO" },
    );

    if !report.byte_identical || report.errors != 0 || report.clients < 1000 || report.tenants < 8 {
        eprintln!(
            "error: serve gate failed (identical={}, errors={}, clients={}, tenants={})",
            report.byte_identical, report.errors, report.clients, report.tenants
        );
        std::process::exit(1);
    }

    emit_json(
        "serve",
        Json::obj(vec![
            ("tenants", report.tenants.into()),
            ("clients", report.clients.into()),
            ("requests", report.requests.into()),
            ("errors", report.errors.into()),
            ("byte_identical", Json::Bool(report.byte_identical)),
            ("elapsed_ms", report.elapsed_ms.into()),
            ("throughput_rps", report.throughput_rps.into()),
            // Headline quantiles are the server's own histogram readout;
            // the driver's stopwatch numbers ride along for comparison.
            ("p50_us", report.server_p50_us.into()),
            ("p99_us", report.server_p99_us.into()),
            ("driver_p50_us", report.p50_us.into()),
            ("driver_p99_us", report.p99_us.into()),
            ("write_p50_us", report.write_p50_us.into()),
            ("write_p99_us", report.write_p99_us.into()),
            ("read_p50_us", report.read_p50_us.into()),
            ("read_p99_us", report.read_p99_us.into()),
            ("rows", Json::Arr(json_rows)),
        ]),
    );
}

fn observe_report() {
    heading("Tracing overhead and determinism — eve-trace on the wide join (extension)");
    let cfg = observe::ObserveConfig::default();
    let report = observe::run(&cfg).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    let mut t = TextTable::new(&["workload", "arm", "wall ms", "per-site ns"]);
    t.row(vec![
        report.workload.clone(),
        "untraced (spans off)".into(),
        num(report.untraced_ms, 2),
        num(report.disabled_site_ns, 2),
    ]);
    t.row(vec![
        report.workload.clone(),
        "traced (spans on)".into(),
        num(report.traced_ms, 2),
        num(report.enabled_site_ns, 2),
    ]);
    if let (Some(off), Some(on)) = (report.serve_untraced_ms, report.serve_traced_ms) {
        t.row(vec![
            "serve (2×8 sessions)".into(),
            "untraced (spans off)".into(),
            num(off, 2),
            "-".into(),
        ]);
        t.row(vec![
            "serve (2×8 sessions)".into(),
            "traced (spans on)".into(),
            num(on, 2),
            "-".into(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "{} on {} rows: {} spans per run; projected disabled-path overhead {}% \
         (gate <= 5%); enabled-arm overhead {}%; extents byte-identical: {}; \
         exec-counter deltas deterministic: {}.",
        report.workload,
        report.rows,
        report.spans_per_run,
        num(report.projected_disabled_overhead_pct, 3),
        num(report.enabled_overhead_pct, 1),
        if report.extents_identical {
            "yes"
        } else {
            "NO"
        },
        if report.snapshot_deterministic {
            "yes"
        } else {
            "NO"
        },
    );

    if !report.extents_identical
        || !report.snapshot_deterministic
        || report.projected_disabled_overhead_pct > 5.0
        || report.spans_per_run == 0
    {
        eprintln!(
            "error: observe gate failed (identical={}, deterministic={}, overhead={}%, spans={})",
            report.extents_identical,
            report.snapshot_deterministic,
            report.projected_disabled_overhead_pct,
            report.spans_per_run
        );
        std::process::exit(1);
    }

    emit_json(
        "observe",
        Json::obj(vec![
            ("workload", Json::Str(report.workload.clone())),
            ("rows", report.rows.into()),
            ("untraced_ms", report.untraced_ms.into()),
            ("traced_ms", report.traced_ms.into()),
            ("enabled_overhead_pct", report.enabled_overhead_pct.into()),
            ("disabled_site_ns", report.disabled_site_ns.into()),
            ("enabled_site_ns", report.enabled_site_ns.into()),
            ("spans_per_run", report.spans_per_run.into()),
            (
                "projected_disabled_overhead_pct",
                report.projected_disabled_overhead_pct.into(),
            ),
            ("extents_identical", Json::Bool(report.extents_identical)),
            (
                "snapshot_deterministic",
                Json::Bool(report.snapshot_deterministic),
            ),
            // Non-finite numbers render as JSON null, so a skipped serve
            // arm shows up as null rather than a fake zero.
            (
                "serve_untraced_ms",
                report.serve_untraced_ms.unwrap_or(f64::NAN).into(),
            ),
            (
                "serve_traced_ms",
                report.serve_traced_ms.unwrap_or(f64::NAN).into(),
            ),
        ]),
    );
}

fn emit_json(name: &str, value: Json) {
    match write_bench_json(name, &value) {
        Ok(path) => println!("perf report written to {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_{name}.json: {e}"),
    }
}

fn regret() {
    heading("Strategy regret — QC-Model vs the pre-QC prototype (extension)");
    match strategy_regret::regret_report(60, 2024) {
        Ok(r) => {
            let names = [
                "QC-best",
                "first-found (old prototype)",
                "quality-only",
                "cost-only",
            ];
            let mut t = TextTable::new(&["strategy", "mean QC", "mean regret vs QC-best"]);
            for (i, name) in names.iter().enumerate() {
                t.row(vec![
                    (*name).to_owned(),
                    num(r.mean_qc[i], 4),
                    num(r.mean_regret[i], 4),
                ]);
            }
            println!("{}", t.render());
            println!(
                "first-found misses the best rewriting in {:.0}% of {} trials",
                100.0 * r.first_found_miss_rate,
                r.trials
            );
            println!(
                "heuristic synchronizer: {:.1} candidates generated vs {:.1} exhaustive; \
                 best rewriting retained in {:.0}% of trials",
                r.heuristic_candidates,
                r.exhaustive_candidates,
                100.0 * r.heuristic_hit_rate
            );
        }
        Err(e) => println!("error: {e}"),
    }
}
