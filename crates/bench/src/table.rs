//! Minimal text-table rendering for the `repro` binary.

/// A text table with a header row and aligned columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are padded/truncated to the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with column alignment and a separator rule.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `prec` decimals, trimming redundant precision for
/// whole numbers.
#[must_use]
pub fn num(v: f64, prec: usize) -> String {
    if (v.fract()).abs() < 1e-9 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.prec$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22222".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name   value");
        assert!(lines[1].starts_with("-----"));
        assert_eq!(lines[2], "alpha  1");
        assert_eq!(lines[3], "b      22222");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(vec!["x".into()]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn num_formatting() {
        assert_eq!(num(3.0, 3), "3");
        assert_eq!(num(0.9325, 4), "0.9325");
        assert_eq!(num(1.0 / 3.0, 2), "0.33");
    }
}
