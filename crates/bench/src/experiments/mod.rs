//! Experiment implementations, one module per §7 experiment.

pub mod batch_pipeline;
pub mod columns;
pub mod durability;
pub mod exp1_survival;
pub mod exp2_sites;
pub mod exp3_distribution;
pub mod exp4_cardinality;
pub mod exp5_workload;
pub mod heuristics;
pub mod observe;
pub mod parallel;
pub mod search_space;
pub mod serve;
pub mod strategy_regret;
pub mod validation;
pub mod view_exec;
