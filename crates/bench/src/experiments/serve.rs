//! Multi-tenant serving-layer load generator (extension; ROADMAP serving
//! direction).
//!
//! Workload shape: an [`eve_server::Server`] fronts one warehouse with
//! `tenants` independent durable stores; every tenant gets one *writer*
//! session streaming a deterministic statement script (schema, seeds, a
//! view definition, then update rounds) and `clients_per_tenant - 1`
//! *reader* sessions issuing view queries and budget-stat probes while
//! the writers run. All sessions are opened up front and stay live for
//! the whole run, so the server multiplexes ≥ 1000 concurrent clients
//! across its shard workers and reader pool.
//!
//! The correctness half is deterministic: after the load drains, every
//! tenant's engine fingerprint must be byte-identical to a serial oracle
//! — the same script applied through a plain [`Shell`] on a private
//! store — and the run must finish with zero typed errors. Wall-clock
//! p50/p99 latencies and throughput are reported but never gated, so the
//! tier-1 check stays machine-independent.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use eve_server::protocol::{RequestBody, ResponseBody};
use eve_server::warehouse::Warehouse;
use eve_server::{Client, Server, ServerConfig};
use eve_system::Shell;

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Independent tenants (one durable store each).
    pub tenants: usize,
    /// Sessions per tenant: one writer plus `clients_per_tenant - 1`
    /// readers.
    pub clients_per_tenant: usize,
    /// Update rounds per writer (each round is two insert statements).
    pub writer_rounds: usize,
    /// Requests each reader session issues (alternating view query and
    /// stats probe).
    pub reads_per_client: usize,
    /// Server mutation shards.
    pub shards: usize,
    /// Server read-pool workers.
    pub readers: usize,
    /// OS threads multiplexing the reader sessions.
    pub driver_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            tenants: 8,
            clients_per_tenant: 128,
            writer_rounds: 6,
            reads_per_client: 2,
            shards: 4,
            readers: 4,
            driver_threads: 16,
        }
    }
}

/// Per-tenant outcome.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// Tenant name.
    pub tenant: String,
    /// Statements the tenant's writer executed.
    pub writes: usize,
    /// Rows in the tenant's view after the load drained.
    pub view_rows: usize,
    /// Whether the tenant's engine fingerprint matched the serial oracle
    /// byte for byte.
    pub identical: bool,
}

/// The full serving report.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Tenants served.
    pub tenants: usize,
    /// Concurrently open client sessions.
    pub clients: usize,
    /// Requests issued after session setup (statements + reads).
    pub requests: usize,
    /// Typed error responses (the gate requires zero).
    pub errors: usize,
    /// Whether every tenant matched its serial oracle.
    pub byte_identical: bool,
    /// Wall-clock of the loaded phase, milliseconds.
    pub elapsed_ms: f64,
    /// Requests per second through the loaded phase.
    pub throughput_rps: f64,
    /// Overall request latency percentiles, microseconds.
    pub p50_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Writer-statement latency percentiles, microseconds.
    pub write_p50_us: u64,
    /// 99th percentile for writer statements, microseconds.
    pub write_p99_us: u64,
    /// Reader-request latency percentiles, microseconds.
    pub read_p50_us: u64,
    /// 99th percentile for reader requests, microseconds.
    pub read_p99_us: u64,
    /// Server-side p50, microseconds: the server's own per-request-type
    /// latency histograms (`server.latency_us.*`) merged, so the quoted
    /// quantile comes from what the server measured, not from the bench
    /// driver's stopwatch.
    pub server_p50_us: u64,
    /// Server-side 99th percentile, microseconds.
    pub server_p99_us: u64,
    /// The merged server-side latency histogram the quantiles came from
    /// (for bucket-level agreement checks against the driver's samples).
    pub server_latency: eve_trace::HistogramSnapshot,
    /// Per-tenant outcomes.
    pub rows: Vec<TenantOutcome>,
}

fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "eve-serve-bench-{}-{}-{tag}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The schema/seed prefix of a tenant's script: two sites, two relations,
/// seed rows and the join view the readers will query.
fn setup_script(salt: usize) -> Vec<String> {
    vec![
        "site 1 customers".to_owned(),
        "site 2 flights".to_owned(),
        "relation Customer @1 (Name:text, City:text)".to_owned(),
        "relation FlightRes @2 (PName:text, Dest:text)".to_owned(),
        format!("insert Customer ('seed{salt}', 'Boston')"),
        format!("insert FlightRes ('seed{salt}', 'Asia')"),
        "view CREATE VIEW V (VE = '~') AS SELECT C.Name FROM Customer C (RR = true), \
         FlightRes F WHERE (C.Name = F.PName) AND (F.Dest = 'Asia')"
            .to_owned(),
    ]
}

/// The update rounds a writer streams while the readers query.
fn update_script(salt: usize, rounds: usize) -> Vec<String> {
    let mut lines = Vec::with_capacity(rounds * 2);
    for i in 0..rounds {
        lines.push(format!("update FlightRes insert ('p{salt}-{i}', 'Asia')"));
        lines.push(format!("update Customer insert ('p{salt}-{i}', 'City{i}')"));
    }
    lines
}

fn tenant_name(index: usize) -> String {
    format!("tenant-{index:02}")
}

/// One thread's share of the load: latencies in microseconds plus the
/// typed-error count.
#[derive(Debug, Default)]
struct Tally {
    latencies_us: Vec<u64>,
    errors: usize,
}

impl Tally {
    fn timed(&mut self, client: &mut Client, body: RequestBody) {
        let start = Instant::now();
        let outcome = client.request(body);
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.latencies_us.push(us);
        match outcome {
            Ok(ResponseBody::Err { .. }) | Err(_) => self.errors += 1,
            Ok(_) => {}
        }
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let idx = (((sorted.len() - 1) as f64) * p).round() as usize;
    sorted[idx]
}

/// Runs the load generator and the serial-oracle comparison.
///
/// # Errors
///
/// A human-readable description of the first transport, engine or oracle
/// failure; the caller turns it into a non-zero exit for CI.
pub fn run(cfg: &ServeConfig) -> Result<ServeReport, String> {
    let root = scratch_dir("warehouse");
    let oracle_root = scratch_dir("oracle");
    std::fs::remove_dir_all(&root).ok();
    std::fs::remove_dir_all(&oracle_root).ok();

    let warehouse =
        Arc::new(Warehouse::open(&root).map_err(|e| format!("warehouse open failed: {e}"))?);
    let server = Server::start(
        warehouse,
        ServerConfig {
            shards: cfg.shards,
            readers: cfg.readers,
        },
    );

    // Open every session up front so the whole client population is
    // concurrently live before the first statement lands.
    let mut writers: Vec<Client> = Vec::with_capacity(cfg.tenants);
    let mut reader_pools: Vec<Vec<Client>> =
        (0..cfg.driver_threads.max(1)).map(|_| Vec::new()).collect();
    let mut clients = 0usize;
    for t in 0..cfg.tenants {
        let name = tenant_name(t);
        for c in 0..cfg.clients_per_tenant {
            let mut client = server
                .connect()
                .map_err(|e| format!("connect failed: {e}"))?;
            client
                .open_session(&name)
                .map_err(|e| format!("open_session({name}) failed: {e}"))?;
            clients += 1;
            if c == 0 {
                writers.push(client);
            } else {
                let slot = clients % reader_pools.len();
                reader_pools[slot].push(client);
            }
        }
    }

    let loaded = Instant::now();

    // Phase 1 — every writer lays down its tenant's schema and view so
    // the readers' queries always have a target. The sessions opened
    // above all stay live throughout.
    let mut setup_threads = Vec::new();
    for (t, mut writer) in writers.drain(..).enumerate() {
        setup_threads.push(std::thread::spawn(move || {
            let mut tally = Tally::default();
            for line in setup_script(t) {
                tally.timed(&mut writer, RequestBody::Statement { esql: line });
            }
            (writer, tally)
        }));
    }
    let mut write_lat = Vec::new();
    let mut errors = 0usize;
    let mut requests = 0usize;
    for handle in setup_threads {
        let (writer, tally) = handle.join().map_err(|_| "setup writer panicked")?;
        writers.push(writer);
        requests += tally.latencies_us.len();
        errors += tally.errors;
        write_lat.extend(tally.latencies_us);
    }

    // Phase 2 — writers stream their update rounds while every reader
    // session issues queries and stats probes concurrently.
    let mut load_threads = Vec::new();
    for (t, mut writer) in writers.drain(..).enumerate() {
        let rounds = cfg.writer_rounds;
        load_threads.push(std::thread::spawn(move || {
            let mut tally = Tally::default();
            for line in update_script(t, rounds) {
                tally.timed(&mut writer, RequestBody::Statement { esql: line });
            }
            (true, tally)
        }));
    }
    for mut pool in reader_pools {
        let reads = cfg.reads_per_client;
        load_threads.push(std::thread::spawn(move || {
            let mut tally = Tally::default();
            for r in 0..reads {
                for client in &mut pool {
                    let body = if r % 2 == 0 {
                        RequestBody::Query { view: "V".into() }
                    } else {
                        RequestBody::Stats
                    };
                    tally.timed(client, body);
                }
            }
            (false, tally)
        }));
    }
    let mut read_lat = Vec::new();
    for handle in load_threads {
        let (is_writer, tally) = handle.join().map_err(|_| "load thread panicked")?;
        requests += tally.latencies_us.len();
        errors += tally.errors;
        if is_writer {
            write_lat.extend(tally.latencies_us);
        } else {
            read_lat.extend(tally.latencies_us);
        }
    }

    let elapsed_ms = loaded.elapsed().as_secs_f64() * 1e3;
    #[allow(clippy::cast_precision_loss)]
    let throughput_rps = if elapsed_ms > 0.0 {
        requests as f64 / (elapsed_ms / 1e3)
    } else {
        0.0
    };

    // Serial oracle: the same script through a plain durable shell, one
    // tenant at a time, compared byte for byte.
    let mut rows = Vec::with_capacity(cfg.tenants);
    let mut byte_identical = true;
    for t in 0..cfg.tenants {
        let name = tenant_name(t);
        let mut oracle = Shell::new();
        oracle
            .execute(&format!("open {}", oracle_root.join(&name).display()))
            .map_err(|e| format!("oracle open({name}) failed: {e}"))?;
        let mut writes = 0usize;
        for line in setup_script(t)
            .into_iter()
            .chain(update_script(t, cfg.writer_rounds))
        {
            oracle
                .execute(&line)
                .map_err(|e| format!("oracle {name} `{line}` failed: {e}"))?;
            writes += 1;
        }
        let tenant = server
            .warehouse()
            .existing(&name)
            .map_err(|e| format!("tenant {name} vanished: {e}"))?;
        let identical = tenant.fingerprint() == oracle.engine().snapshot_state().to_bytes();
        byte_identical &= identical;
        let view_rows = tenant
            .query("V")
            .map_err(|e| format!("query V on {name} failed: {e}"))?
            .lines()
            .count()
            .saturating_sub(1);
        rows.push(TenantOutcome {
            tenant: name,
            writes,
            view_rows,
            identical,
        });
    }

    // The server's own measurement of the same load: merge the per-type
    // latency histograms for exactly the request kinds the driver timed
    // (statements, queries, stats probes — session setup is excluded on
    // both sides).
    let server_snapshot = server.metrics_registry().snapshot();
    let mut server_latency = eve_trace::HistogramSnapshot::default();
    for kind in ["statement", "query", "stats"] {
        if let Some(h) = server_snapshot
            .histograms
            .get(&format!("server.latency_us.{kind}"))
        {
            for (bucket, v) in h.buckets.iter().enumerate() {
                server_latency.buckets[bucket] += v;
            }
            server_latency.sum += h.sum;
        }
    }

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
    std::fs::remove_dir_all(&oracle_root).ok();

    let mut all: Vec<u64> = write_lat.iter().chain(read_lat.iter()).copied().collect();
    all.sort_unstable();
    write_lat.sort_unstable();
    read_lat.sort_unstable();

    Ok(ServeReport {
        tenants: cfg.tenants,
        clients,
        requests,
        errors,
        byte_identical,
        elapsed_ms,
        throughput_rps,
        p50_us: percentile(&all, 0.50),
        p99_us: percentile(&all, 0.99),
        write_p50_us: percentile(&write_lat, 0.50),
        write_p99_us: percentile(&write_lat, 0.99),
        read_p50_us: percentile(&read_lat, 0.50),
        read_p99_us: percentile(&read_lat, 0.99),
        server_p50_us: server_latency.quantile(0.50),
        server_p99_us: server_latency.quantile(0.99),
        server_latency,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_sustains_1000_clients_across_8_tenants_byte_identical() {
        // The tier-1 CI gate: the full default population — 8 tenants
        // × 128 sessions = 1024 concurrent clients — must drain with
        // zero typed errors and leave every tenant byte-identical to
        // its serial oracle. Latency numbers are reported elsewhere
        // (`repro serve`) and never gated here.
        let cfg = ServeConfig::default();
        let report = run(&cfg).unwrap();
        assert!(report.tenants >= 8, "tenants: {}", report.tenants);
        assert!(report.clients >= 1000, "clients: {}", report.clients);
        assert_eq!(report.errors, 0, "typed errors during the load");
        assert!(
            report.byte_identical,
            "a tenant diverged: {:?}",
            report.rows
        );
        let per_writer = setup_script(0).len() + cfg.writer_rounds * 2;
        let readers = cfg.tenants * (cfg.clients_per_tenant - 1);
        assert_eq!(
            report.requests,
            cfg.tenants * per_writer + readers * cfg.reads_per_client,
            "every scripted request must be accounted for"
        );
        for row in &report.rows {
            // seed + one matched pair per round, all Dest='Asia'.
            assert_eq!(row.view_rows, 1 + cfg.writer_rounds, "{row:?}");
        }
    }

    #[test]
    fn server_side_quantiles_agree_with_driver_within_one_log2_bucket() {
        // Satellite gate: the p50 the server reads out of its own
        // `server.latency_us.*` histograms and the p50 the driver
        // computes from stopwatch samples are two measurements of the
        // same population — they may differ by wire/channel overhead,
        // but never by more than one log2 bucket (a factor of two at
        // histogram resolution). The load is sized so per-request service
        // time (view maintenance over a growing join, queueing behind the
        // worker pools — both measured on both sides) dominates the
        // constant in-process wire overhead.
        let report = run(&ServeConfig {
            tenants: 2,
            clients_per_tenant: 16,
            writer_rounds: 48,
            reads_per_client: 8,
            shards: 2,
            readers: 2,
            driver_threads: 4,
        })
        .unwrap();
        assert_eq!(report.errors, 0);
        assert!(report.byte_identical);
        // Same population on both sides: every timed driver request has
        // exactly one server-side sample.
        assert_eq!(
            report.server_latency.count(),
            report.requests as u64,
            "server histograms must cover exactly the driver's requests"
        );
        let driver_bucket = eve_trace::bucket_of(report.p50_us);
        let server_bucket = report.server_latency.quantile_bucket(0.50);
        assert!(
            driver_bucket.abs_diff(server_bucket) <= 1,
            "p50 disagreement beyond one log2 bucket: driver {} us (bucket {driver_bucket}) \
             vs server {} us (bucket {server_bucket})",
            report.p50_us,
            report.server_p50_us,
        );
    }

    #[test]
    fn small_populations_also_converge() {
        let report = run(&ServeConfig {
            tenants: 2,
            clients_per_tenant: 3,
            writer_rounds: 2,
            reads_per_client: 1,
            shards: 2,
            readers: 2,
            driver_threads: 2,
        })
        .unwrap();
        assert_eq!(report.clients, 6);
        assert_eq!(report.errors, 0);
        assert!(report.byte_identical);
    }
}
