//! Durable evolution log: append throughput, crash-recovery throughput and
//! the snapshot-vs-replay crossover (extension; ROADMAP durability
//! direction).
//!
//! Workload shape: the canonical multi-site batched-pipeline space
//! ([`batch_pipeline::build_workload`]) driven through a
//! [`DurableEngine`] in fixed-size batches — every batch is one fsync'd
//! log record. Three store policies are compared on identical op streams:
//! no checkpoints (recovery replays the whole log), and snapshots every
//! K batches for two values of K (recovery replays only the tail).
//!
//! Every arm ends with a simulated crash (the process state is dropped;
//! only the fsync'd files survive, exactly what `kill -9` leaves) followed
//! by [`DurableEngine::open`]; the recovered engine must be byte-identical
//! to the never-crashed one — [`compare`] returns an error otherwise, and
//! the `repro durability` gate turns that into a non-zero exit for CI.

use std::collections::{BTreeSet, VecDeque};
use std::path::PathBuf;
use std::time::Instant;

use eve_store::{EvolutionStore, GroupCommitLog, GroupCommitPolicy, LogRecord, SealedRecord};
use eve_system::{DurableEngine, EveEngine, EvolutionOp};

use super::batch_pipeline;

/// One store policy's measurements.
#[derive(Debug, Clone)]
pub struct DurabilityRow {
    /// Snapshot interval in batches (`None` = bootstrap snapshot only).
    pub snapshot_every: Option<u64>,
    /// Batches applied (= log records appended).
    pub batches: usize,
    /// Total evolution ops across the batches.
    pub ops: usize,
    /// Wall-clock of the apply+append phase, milliseconds.
    pub append_ms: f64,
    /// Durable throughput: ops per second through apply+fsync.
    pub append_ops_per_s: f64,
    /// Log bytes appended.
    pub log_bytes: u64,
    /// Snapshot bytes written (bootstrap + periodic).
    pub snapshot_bytes: u64,
    /// Snapshots written in total.
    pub snapshots: u64,
    /// Wall-clock of crash recovery (open: snapshot load + tail replay),
    /// milliseconds.
    pub recovery_ms: f64,
    /// Records the recovery replayed.
    pub replayed_records: u64,
    /// Recovery throughput in replayed ops/s (0 when nothing replayed).
    pub recovery_ops_per_s: f64,
    /// Whether the recovered engine was byte-identical to the uncrashed
    /// one (always true — a mismatch aborts the experiment).
    pub identical: bool,
}

/// The full durability report.
#[derive(Debug, Clone)]
pub struct DurabilityReport {
    /// Sites in the workload space.
    pub sites: u32,
    /// One row per snapshot policy.
    pub rows: Vec<DurabilityRow>,
    /// Torn-tail smoke: bytes of a partial frame appended to the log were
    /// detected and truncated, and recovery still reached the exact
    /// pre-tear state.
    pub torn_tail_recovered: bool,
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("eve-durability-bench-{}-{tag}", std::process::id()))
}

/// The canonical "byte-identical" fingerprint of an engine: its full
/// state under the store's canonical snapshot encoding. Shared by every
/// durability harness (this experiment, the criterion bench, the root
/// differential suite and the soak loop) so they all pin the same notion
/// of identity.
#[must_use]
pub fn fingerprint(engine: &EveEngine) -> Vec<u8> {
    engine.snapshot_state().to_bytes()
}

/// Groups an op stream into batches of `batch_size` (the last batch may
/// be short).
#[must_use]
pub fn into_batches(ops: Vec<EvolutionOp>, batch_size: usize) -> Vec<Vec<EvolutionOp>> {
    let mut batches = Vec::new();
    let mut current = Vec::with_capacity(batch_size);
    for op in ops {
        current.push(op);
        if current.len() == batch_size {
            batches.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }
    batches
}

/// The newest (active) `.evl` log segment in a store directory — the one
/// crash simulations tear. `None` when the directory holds no segment.
///
/// # Errors
///
/// Directory listing failures.
pub fn active_segment(dir: &std::path::Path) -> std::io::Result<Option<PathBuf>> {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "evl"))
        .collect();
    segments.sort();
    Ok(segments.pop())
}

/// Runs one policy arm: apply all batches durably, crash, recover, verify.
fn run_arm(
    tag: &str,
    engine: EveEngine,
    batches: &[Vec<EvolutionOp>],
    snapshot_every: Option<u64>,
) -> eve_system::Result<DurabilityRow> {
    let dir = scratch_dir(tag);
    std::fs::remove_dir_all(&dir).ok();

    let mut durable = DurableEngine::create_with(&dir, engine)?;
    durable.snapshot_every = snapshot_every;
    let ops: usize = batches.iter().map(Vec::len).sum();

    let started = Instant::now();
    for batch in batches {
        durable.apply_batch(batch.clone())?;
    }
    let append_ms = started.elapsed().as_secs_f64() * 1e3;
    let stats = durable.store_stats();
    let expected = fingerprint(durable.engine());
    drop(durable); // crash: only the fsync'd files survive

    let started = Instant::now();
    let (recovered, report) = DurableEngine::open(&dir)?;
    let recovery_ms = started.elapsed().as_secs_f64() * 1e3;
    let identical = fingerprint(recovered.engine()) == expected;
    std::fs::remove_dir_all(&dir).ok();
    if !identical {
        return Err(eve_system::Error::State {
            detail: format!(
                "recovered state diverged from the uncrashed engine (policy {snapshot_every:?})"
            ),
        });
    }

    #[allow(clippy::cast_precision_loss)]
    let recovery_ops_per_s = if report.replayed_records == 0 {
        0.0
    } else {
        // Each replayed record is one batch; convert to ops.
        let avg_ops_per_batch = ops as f64 / batches.len().max(1) as f64;
        (report.replayed_records as f64 * avg_ops_per_batch) / (recovery_ms / 1e3).max(1e-9)
    };
    #[allow(clippy::cast_precision_loss)]
    Ok(DurabilityRow {
        snapshot_every,
        batches: batches.len(),
        ops,
        append_ms,
        append_ops_per_s: ops as f64 / (append_ms / 1e3).max(1e-9),
        log_bytes: stats.log_bytes_appended,
        snapshot_bytes: stats.snapshot_bytes_written,
        snapshots: stats.snapshots_written, // bootstrap snapshot included
        recovery_ms,
        replayed_records: report.replayed_records,
        recovery_ops_per_s,
        identical,
    })
}

/// Torn-tail smoke: a partial frame at the active tail must be truncated
/// and recovery must land on the exact pre-tear state.
fn torn_tail_check(engine: EveEngine, batches: &[Vec<EvolutionOp>]) -> eve_system::Result<bool> {
    let dir = scratch_dir("torn");
    std::fs::remove_dir_all(&dir).ok();
    let mut durable = DurableEngine::create_with(&dir, engine)?;
    for batch in batches {
        durable.apply_batch(batch.clone())?;
    }
    let expected = fingerprint(durable.engine());
    drop(durable);

    // Append half a fake frame to the newest segment: a crash mid-write.
    let active = active_segment(&dir)
        .map_err(|e| eve_system::Error::State {
            detail: format!("scratch dir vanished: {e}"),
        })?
        .ok_or_else(|| eve_system::Error::State {
            detail: "no log segment written".into(),
        })?;
    let mut bytes = std::fs::read(&active).map_err(|e| eve_system::Error::State {
        detail: format!("read segment: {e}"),
    })?;
    bytes.extend_from_slice(&[0x20u8, 0x00, 0x00, 0x00, 0xde, 0xad]); // len=32, torn
    std::fs::write(active, &bytes).map_err(|e| eve_system::Error::State {
        detail: format!("write torn tail: {e}"),
    })?;

    let (recovered, report) = DurableEngine::open(&dir)?;
    let ok = report.torn_bytes_truncated == 6 && fingerprint(recovered.engine()) == expected;
    std::fs::remove_dir_all(&dir).ok();
    Ok(ok)
}

/// Runs the full durability comparison: three snapshot policies over the
/// same seeded workload, plus the torn-tail smoke.
///
/// # Errors
///
/// Engine/store failures, or any recovered state diverging from its
/// uncrashed engine.
pub fn compare(
    sites: u32,
    op_count: usize,
    batch_size: usize,
    seed: u64,
) -> eve_system::Result<DurabilityReport> {
    let (engine, ops) = batch_pipeline::build_workload(sites, op_count, seed)?;
    let batches = into_batches(ops, batch_size.max(1));

    let mut rows = Vec::new();
    for (tag, every) in [
        ("log-only", None),
        ("snap-8", Some(8u64)),
        ("snap-2", Some(2u64)),
    ] {
        rows.push(run_arm(tag, engine.clone(), &batches, every)?);
    }
    let torn_tail_recovered = torn_tail_check(engine, &batches[..batches.len().min(3)])?;

    Ok(DurabilityReport {
        sites,
        rows,
        torn_tail_recovered,
    })
}

// ---------------------------------------------------------------------
// Append throughput: fsync-per-record vs the group-commit writer
// ---------------------------------------------------------------------

/// One append-throughput arm's measurements.
#[derive(Debug, Clone)]
pub struct AppendRow {
    /// Arm label (`fsync-per-record` or `group-commit`).
    pub mode: &'static str,
    /// Concurrent appender threads.
    pub threads: usize,
    /// Records appended in total.
    pub records: usize,
    /// Wall-clock of the append phase, milliseconds.
    pub wall_ms: f64,
    /// Durable append throughput, records per second.
    pub records_per_s: f64,
    /// fsyncs issued by the store for the append phase.
    pub fsyncs: u64,
    /// Durability amortization: records acknowledged per fsync (the
    /// baseline is exactly 1.0 by construction).
    pub records_per_fsync: f64,
    /// Wall-clock throughput ratio against the baseline arm.
    pub speedup_vs_baseline: f64,
    /// Whether a post-crash reopen recovered exactly the acknowledged
    /// record set (byte-compared, order-independent across threads).
    pub recovered_identical: bool,
}

/// The append-throughput comparison.
#[derive(Debug, Clone)]
pub struct AppendReport {
    /// Records per arm.
    pub records: usize,
    /// One row per arm; the first is the fsync-per-record baseline.
    pub rows: Vec<AppendRow>,
}

/// Tickets an appender thread keeps in flight before it starts waiting on
/// the oldest — the pipelining depth that lets the leader drain large
/// batches even when fsync itself is fast (tmpfs in CI).
const PIPELINE_WINDOW: usize = 32;

/// A distinguishable single-op record (the key makes every record's frame
/// bytes unique, so recovery comparisons catch loss *and* duplication).
fn keyed_record(k: u64) -> LogRecord {
    #[allow(clippy::cast_possible_wrap)]
    LogRecord::Batch(vec![EvolutionOp::insert(
        "R",
        vec![eve_relational::tup![k as i64]],
    )])
}

/// Canonical bytes of the sealed record for key `k` (what recovery must
/// hand back).
fn keyed_bytes(k: u64) -> Vec<u8> {
    eve_store::to_bytes(&SealedRecord {
        post_generation: 0,
        record: keyed_record(k),
    })
}

/// Reopens `dir` and checks the recovered tail is exactly the records
/// `0..records` — no loss, no duplication, no corruption.
fn verify_recovered(dir: &std::path::Path, records: usize) -> eve_system::Result<bool> {
    let (_, recovered) = EvolutionStore::open(dir)?;
    if recovered.tail.len() != records {
        return Ok(false);
    }
    let got: BTreeSet<Vec<u8>> = recovered.tail.iter().map(eve_store::to_bytes).collect();
    let want: BTreeSet<Vec<u8>> = (0..records as u64).map(keyed_bytes).collect();
    Ok(got == want)
}

/// Baseline arm: one thread, one fsync per record ([`EvolutionStore::append`]
/// directly — the PR 5 durability path).
fn run_baseline_arm(records: usize) -> eve_system::Result<AppendRow> {
    let dir = scratch_dir("append-baseline");
    std::fs::remove_dir_all(&dir).ok();
    let mut store = EvolutionStore::create(&dir)?;
    let started = Instant::now();
    for k in 0..records as u64 {
        store.append(0, keyed_record(k))?;
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let stats = store.stats();
    drop(store); // crash
    let recovered_identical = verify_recovered(&dir, records)?;
    std::fs::remove_dir_all(&dir).ok();
    #[allow(clippy::cast_precision_loss)]
    Ok(AppendRow {
        mode: "fsync-per-record",
        threads: 1,
        records,
        wall_ms,
        records_per_s: records as f64 / (wall_ms / 1e3).max(1e-9),
        fsyncs: stats.fsyncs,
        records_per_fsync: records as f64 / stats.fsyncs.max(1) as f64,
        speedup_vs_baseline: 1.0,
        recovered_identical,
    })
}

/// Group-commit arm: `threads` appenders pipeline up to [`PIPELINE_WINDOW`]
/// outstanding tickets each through one [`GroupCommitLog`].
fn run_group_arm(records: usize, threads: usize) -> eve_system::Result<AppendRow> {
    let dir = scratch_dir(&format!("append-group-{threads}"));
    std::fs::remove_dir_all(&dir).ok();
    let store = EvolutionStore::create(&dir)?;
    let log = GroupCommitLog::new(store, GroupCommitPolicy::default());
    let per_thread = records / threads.max(1);
    let spill = records % threads.max(1);

    let started = Instant::now();
    std::thread::scope(|scope| {
        let mut next_key = 0u64;
        for t in 0..threads {
            let count = per_thread + usize::from(t < spill);
            let first = next_key;
            next_key += count as u64;
            let log = &log;
            scope.spawn(move || {
                let mut in_flight = VecDeque::with_capacity(PIPELINE_WINDOW);
                for k in first..first + count as u64 {
                    in_flight.push_back(log.enqueue(0, keyed_record(k)).unwrap());
                    if in_flight.len() >= PIPELINE_WINDOW {
                        in_flight.pop_front().unwrap().wait().unwrap();
                    }
                }
                for ticket in in_flight {
                    ticket.wait().unwrap();
                }
            });
        }
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let store = log.into_store();
    let stats = store.stats();
    drop(store); // crash
    let recovered_identical = verify_recovered(&dir, records)?;
    std::fs::remove_dir_all(&dir).ok();
    #[allow(clippy::cast_precision_loss)]
    Ok(AppendRow {
        mode: "group-commit",
        threads,
        records,
        wall_ms,
        records_per_s: records as f64 / (wall_ms / 1e3).max(1e-9),
        fsyncs: stats.fsyncs,
        records_per_fsync: records as f64 / stats.fsyncs.max(1) as f64,
        speedup_vs_baseline: 1.0, // filled by the caller
        recovered_identical,
    })
}

/// Compares durable append throughput: the PR 5 fsync-per-record path vs
/// the group-commit writer at 1 and `threads` appenders. Every arm ends
/// with a simulated crash and an exact recovered-set verification.
///
/// # Errors
///
/// Store failures, or a recovery returning the wrong record set.
pub fn append_throughput(records: usize, threads: usize) -> eve_system::Result<AppendReport> {
    let baseline = run_baseline_arm(records)?;
    let mut rows = vec![baseline.clone()];
    for t in [1, threads.max(2)] {
        let mut row = run_group_arm(records, t)?;
        row.speedup_vs_baseline = row.records_per_s / baseline.records_per_s.max(1e-9);
        rows.push(row);
    }
    Ok(AppendReport { records, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policies_recover_byte_identically() {
        let report = compare(3, 30, 5, 11).unwrap();
        assert_eq!(report.rows.len(), 3);
        assert!(report.torn_tail_recovered);
        for row in &report.rows {
            assert!(row.identical);
            assert!(row.append_ops_per_s > 0.0);
            assert!(row.log_bytes > 0);
            assert_eq!(row.ops, 30);
        }
        // Denser snapshots replay fewer records on recovery.
        let replayed: Vec<u64> = report.rows.iter().map(|r| r.replayed_records).collect();
        assert!(replayed[0] >= replayed[1], "{replayed:?}");
        assert!(replayed[1] >= replayed[2], "{replayed:?}");
        // The log-only arm replays every batch.
        assert_eq!(replayed[0], report.rows[0].batches as u64);
    }

    #[test]
    fn group_commit_amortizes_fsyncs_at_least_five_fold() {
        // The tier-1 CI gate: the group-commit writer must acknowledge at
        // least 5 records per fsync where the PR 5 path paid one each —
        // measured on the real store, with a crash + exact-recovery check
        // on every arm. (`repro durability` reports the full table and
        // holds the stronger ≥10× line.)
        let report = append_throughput(400, 4).unwrap();
        let baseline = &report.rows[0];
        let group = report.rows.last().unwrap();
        for row in &report.rows {
            assert!(row.recovered_identical, "recovery diverged: {row:?}");
            assert_eq!(row.records, 400);
        }
        assert!(
            (baseline.records_per_fsync - 1.0).abs() < 1e-9,
            "baseline must pay one fsync per record, got {}",
            baseline.records_per_fsync
        );
        assert!(
            group.records_per_fsync >= 5.0 * baseline.records_per_fsync,
            "group-commit amortization regressed: {:.1} records/fsync",
            group.records_per_fsync
        );
    }

    #[test]
    fn batching_is_exact() {
        let ops: Vec<EvolutionOp> = (0..7)
            .map(|k| EvolutionOp::insert("R", vec![eve_relational::tup![k]]))
            .collect();
        let batches = into_batches(ops, 3);
        assert_eq!(batches.iter().map(Vec::len).collect::<Vec<_>>(), [3, 3, 1]);
    }
}
