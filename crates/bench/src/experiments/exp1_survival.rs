//! Experiment 1 — "Survival of a View" (§7.1, Figure 12).
//!
//! `V0 = SELECT R.A (AD, AR), R.B (AD) FROM R (RR)` faces `delete-attribute
//! R.A` with replicas of `A` at `S` and `T`. Three legal rewritings exist
//! (`V1` from `S`, `V2` from `T`, `V3` dropping `A`). With `w1 > w2` EVE
//! prefers the *replaceable*-preserving rewritings (`V1`/`V2`), which keeps
//! the view evolvable when `S` later disappears; with `w2 > w1` it picks
//! `V3`, after which any further relevant change kills the view — the
//! Fig. 12 life-span tree.
//!
//! The randomized extension sweeps the number of replicas and measures the
//! average number of delete-changes survived under both weight settings,
//! quantifying §7.1's claim that replaceability plus redundancy extends view
//! lifetime.

use eve_misd::{
    AttributeInfo, Mkb, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
};
use eve_qc::{rank_rewritings, QcParams, SelectionStrategy, WorkloadModel};
use eve_relational::DataType;
use eve_sync::{synchronize, SyncOptions};

/// One step of the Fig. 12 narrative.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Step {
    /// The capability change applied.
    pub change: String,
    /// Rewriting chosen when `w1 > w2` (source relation), if the view lives.
    pub choice_w1: Option<String>,
    /// Rewriting chosen when `w2 > w1`, if the view lives.
    pub choice_w2: Option<String>,
}

fn experiment1_mkb(replicas: usize) -> Mkb {
    let mut m = Mkb::new();
    m.register_site(SiteId(1), "origin").unwrap();
    let attr = |n: &str| AttributeInfo::new(n, DataType::Int);
    m.register_relation(RelationInfo::new(
        "R",
        SiteId(1),
        vec![attr("A"), attr("B")],
        400,
    ))
    .unwrap();
    for i in 0..replicas {
        let site = SiteId(u32::try_from(i).unwrap() + 2);
        m.register_site(site, format!("replica-{i}")).unwrap();
        let name = replica_name(i);
        m.register_relation(RelationInfo::new(
            &name,
            site,
            vec![attr("A"), attr(&format!("Extra{i}"))],
            400,
        ))
        .unwrap();
        m.add_pc_constraint(PcConstraint::new(
            PcSide::projection("R", &["A"]),
            PcRelationship::Subset,
            PcSide::projection(&name, &["A"]),
        ))
        .unwrap();
    }
    // Replicas also replicate each other (the "amply duplicated" space).
    for i in 0..replicas {
        for j in (i + 1)..replicas {
            m.add_pc_constraint(PcConstraint::new(
                PcSide::projection(replica_name(i), &["A"]),
                PcRelationship::Equivalent,
                PcSide::projection(replica_name(j), &["A"]),
            ))
            .unwrap();
        }
    }
    m
}

fn replica_name(i: usize) -> String {
    // S, T, U, … for readability in reports.
    let letters = ["S", "T", "U", "W", "X", "Y", "Z"];
    letters
        .get(i)
        .map_or_else(|| format!("Rep{i}"), |s| (*s).to_owned())
}

fn v0() -> eve_esql::ViewDef {
    eve_esql::parse_view(
        "CREATE VIEW V0 (VE = '~') AS \
         SELECT R.A (AD = true, AR = true), R.B (AD = true) \
         FROM R (RR = true)",
    )
    .unwrap()
}

/// Picks the QC-best rewriting under the given attribute weights, returning
/// the updated view (or `None` when the view dies).
fn evolve_once(
    view: &eve_esql::ViewDef,
    change: &SchemaChange,
    mkb: &Mkb,
    w1: f64,
    w2: f64,
) -> Option<(eve_esql::ViewDef, String)> {
    let outcome = synchronize(view, change, mkb, &SyncOptions::default()).ok()?;
    if !outcome.affected {
        return Some((view.clone(), "(unaffected)".to_owned()));
    }
    let params = QcParams {
        w1,
        w2,
        ..QcParams::default()
    };
    let scored = rank_rewritings(
        view,
        &outcome.rewritings,
        mkb,
        &params,
        WorkloadModel::SingleUpdate,
    )
    .ok()?;
    let chosen = SelectionStrategy::QcBest.select(&scored)?;
    let source = chosen.rewriting.view.from[0].relation.clone();
    Some((chosen.rewriting.view.clone(), source))
}

/// Runs the Fig. 12 narrative: `delete-attribute R.A`, then deletion of the
/// adopted source, until the view dies under each weight setting.
#[must_use]
pub fn figure12() -> Vec<Fig12Step> {
    let mut steps = Vec::new();

    // Both tracks share the same information space with replicas S and T.
    let run = |w1: f64, w2: f64| -> Vec<Option<String>> {
        let mut mkb = experiment1_mkb(2);
        let mut view = v0();
        let mut choices = Vec::new();
        // Step 1: delete-attribute R.A.
        let change = SchemaChange::DeleteAttribute {
            relation: "R".into(),
            attribute: "A".into(),
        };
        match evolve_once(&view, &change, &mkb, w1, w2) {
            Some((v, src)) => {
                view = v;
                mkb.apply_change(&change).unwrap();
                choices.push(Some(src));
            }
            None => {
                choices.push(None);
                return choices;
            }
        }
        // Steps 2..: delete whatever relation the view now uses.
        for _ in 0..3 {
            let current = view.from[0].relation.clone();
            let change = SchemaChange::DeleteRelation {
                relation: current.clone(),
            };
            match evolve_once(&view, &change, &mkb, w1, w2) {
                Some((v, src)) => {
                    view = v;
                    mkb.apply_change(&change).unwrap();
                    choices.push(Some(src));
                }
                None => {
                    choices.push(None);
                    break;
                }
            }
        }
        choices
    };

    let track_w1 = run(0.7, 0.3);
    let track_w2 = run(0.3, 0.7);
    let len = track_w1.len().max(track_w2.len());
    let labels = [
        "delete-attribute R.A",
        "delete adopted source",
        "delete adopted source",
        "delete adopted source",
    ];
    for i in 0..len {
        steps.push(Fig12Step {
            change: labels
                .get(i)
                .copied()
                .unwrap_or("delete adopted source")
                .to_owned(),
            choice_w1: track_w1.get(i).cloned().flatten(),
            choice_w2: track_w2.get(i).cloned().flatten(),
        });
    }
    steps
}

/// One row of the survival sweep: replicas vs changes survived.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivalRow {
    /// Number of replica relations in the space.
    pub replicas: usize,
    /// Delete-changes survived when `w1 > w2` (replaceable preferred).
    pub survived_w1: usize,
    /// Delete-changes survived when `w2 > w1`.
    pub survived_w2: usize,
}

/// Sweeps the replication factor: starting from `V0`, deletes `R.A` and then
/// repeatedly deletes the adopted source relation, counting how many changes
/// the view survives under each weighting (§7.1: "if there is a high number
/// of data replicas … a view could be kept alive indefinitely").
#[must_use]
pub fn survival_sweep(max_replicas: usize) -> Vec<SurvivalRow> {
    let run = |replicas: usize, w1: f64, w2: f64| -> usize {
        let mut mkb = experiment1_mkb(replicas);
        let mut view = v0();
        let mut survived = 0usize;
        let change = SchemaChange::DeleteAttribute {
            relation: "R".into(),
            attribute: "A".into(),
        };
        match evolve_once(&view, &change, &mkb, w1, w2) {
            Some((v, _)) => {
                view = v;
                mkb.apply_change(&change).unwrap();
                survived += 1;
            }
            None => return survived,
        }
        loop {
            let current = view.from[0].relation.clone();
            let change = SchemaChange::DeleteRelation {
                relation: current.clone(),
            };
            match evolve_once(&view, &change, &mkb, w1, w2) {
                Some((v, src)) if src != "(unaffected)" => {
                    view = v;
                    mkb.apply_change(&change).unwrap();
                    survived += 1;
                }
                _ => break,
            }
            if survived > max_replicas + 2 {
                break; // safety stop
            }
        }
        survived
    };
    (0..=max_replicas)
        .map(|replicas| SurvivalRow {
            replicas,
            survived_w1: run(replicas, 0.7, 0.3),
            survived_w2: run(replicas, 0.3, 0.7),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_w1_track_survives_longer() {
        let steps = figure12();
        assert!(!steps.is_empty());
        // Step 1 under w1 > w2 keeps A by moving to a replica (S or T);
        // under w2 > w1 it keeps B on R (V3).
        let first = &steps[0];
        let w1_choice = first.choice_w1.as_deref().unwrap();
        assert!(w1_choice == "S" || w1_choice == "T", "{w1_choice}");
        assert_eq!(first.choice_w2.as_deref(), Some("R"));
        // Step 2: the w1 track survives (second replica); the w2 track's
        // view (on R) survives deleting S? No — its source R is deleted and
        // B has no replica: it dies.
        let w1_alive_steps = steps.iter().filter(|s| s.choice_w1.is_some()).count();
        let w2_alive_steps = steps.iter().filter(|s| s.choice_w2.is_some()).count();
        assert!(
            w1_alive_steps > w2_alive_steps,
            "replaceable-preserving choice must out-survive: {steps:?}"
        );
    }

    #[test]
    fn survival_grows_with_replication() {
        let rows = survival_sweep(3);
        assert_eq!(rows.len(), 4);
        // No replicas: deleting R.A leaves only the drop-rewriting V3 (both
        // tracks pick it), after which deleting R kills the view.
        assert_eq!(rows[0].survived_w1, rows[0].survived_w2);
        // Survival under w1 > w2 increases with replicas.
        for w in rows.windows(2) {
            assert!(
                w[1].survived_w1 >= w[0].survived_w1,
                "survival should not shrink: {rows:?}"
            );
        }
        assert!(
            rows[3].survived_w1 > rows[0].survived_w1,
            "replicas must extend lifetime: {rows:?}"
        );
        // And dominates the w2 > w1 setting once replicas exist.
        assert!(rows[3].survived_w1 >= rows[3].survived_w2);
    }
}
