//! Streaming branch-and-bound search vs. exhaustive enumeration on wide
//! MKBs (extension; ROADMAP "scale + speed" direction).
//!
//! Workload shape: a relation with `partners` PC partners — one equivalent
//! same-size replica, the rest increasingly divergent and increasingly
//! large substitutes at fresh sites — referenced by a self-join view with
//! `bindings` FROM bindings. A `delete-relation` then opens a candidate
//! space of `partners^bindings` combinations.
//!
//! The exhaustive arm runs the paper's materialize-then-rank pipeline
//! (`synchronize` + `rank_rewritings`); the pruned arm runs the QC-bounded
//! best-first policy (`eve_qc::search`) until its *first* emission. Both
//! arms report the candidates the search materialized
//! ([`eve_sync::SearchStats::materialized`], deterministic) and their
//! wall-clock; the pruned arm additionally reports its *regret* — the QC
//! badness gap between its first emission and QC-best selection over the
//! exhaustive set — which admissible bounds hold at zero.

use std::time::Instant;

use eve_esql::ViewDef;
use eve_misd::{
    AttributeInfo, Mkb, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
};
use eve_qc::{
    exact_score, rank_rewritings, synchronize_qc_best_first, QcGuide, QcParams, ScoreModel,
    SelectionStrategy, WorkloadModel,
};
use eve_relational::DataType;
use eve_sync::{synchronize_with_policy, ExplorationPolicy, PartnerCache, SyncOptions};

/// One exhaustive-vs-best-first comparison row.
#[derive(Debug, Clone)]
pub struct SearchSpaceRow {
    /// PC partners of the deleted relation.
    pub partners: usize,
    /// Affected FROM bindings (self-join width).
    pub bindings: usize,
    /// Legal rewritings the exhaustive arm emitted (after dedup/cap).
    pub exhaustive_rewritings: usize,
    /// Candidate views the exhaustive arm materialized.
    pub exhaustive_candidates: u64,
    /// Exhaustive wall-clock (synchronize + rank), milliseconds.
    pub exhaustive_ms: f64,
    /// Candidate views the best-first arm materialized up to its first
    /// emission.
    pub best_first_candidates: u64,
    /// Best-first wall-clock (first emission), milliseconds.
    pub best_first_ms: f64,
    /// `exhaustive_candidates / best_first_candidates`.
    pub pruning_ratio: f64,
    /// `exhaustive_ms / best_first_ms`.
    pub speedup: f64,
    /// QC-badness regret of the first emission vs QC-best over the
    /// exhaustive set (0 under admissible bounds).
    pub regret: f64,
}

/// Builds the wide information space: `Source(A,B)` plus `partners` PC
/// partners. Partner 0 is an equivalent same-size replica; partner `j > 0`
/// is a substitute of growing size (alternating containment direction) at
/// its own site — divergent in both QC dimensions, so the search's best
/// path is unique.
///
/// # Errors
///
/// MKB registration failures.
#[allow(clippy::missing_panics_doc)]
pub fn wide_space(
    partners: usize,
    bindings: usize,
) -> eve_qc::Result<(Mkb, ViewDef, SchemaChange)> {
    let mut mkb = Mkb::new();
    let attrs = || {
        vec![
            AttributeInfo::sized("A", DataType::Int, 50),
            AttributeInfo::sized("B", DataType::Int, 50),
        ]
    };
    mkb.register_site(SiteId(1), "hub")?;
    mkb.register_relation(RelationInfo::new("Source", SiteId(1), attrs(), 4000))?;
    for j in 0..partners {
        let site = SiteId(u32::try_from(j).unwrap_or(u32::MAX) + 2);
        mkb.register_site(site, format!("mirror-{j}"))?;
        let name = format!("Rep{j}");
        let (relationship, card) = if j == 0 {
            (PcRelationship::Equivalent, 4000)
        } else if j % 2 == 1 {
            // Source ⊆ Rep: ever larger supersets.
            (PcRelationship::Subset, 4000 + 2000 * j as u64)
        } else {
            // Source ⊇ Rep: ever smaller subsets.
            (PcRelationship::Superset, 4000 / (j as u64 + 1))
        };
        mkb.register_relation(RelationInfo::new(&name, site, attrs(), card))?;
        mkb.add_pc_constraint(PcConstraint::new(
            PcSide::projection("Source", &["A", "B"]),
            relationship,
            PcSide::projection(&name, &["A", "B"]),
        ))?;
    }
    let select: Vec<String> = (0..bindings)
        .map(|i| format!("X{i}.B AS B{i} (AR = true)"))
        .collect();
    let from: Vec<String> = (0..bindings)
        .map(|i| format!("Source X{i} (RR = true)"))
        .collect();
    let conds: Vec<String> = (1..bindings)
        .map(|i| format!("X{}.A = X{i}.A", i - 1))
        .collect();
    let where_clause = if conds.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", conds.join(" AND "))
    };
    let view = eve_esql::parse_view(&format!(
        "CREATE VIEW Wide (VE = '~') AS SELECT {} FROM {}{}",
        select.join(", "),
        from.join(", "),
        where_clause
    ))
    .map_err(|e| eve_qc::Error::BadView {
        detail: e.to_string(),
    })?;
    let change = SchemaChange::DeleteRelation {
        relation: "Source".into(),
    };
    Ok((mkb, view, change))
}

/// Runs one `(partners, bindings)` configuration through both arms,
/// best-of-`reps` timing.
///
/// # Errors
///
/// Synchronization or QC-Model failures.
#[allow(clippy::missing_panics_doc, clippy::cast_precision_loss)]
pub fn run(partners: usize, bindings: usize, reps: usize) -> eve_qc::Result<SearchSpaceRow> {
    let reps = reps.max(1);
    let (mkb, view, change) = wide_space(partners, bindings)?;
    let params = QcParams::default();
    let workload = WorkloadModel::SingleUpdate;
    let sync_options = SyncOptions {
        max_rewritings: 256,
        ..SyncOptions::default()
    };
    let to_qc_err = |e: eve_sync::synchronizer::SyncError| eve_qc::Error::BadView {
        detail: e.to_string(),
    };

    // Exhaustive arm: materialize everything, then rank (the paper's
    // post-hoc pipeline).
    let mut exhaustive_ms = f64::INFINITY;
    let mut exhaustive = None;
    for _ in 0..reps {
        let started = Instant::now();
        let (outcome, stats) = synchronize_with_policy(
            &view,
            &change,
            &mkb,
            &sync_options,
            &ExplorationPolicy::Exhaustive,
            &mut PartnerCache::new(),
        )
        .map_err(to_qc_err)?;
        let scored = rank_rewritings(&view, &outcome.rewritings, &mkb, &params, workload)?;
        exhaustive_ms = exhaustive_ms.min(started.elapsed().as_secs_f64() * 1e3);
        exhaustive = Some((outcome, stats, scored));
    }
    let (ex_outcome, ex_stats, scored) = exhaustive.expect("reps >= 1");
    let best = SelectionStrategy::QcBest
        .select(&scored)
        .expect("wide space always has legal rewritings");

    // Best-first arm: QC-bounded branch-and-bound until the first emission,
    // with the production (auto-scale) normalization.
    let guide = QcGuide::auto(&view, &mkb, &params, workload)?;
    let first_opts = SyncOptions {
        max_rewritings: 1,
        ..SyncOptions::default()
    };
    let mut best_first_ms = f64::INFINITY;
    let mut best_first = None;
    for _ in 0..reps {
        let started = Instant::now();
        let result = synchronize_qc_best_first(&view, &change, &mkb, &first_opts, &guide)?;
        best_first_ms = best_first_ms.min(started.elapsed().as_secs_f64() * 1e3);
        best_first = Some(result);
    }
    let (bf_outcome, bf_stats) = best_first.expect("reps >= 1");
    let first = bf_outcome
        .rewritings
        .first()
        .expect("best-first emits at least one rewriting");

    // Regret under the *exact* normalization of the exhaustive set.
    let mut costs: Vec<(usize, f64)> = scored.iter().map(|s| (s.index, s.cost)).collect();
    costs.sort_by_key(|(i, _)| *i);
    let costs: Vec<f64> = costs.into_iter().map(|(_, c)| c).collect();
    let exact_model = ScoreModel::from_costs(&params, &costs);
    let (dd, cost) = exact_score(&view, first, &mkb, &params, workload)?;
    let regret = exact_model.badness(dd, cost) - exact_model.badness(best.divergence.dd, best.cost);

    Ok(SearchSpaceRow {
        partners,
        bindings,
        exhaustive_rewritings: ex_outcome.rewritings.len(),
        exhaustive_candidates: ex_stats.materialized,
        exhaustive_ms,
        best_first_candidates: bf_stats.materialized.max(1),
        best_first_ms,
        pruning_ratio: ex_stats.materialized as f64 / bf_stats.materialized.max(1) as f64,
        speedup: exhaustive_ms / best_first_ms.max(1e-9),
        regret,
    })
}

/// The canonical configuration set the bench, the `repro search` subcommand
/// and the acceptance test all run.
#[must_use]
pub fn configurations() -> Vec<(usize, usize)> {
    vec![(4, 2), (8, 2), (8, 3), (16, 3)]
}

/// Runs the full configuration set.
///
/// # Errors
///
/// As [`run`].
pub fn compare(reps: usize) -> eve_qc::Result<Vec<SearchSpaceRow>> {
    configurations()
        .into_iter()
        .map(|(p, b)| run(p, b, reps))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_beats_exhaustive_by_at_least_5x_on_the_wide_mkb() {
        // The acceptance bar: ≥5× fewer candidates materialized on the wide
        // workload. Candidate counts are deterministic, so this is a plain
        // (non-soak) test.
        let row = run(8, 3, 1).unwrap();
        assert!(
            row.pruning_ratio >= 5.0,
            "pruning ratio {:.1} below the 5x bar ({} vs {})",
            row.pruning_ratio,
            row.exhaustive_candidates,
            row.best_first_candidates
        );
    }

    #[test]
    fn first_emission_has_zero_regret() {
        for (partners, bindings) in configurations() {
            let row = run(partners, bindings, 1).unwrap();
            assert!(
                row.regret.abs() < 1e-9,
                "({partners},{bindings}): regret {}",
                row.regret
            );
        }
    }

    #[test]
    fn candidate_counts_are_deterministic() {
        let a = run(4, 2, 1).unwrap();
        let b = run(4, 2, 1).unwrap();
        assert_eq!(a.exhaustive_candidates, b.exhaustive_candidates);
        assert_eq!(a.best_first_candidates, b.best_first_candidates);
        assert_eq!(a.exhaustive_rewritings, b.exhaustive_rewritings);
    }

    #[test]
    fn exhaustive_candidates_grow_with_the_space() {
        let narrow = run(4, 2, 1).unwrap();
        let wide = run(8, 3, 1).unwrap();
        assert!(wide.exhaustive_candidates > narrow.exhaustive_candidates);
        // Best-first growth is linear-ish in bindings × partners, far below
        // the cross product.
        assert!(wide.best_first_candidates < wide.exhaustive_candidates);
    }
}
