//! Cross-validation (extension beyond the paper's §7): the analytic model
//! against the executed system.
//!
//! 1. **Cost**: run Algorithm 1 on synthetic data whose statistics exactly
//!    realize the declared `σ`/`js` and compare the measured
//!    messages/bytes/I/O against `CF_M`/`CF_T`/`CF_IO`.
//! 2. **Quality**: materialize an Experiment-4-style containment chain with
//!    real data, compute the *measured* `DD_ext` on actual extents, and
//!    compare against the PC-estimated value the QC-Model uses.
//! 3. **Recompute vs incremental**: the \[ZGMHW95\]-flavoured ablation —
//!    bytes shipped by full recomputation vs one incremental update.

use eve_qc::cost::{cf_io, cf_messages, cf_transfer};
use eve_qc::{IoBound, MaintenancePlan, QcParams};
use eve_relational::generator::{generate, generate_containment_chain, AttrSpec, RelationSpec};
use eve_relational::{tup, Relation};
use eve_system::maintainer::{maintain_view, recompute_view, DataUpdate};
use eve_system::scenario::{build_uniform_space, UniformSpaceSpec};

/// One measured-vs-analytic cost comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct CostValidationRow {
    /// Distribution label.
    pub distribution: String,
    /// Measured messages / analytic `CF_M`.
    pub messages: (f64, f64),
    /// Measured bytes / analytic `CF_T`.
    pub bytes: (f64, f64),
    /// Measured I/O / analytic `CF_IO` (lower bound).
    pub io: (f64, f64),
}

/// Runs the cost validation across several distributions (σ = 1 so Eq. 33's
/// σ-free I/O bounds apply exactly).
///
/// # Errors
///
/// Engine/scenario failures.
pub fn validate_costs() -> eve_system::Result<Vec<CostValidationRow>> {
    let mut out = Vec::new();
    for distribution in [
        vec![6],
        vec![1, 5],
        vec![3, 3],
        vec![2, 2, 2],
        vec![1, 1, 1, 1, 1, 1],
    ] {
        let spec = UniformSpaceSpec {
            distribution: distribution.clone(),
            inverse_selectivity: 0, // σ = 1
            ..UniformSpaceSpec::default()
        };
        let (mut engine, view) = build_uniform_space(&spec)?;
        let mut extent = engine.evaluate(&view)?;
        engine.reset_io();
        let mkb = engine.mkb().clone();
        let update = DataUpdate::insert("R1_1", vec![tup![0, 0]]);
        let trace = maintain_view(&view, &mut extent, &update, engine.sites_mut(), &mkb)?;

        let mut plan = MaintenancePlan::uniform(&distribution, spec.join_selectivity())
            .map_err(|e| eve_system::Error::Qc(e.to_string()))?;
        set_selectivity(&mut plan, 1.0);
        let params = QcParams::default();
        #[allow(clippy::cast_precision_loss)]
        out.push(CostValidationRow {
            distribution: distribution
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(","),
            messages: (
                trace.messages as f64,
                cf_messages(&plan, params.count_notification),
            ),
            bytes: (trace.bytes as f64, cf_transfer(&plan)),
            io: (trace.ios as f64, cf_io(&plan, IoBound::Lower)),
        });
    }
    Ok(out)
}

fn set_selectivity(plan: &mut MaintenancePlan, sel: f64) {
    plan.origin.selectivity = sel;
    for site in &mut plan.sites {
        for rel in &mut site.relations {
            rel.selectivity = sel;
        }
    }
}

/// One estimated-vs-measured extent-divergence row.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityValidationRow {
    /// Substitute name.
    pub substitute: String,
    /// PC-estimated `DD_ext` (what the QC-Model uses).
    pub estimated: f64,
    /// `DD_ext` measured on materialized extents.
    pub measured: f64,
}

/// Builds an Experiment-4-like containment chain *with data* and compares
/// estimated vs measured extent divergence for each substitute.
///
/// # Errors
///
/// Generation/measurement failures.
pub fn validate_quality(seed: u64) -> eve_qc::Result<Vec<QualityValidationRow>> {
    // Scaled-down Table 3: cardinalities 200..600, original R2 = S3 = 400.
    let spec = RelationSpec::new(
        "S",
        vec![AttrSpec::new("A", 100_000), AttrSpec::new("B", 100_000)],
        0,
    );
    let chain = generate_containment_chain(&spec, "S", &[200, 300, 400, 500, 600], seed)
        .map_err(eve_qc::Error::Relational)?;
    let r2 = &chain[2]; // S3 ≡ R2
    let params = QcParams::default();
    let mut rows = Vec::new();
    for (i, s) in chain.iter().enumerate() {
        // Measured: D1/D2 on the actual extents (the "view" here is the
        // relation itself — the join factors cancel as in §5.4.3).
        let sizes = eve_qc::quality::ExtentSizes::measured(r2, s)?;
        let measured = sizes.dd_ext(params.rho_d1, params.rho_d2);
        // Estimated: the containment chain pins the overlap exactly.
        let overlap = (s.cardinality().min(r2.cardinality())) as f64;
        #[allow(clippy::cast_precision_loss)]
        let est_sizes = eve_qc::quality::ExtentSizes::new(
            r2.cardinality() as f64,
            s.cardinality() as f64,
            overlap,
        );
        let estimated = est_sizes.dd_ext(params.rho_d1, params.rho_d2);
        rows.push(QualityValidationRow {
            substitute: format!("S{}", i + 1),
            estimated,
            measured,
        });
    }
    Ok(rows)
}

/// Recompute-vs-incremental byte comparison for one uniform scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RecomputeRow {
    /// Distribution label.
    pub distribution: String,
    /// Bytes shipped by a full recomputation.
    pub recompute_bytes: u64,
    /// Bytes shipped by one incremental single-tuple update.
    pub incremental_bytes: u64,
}

/// Measures the \[ZGMHW95\]-style comparison: full recomputation vs one
/// incremental update, in bytes shipped.
///
/// # Errors
///
/// Engine/scenario failures.
pub fn recompute_vs_incremental() -> eve_system::Result<Vec<RecomputeRow>> {
    let mut out = Vec::new();
    for distribution in [vec![2], vec![3, 3], vec![2, 2, 2]] {
        let spec = UniformSpaceSpec {
            distribution: distribution.clone(),
            inverse_selectivity: 0,
            ..UniformSpaceSpec::default()
        };
        let (mut engine, view) = build_uniform_space(&spec)?;
        let mut extent = engine.evaluate(&view)?;
        let mkb = engine.mkb().clone();
        let (_, recompute_trace) = recompute_view(&view, engine.sites_mut(), &mkb)?;
        let update = DataUpdate::insert("R1_1", vec![tup![0, 0]]);
        let inc_trace = maintain_view(&view, &mut extent, &update, engine.sites_mut(), &mkb)?;
        out.push(RecomputeRow {
            distribution: distribution
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(","),
            recompute_bytes: recompute_trace.bytes,
            incremental_bytes: inc_trace.bytes,
        });
    }
    Ok(out)
}

/// Deterministic synthetic extent used by doc examples and smoke checks.
///
/// # Errors
///
/// Generation failures.
pub fn sample_extent(seed: u64) -> eve_relational::Result<Relation> {
    generate(
        &RelationSpec::new(
            "Sample",
            vec![AttrSpec::new("K", 1000), AttrSpec::new("P", 1000)],
            50,
        ),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_costs_equal_analytic() {
        for row in validate_costs().unwrap() {
            assert!(
                (row.messages.0 - row.messages.1).abs() < 1e-9,
                "{}: messages {:?}",
                row.distribution,
                row.messages
            );
            assert!(
                (row.bytes.0 - row.bytes.1).abs() < 1e-9,
                "{}: bytes {:?}",
                row.distribution,
                row.bytes
            );
            assert!(
                (row.io.0 - row.io.1).abs() < 1e-9,
                "{}: io {:?}",
                row.distribution,
                row.io
            );
        }
    }

    #[test]
    fn estimated_dd_ext_equals_measured_on_containment_chains() {
        // Containment is exact in the generated data, so the PC-based
        // estimate must match the measured divergence exactly.
        for row in validate_quality(42).unwrap() {
            assert!(
                (row.estimated - row.measured).abs() < 1e-9,
                "{}: est {} vs measured {}",
                row.substitute,
                row.estimated,
                row.measured
            );
        }
    }

    #[test]
    fn incremental_is_cheaper_than_recompute() {
        for row in recompute_vs_incremental().unwrap() {
            assert!(row.incremental_bytes < row.recompute_bytes, "{row:?}");
        }
    }

    #[test]
    fn sample_extent_is_deterministic() {
        assert_eq!(sample_extent(7).unwrap(), sample_extent(7).unwrap());
    }
}
