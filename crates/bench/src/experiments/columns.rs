//! Columnar execution vs the row-oriented baseline (PR 8 tentpole).
//!
//! Executes the *same* compiled plan through both physical modes of
//! `eve_relational::exec` — [`ExecMode::RowOriented`] (the frozen PR 3
//! baseline: projected-`Tuple` hash keys, row-at-a-time filters) and
//! [`ExecMode::Columnar`] (interned scalar join keys, vectorized filters
//! and lazily built secondary indexes) — and reports, per workload:
//!
//! * wall-clock of both arms and the speedup,
//! * the executed cardinality,
//! * how many leaves the planner routed through a secondary index
//!   ([`PlanEstimate::index_scans`]) and the extents' [`IndexStats`]
//!   after the run (builds, hits, shapes).
//!
//! Both arms are asserted **byte-identical, order included** — the
//! columnar layer's differential contract — so a reported speedup is
//! never bought with a wrong answer.
//!
//! [`ExecMode::RowOriented`]: eve_relational::exec::ExecMode::RowOriented
//! [`ExecMode::Columnar`]: eve_relational::exec::ExecMode::Columnar
//! [`PlanEstimate::index_scans`]: eve_relational::PlanEstimate
//! [`IndexStats`]: eve_relational::IndexStats

use std::collections::BTreeMap;
use std::time::Instant;

use eve_relational::exec::{execute_with, ExecMode};
use eve_relational::{tup, DataType, IndexStats, Relation, RelationStats, Schema, Tuple};
use eve_system::query::plan_view;

use super::view_exec::Workload;

/// One row-vs-columnar comparison row.
#[derive(Debug, Clone)]
pub struct ColumnsRow {
    /// Workload name.
    pub workload: String,
    /// Row-oriented arm wall-clock, milliseconds (best of the reps).
    pub row_ms: f64,
    /// Columnar arm wall-clock, milliseconds (best of the reps).
    pub columnar_ms: f64,
    /// `row_ms / columnar_ms`.
    pub speedup: f64,
    /// Executed result cardinality (identical in both arms).
    pub rows_out: usize,
    /// Leaves the planner routed through a secondary index.
    pub index_scans: u32,
    /// Merged index counters over the workload's extents after the run.
    pub index: IndexStats,
}

fn stats_of(extents: &BTreeMap<String, Relation>) -> BTreeMap<String, RelationStats> {
    extents
        .iter()
        .map(|(name, rel)| (name.clone(), RelationStats::from_relation(rel)))
        .collect()
}

/// A deterministic long text key — realistic warehouse dimension keys are
/// not 4-byte ints, and the row arm pays for hashing every byte of them
/// on every probe while the columnar arm hashes one interned `u64`.
fn tag(k: i64) -> String {
    format!(
        "icde99-warehouse-evolution-dimension-key-{k:012}-padded-to-the-width-of-a-realistic-composite-business-key-0123456789abcdef"
    )
}

/// The wide text-join workload the ≥5× repro gate (and the ≥2× tier-1
/// gate) runs on: a wide fact extent probing a dimension on a *long text
/// key*, with a 1% hit rate. The row arm re-hashes (and re-allocates a
/// projected key tuple for) every string on every execution; the columnar
/// arm reads interned `u64` symbols straight out of the cached batch.
///
/// # Errors
///
/// Relational construction failures.
pub fn wide_text_join(scale: i64) -> eve_system::Result<Workload> {
    let dim_schema = Schema::of(&[("Tag", DataType::Text), ("P", DataType::Int)])?;
    let fact_schema = Schema::of(&[("Tag", DataType::Text), ("M", DataType::Int)])?;
    // Dimension keys are every 100th tag: 1-in-100 fact probes hit, so the
    // (mode-independent) output materialization stays tiny while the
    // per-probe key work — where the two arms differ — dominates.
    let dim = Relation::with_tuples(
        "Dim",
        dim_schema,
        (0..scale)
            .map(|k| tup![tag(100 * k), k])
            .collect::<Vec<Tuple>>(),
    )?;
    let fact = Relation::with_tuples(
        "Fact",
        fact_schema,
        (0..16 * scale)
            .map(|j| tup![tag(j), j])
            .collect::<Vec<Tuple>>(),
    )?;
    let mut extents = BTreeMap::new();
    extents.insert("Dim".to_owned(), dim);
    extents.insert("Fact".to_owned(), fact);
    let stats = stats_of(&extents);
    let view = eve_esql::parse_view(
        "CREATE VIEW WideCols AS SELECT F.M, D.P FROM Fact F, Dim D WHERE F.Tag = D.Tag",
    )?;
    Ok(Workload {
        name: format!("wide_text_join/{scale}"),
        view,
        extents,
        stats,
    })
}

/// A star shape with a *selective text filter* on the larger dimension.
/// The declared σ = 0.02 makes the cost model route that leaf through a
/// hash [`IndexScan`](eve_relational::plan::PlanNode::IndexScan): the
/// columnar arm probes the lazily built index (a build on the first rep,
/// hits afterwards), the row arm evaluates the predicate over every
/// dimension tuple.
///
/// # Errors
///
/// Relational construction failures.
#[allow(clippy::missing_panics_doc)]
pub fn star_text(scale: i64) -> eve_system::Result<Workload> {
    let fact_schema = Schema::of(&[("D1", DataType::Int), ("D2", DataType::Int)])?;
    let dim_schema = Schema::of(&[("Id", DataType::Int), ("Tag", DataType::Text)])?;
    let d1 = (scale / 8).max(1);
    let d2 = (scale / 4).max(1);
    let mut extents = BTreeMap::new();
    extents.insert(
        "Fact".to_owned(),
        Relation::with_tuples(
            "Fact",
            fact_schema,
            (0..scale)
                .map(|k| tup![k % d1, k % d2])
                .collect::<Vec<Tuple>>(),
        )?,
    );
    extents.insert(
        "Dim1".to_owned(),
        Relation::with_tuples(
            "Dim1",
            dim_schema.clone(),
            (0..d1).map(|k| tup![k, tag(k)]).collect::<Vec<Tuple>>(),
        )?,
    );
    // 1 in 50 dimension rows carries the hot tag the view selects.
    extents.insert(
        "Dim2".to_owned(),
        Relation::with_tuples(
            "Dim2",
            dim_schema,
            (0..d2)
                .map(|k| {
                    let t = if k % 50 == 0 {
                        "hot".to_owned()
                    } else {
                        tag(k)
                    };
                    tup![k, t]
                })
                .collect::<Vec<Tuple>>(),
        )?,
    );
    let mut stats = stats_of(&extents);
    stats.get_mut("Dim2").expect("registered").selectivity = 0.02;
    let view = eve_esql::parse_view(
        "CREATE VIEW StarCols AS SELECT F.D1, Dim1.Tag AS T1 \
         FROM Fact F, Dim1, Dim2 \
         WHERE F.D1 = Dim1.Id AND F.D2 = Dim2.Id AND Dim2.Tag = 'hot'",
    )?;
    Ok(Workload {
        name: format!("star_text/{scale}"),
        view,
        extents,
        stats,
    })
}

/// The canonical workload set `repro columns`, the criterion-shim bench
/// and the soak smoke all run.
///
/// # Errors
///
/// Construction failures.
pub fn workloads() -> eve_system::Result<Vec<Workload>> {
    Ok(vec![wide_text_join(1500)?, star_text(4000)?])
}

/// Plans the workload once, then executes the same plan through both
/// physical modes `reps` times (best-of timing), asserting the outputs
/// byte-identical — order included.
///
/// # Errors
///
/// Planning/execution failures, or a row/columnar divergence.
#[allow(clippy::missing_panics_doc)]
pub fn run(workload: &Workload, reps: usize) -> eve_system::Result<ColumnsRow> {
    let reps = reps.max(1);
    let plan = plan_view(&workload.view, &workload.extents, &workload.stats)?;
    for rel in workload.extents.values() {
        rel.reset_index_counters();
    }
    let mut row_ms = f64::INFINITY;
    let mut columnar_ms = f64::INFINITY;
    let mut row_out = None;
    let mut col_out = None;
    for _ in 0..reps {
        let started = Instant::now();
        let out = execute_with(&plan, ExecMode::RowOriented)?;
        row_ms = row_ms.min(started.elapsed().as_secs_f64() * 1e3);
        row_out = Some(out);

        let started = Instant::now();
        let out = execute_with(&plan, ExecMode::Columnar)?;
        columnar_ms = columnar_ms.min(started.elapsed().as_secs_f64() * 1e3);
        col_out = Some(out);
    }
    let row_out = row_out.expect("reps >= 1");
    let col_out = col_out.expect("reps >= 1");

    // Differential contract: byte-identical, order included (both modes
    // preserve probe-major, build-insertion-minor join order).
    if row_out.tuples() != col_out.tuples() {
        return Err(eve_system::Error::State {
            detail: format!(
                "row and columnar execution diverged on {}: {} vs {} tuples",
                workload.name,
                row_out.cardinality(),
                col_out.cardinality()
            ),
        });
    }

    let index = workload
        .extents
        .values()
        .fold(IndexStats::default(), |acc, r| acc.merged(r.index_stats()));
    Ok(ColumnsRow {
        workload: workload.name.clone(),
        row_ms,
        columnar_ms,
        speedup: row_ms / columnar_ms.max(1e-9),
        rows_out: col_out.cardinality(),
        index_scans: plan.estimate().index_scans,
        index,
    })
}

/// Runs the full workload set.
///
/// # Errors
///
/// As [`run`].
pub fn compare(reps: usize) -> eve_system::Result<Vec<ColumnsRow>> {
    workloads()?.iter().map(|w| run(w, reps)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_agree_on_every_workload() {
        for row in compare(1).unwrap() {
            assert!(row.row_ms >= 0.0 && row.columnar_ms >= 0.0);
            assert!(row.rows_out > 0, "{} produced no rows", row.workload);
        }
    }

    #[test]
    fn star_plan_routes_the_selective_dimension_through_an_index() {
        let w = star_text(800).unwrap();
        let row = run(&w, 2).unwrap();
        assert!(row.index_scans >= 1, "expected an IndexScan leaf: {row:?}");
        assert!(row.index.builds >= 1, "lazy build on first execution");
        assert!(
            row.index.hits >= 1,
            "later reps must be answered from the cached index: {:?}",
            row.index
        );
    }

    /// Tier-1 gate (debug build, `cargo test -q`): the columnar arm must
    /// beat the row baseline at least 2× on the wide text join. The
    /// release-mode `repro columns` gate requires ≥5× on the same shape.
    #[test]
    fn columnar_wide_text_join_at_least_2x_row() {
        let w = wide_text_join(1200).unwrap();
        let best = (0..3)
            .map(|_| run(&w, 3).unwrap().speedup)
            .fold(0.0f64, f64::max);
        assert!(
            best >= 2.0,
            "columnar execution must be at least 2x the row baseline \
             on the wide text join (best speedup {best:.2}x)"
        );
    }
}
