//! §7.6 — the pruning heuristics, validated against the model.
//!
//! The paper distils its experiments into heuristics a synchronizer could
//! use to avoid scoring every legal rewriting. Each function here checks one
//! heuristic *quantitatively* and returns the supporting numbers for the
//! report.

use eve_qc::cost::{cf_messages, cf_transfer, compositions};

use super::exp2_sites::{plan_for, Table1};
use super::exp4_cardinality::{table4, FIG15_CASES};

/// One heuristic check: name, whether the model supports it, and evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct HeuristicCheck {
    /// Short name.
    pub name: String,
    /// Whether the check passed.
    pub holds: bool,
    /// Human-readable evidence.
    pub evidence: String,
}

/// H1 — "prefer a legal rewriting with a smaller number of information
/// sources": average `CF_T` strictly increases with `m`.
#[must_use]
pub fn h1_fewer_sites_cheaper() -> HeuristicCheck {
    let params = Table1::default();
    let mut avgs = Vec::new();
    for m in 1..=params.relations {
        let dists = compositions(params.relations, m);
        let total: f64 = dists
            .iter()
            .map(|d| cf_transfer(&plan_for(d, &params)))
            .sum();
        #[allow(clippy::cast_precision_loss)]
        avgs.push(total / dists.len() as f64);
    }
    let holds = avgs.windows(2).all(|w| w[0] < w[1]);
    HeuristicCheck {
        name: "H1: fewer sites ⇒ lower transfer cost".into(),
        holds,
        evidence: format!(
            "avg CF_T by m: {}",
            avgs.iter()
                .map(|v| format!("{v:.0}"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

/// H2 — "choose the replacement closest in size to the original": among the
/// superset substitutes of Experiment 4 (`V3 ⊆ V4 ⊆ V5` sizes), `V3` ranks
/// best under *every* trade-off setting.
///
/// # Errors
///
/// QC-Model failures.
pub fn h2_closest_size_wins() -> eve_qc::Result<HeuristicCheck> {
    let mut holds = true;
    let mut evidence = String::new();
    for (q, c) in FIG15_CASES {
        let rows = table4(q, c)?;
        let rating = |n: &str| rows.iter().find(|r| r.rewriting == n).unwrap().rating;
        let ok = rating("V3") < rating("V4") && rating("V4") < rating("V5");
        holds &= ok;
        evidence.push_str(&format!(
            "case ({q}, {c}): V3/V4/V5 rated {}/{}/{}; ",
            rating("V3"),
            rating("V4"),
            rating("V5")
        ));
    }
    Ok(HeuristicCheck {
        name: "H2: closest-size superset replacement ranks best".into(),
        holds,
        evidence,
    })
}

/// H3 — "minimize messages by minimizing sites": `CF_M` is non-decreasing
/// in `m` for every distribution shape.
#[must_use]
pub fn h3_messages_grow_with_sites() -> HeuristicCheck {
    let params = Table1::default();
    let mut max_prev = 0.0f64;
    let mut holds = true;
    let mut series = Vec::new();
    for m in 1..=params.relations {
        let dists = compositions(params.relations, m);
        let min_here = dists
            .iter()
            .map(|d| cf_messages(&plan_for(d, &params), true))
            .fold(f64::INFINITY, f64::min);
        if m > 1 && min_here < max_prev {
            holds = false;
        }
        max_prev = dists
            .iter()
            .map(|d| cf_messages(&plan_for(d, &params), true))
            .fold(f64::NEG_INFINITY, f64::max);
        series.push(min_here);
    }
    HeuristicCheck {
        name: "H3: fewer sites ⇒ fewer messages".into(),
        holds,
        evidence: format!(
            "min CF_M by m: {}",
            series
                .iter()
                .map(|v| format!("{v:.0}"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

/// H4 — under workload M1 "prefer smaller relations": with updates
/// proportional to cardinality, the total cost of a rewriting referencing a
/// `c`-tuple substitute grows super-linearly in `c`, so the smallest
/// satisfactory substitute minimizes total cost.
///
/// # Errors
///
/// QC-Model failures.
pub fn h4_m1_prefers_small_relations() -> eve_qc::Result<HeuristicCheck> {
    let rows = table4(0.9, 0.1)?;
    // Total M1 cost = per-update cost × (card / 100); both factors grow
    // with the substitute size.
    let cards = [2000.0, 3000.0, 4000.0, 5000.0, 6000.0];
    let totals: Vec<f64> = rows
        .iter()
        .zip(cards)
        .map(|(r, c)| r.cost * (c / 100.0))
        .collect();
    let holds = totals.windows(2).all(|w| w[0] < w[1]);
    Ok(HeuristicCheck {
        name: "H4: under M1, smaller substitutes cost less in total".into(),
        holds,
        evidence: format!(
            "total M1 cost V1..V5: {}",
            totals
                .iter()
                .map(|v| format!("{v:.0}"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    })
}

/// Runs every heuristic check.
///
/// # Errors
///
/// QC-Model failures.
pub fn all_checks() -> eve_qc::Result<Vec<HeuristicCheck>> {
    Ok(vec![
        h1_fewer_sites_cheaper(),
        h2_closest_size_wins()?,
        h3_messages_grow_with_sites(),
        h4_m1_prefers_small_relations()?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_heuristic_holds() {
        for check in all_checks().unwrap() {
            assert!(check.holds, "{}: {}", check.name, check.evidence);
        }
    }

    #[test]
    fn evidence_is_populated() {
        for check in all_checks().unwrap() {
            assert!(!check.evidence.is_empty());
            assert!(!check.name.is_empty());
        }
    }
}
