//! Tracing overhead and determinism experiment (`repro observe`;
//! extension, ROADMAP observability direction).
//!
//! Three questions about the `eve-trace` layer, answered on the wide-join
//! workload from [`super::view_exec`]:
//!
//! 1. **Disabled-path overhead** — with tracing off (the production
//!    default) every instrumentation site costs one relaxed atomic load.
//!    The experiment measures that per-site cost with a micro loop,
//!    counts how many sites one run actually crosses (by running once
//!    with tracing on and counting captured spans), and projects the
//!    total disabled-path share of the untraced wall-clock. The gate
//!    requires ≤ 5%.
//! 2. **Byte identity** — a traced run's view extent must render byte-
//!    identically to an untraced run's: observability must never change
//!    an answer.
//! 3. **Snapshot determinism** — two identical untraced runs must move
//!    the deterministic `exec.*` counters by identical deltas (steal
//!    counts are scheduling noise and excluded), and the name-ordered
//!    snapshot must render reproducibly.
//!
//! Wall-clock of the traced arm is reported but never gated: enabling
//! spans buys ring-buffer writes whose cost is machine-dependent.

use std::collections::BTreeMap;
use std::time::Instant;

use eve_relational::Relation;
use eve_system::query::plan_view;
use eve_trace::MetricsSnapshot;

use super::serve::{self, ServeConfig};
use super::view_exec::{wide_join, Workload};

/// Experiment knobs.
#[derive(Debug, Clone, Copy)]
pub struct ObserveConfig {
    /// Wide-join scale (rows per big relation).
    pub scale: i64,
    /// Repetitions per arm (best-of timing).
    pub reps: usize,
    /// Also run a small serve workload traced and untraced (skipped in
    /// the tier-1 tests, on in `repro observe` — it spins up a real
    /// server + oracle per arm).
    pub with_serve: bool,
}

impl Default for ObserveConfig {
    fn default() -> ObserveConfig {
        ObserveConfig {
            scale: 1500,
            reps: 5,
            with_serve: true,
        }
    }
}

/// The full observe report.
#[derive(Debug, Clone)]
pub struct ObserveReport {
    /// Workload name.
    pub workload: String,
    /// Result rows of the view.
    pub rows: usize,
    /// Untraced arm wall-clock, milliseconds (best of reps).
    pub untraced_ms: f64,
    /// Traced arm wall-clock, milliseconds (best of reps).
    pub traced_ms: f64,
    /// `(traced - untraced) / untraced`, percent (reported, not gated).
    pub enabled_overhead_pct: f64,
    /// Measured cost of one *disabled* instrumentation site, nanoseconds.
    pub disabled_site_ns: f64,
    /// Measured cost of one *enabled* instrumentation site, nanoseconds.
    pub enabled_site_ns: f64,
    /// Spans one traced run records (= instrumentation sites crossed).
    pub spans_per_run: u64,
    /// Projected disabled-path share of the untraced wall-clock, percent:
    /// `spans_per_run × disabled_site_ns / untraced_ms`. Gated ≤ 5%.
    pub projected_disabled_overhead_pct: f64,
    /// Whether the traced extent rendered byte-identically to the
    /// untraced extent.
    pub extents_identical: bool,
    /// Whether two identical runs moved the deterministic `exec.*`
    /// counters by identical deltas.
    pub snapshot_deterministic: bool,
    /// Serve-workload loaded phase with tracing off, milliseconds
    /// (`None` when [`ObserveConfig::with_serve`] is off).
    pub serve_untraced_ms: Option<f64>,
    /// Serve-workload loaded phase with tracing on, milliseconds.
    pub serve_traced_ms: Option<f64>,
}

fn execute(workload: &Workload) -> Result<Relation, String> {
    let plan = plan_view(&workload.view, &workload.extents, &workload.stats)
        .map_err(|e| format!("plan failed: {e}"))?;
    plan.execute().map_err(|e| format!("execute failed: {e}"))
}

/// Per-counter deltas of the deterministic `exec.*` family between two
/// snapshots. `exec.steals` is excluded: steal counts depend on thread
/// scheduling, by design.
fn exec_family_delta(before: &MetricsSnapshot, after: &MetricsSnapshot) -> BTreeMap<String, u64> {
    after
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("exec.") && name.as_str() != "exec.steals")
        .map(|(name, v)| {
            let base = before.counters.get(name).copied().unwrap_or(0);
            (name.clone(), v.saturating_sub(base))
        })
        .collect()
}

/// Runs both arms, the determinism pin and the site micro-benchmarks.
///
/// Toggles the process-global span collector; callers running inside a
/// parallel test binary must serialize invocations.
///
/// # Errors
///
/// Workload construction or evaluation failures, human-readable.
#[allow(clippy::cast_precision_loss)]
pub fn run(cfg: &ObserveConfig) -> Result<ObserveReport, String> {
    let workload = wide_join(cfg.scale).map_err(|e| format!("workload failed: {e}"))?;
    let reps = cfg.reps.max(1);

    eve_trace::set_enabled(false);
    eve_trace::clear_spans();

    // Untraced arm: tracing disabled, the production default.
    let mut untraced_ms = f64::INFINITY;
    let mut untraced_out = None;
    for _ in 0..reps {
        let started = Instant::now();
        let out = execute(&workload)?;
        untraced_ms = untraced_ms.min(started.elapsed().as_secs_f64() * 1e3);
        untraced_out = Some(out);
    }
    let untraced_out = untraced_out.expect("reps >= 1");

    // Snapshot-determinism pin: the same run twice must move the
    // deterministic exec counters by the same amounts.
    let s0 = eve_trace::global().snapshot();
    execute(&workload)?;
    let s1 = eve_trace::global().snapshot();
    execute(&workload)?;
    let s2 = eve_trace::global().snapshot();
    let snapshot_deterministic = exec_family_delta(&s0, &s1) == exec_family_delta(&s1, &s2);

    // Traced arm: spans on, ring cleared per rep so the final capture
    // holds exactly one run's spans.
    eve_trace::set_enabled(true);
    let mut traced_ms = f64::INFINITY;
    let mut traced_out = None;
    for _ in 0..reps {
        eve_trace::clear_spans();
        let started = Instant::now();
        let out = execute(&workload)?;
        traced_ms = traced_ms.min(started.elapsed().as_secs_f64() * 1e3);
        traced_out = Some(out);
    }
    let spans_per_run = eve_trace::snapshot_events().len() as u64;
    let traced_out = traced_out.expect("reps >= 1");
    eve_trace::set_enabled(false);
    eve_trace::clear_spans();

    // Byte identity: the rendered extents (schema line + every tuple, in
    // the executor's deterministic output order) must match exactly.
    let extents_identical = untraced_out.to_string() == traced_out.to_string()
        && untraced_out.tuples() == traced_out.tuples();

    // Per-site micro cost, disabled then enabled.
    let disabled_iters = 1_000_000u32;
    let started = Instant::now();
    for _ in 0..disabled_iters {
        let _site = eve_trace::span("observe.site");
    }
    let disabled_site_ns = started.elapsed().as_nanos() as f64 / f64::from(disabled_iters);

    eve_trace::set_enabled(true);
    let enabled_iters = 200_000u32;
    let started = Instant::now();
    for _ in 0..enabled_iters {
        let _site = eve_trace::span("observe.site");
    }
    let enabled_site_ns = started.elapsed().as_nanos() as f64 / f64::from(enabled_iters);
    eve_trace::set_enabled(false);
    eve_trace::clear_spans();

    let projected_disabled_overhead_pct = if untraced_ms > 0.0 {
        (spans_per_run as f64 * disabled_site_ns / 1e6) / untraced_ms * 100.0
    } else {
        0.0
    };
    let enabled_overhead_pct = if untraced_ms > 0.0 {
        (traced_ms - untraced_ms) / untraced_ms * 100.0
    } else {
        0.0
    };

    // Serve workload, both arms: a real server + oracle per arm, so the
    // numbers cover request routing, WAL appends and view maintenance
    // under tracing. Reported only — wall-clock of a full serve run is
    // too noisy to gate.
    let serve_cfg = ServeConfig {
        tenants: 2,
        clients_per_tenant: 8,
        writer_rounds: 6,
        reads_per_client: 4,
        shards: 2,
        readers: 2,
        driver_threads: 4,
    };
    let (serve_untraced_ms, serve_traced_ms) = if cfg.with_serve {
        let untraced = serve::run(&serve_cfg)?;
        eve_trace::set_enabled(true);
        let traced = serve::run(&serve_cfg);
        eve_trace::set_enabled(false);
        eve_trace::clear_spans();
        let traced = traced?;
        if traced.errors != 0 || untraced.errors != 0 || !traced.byte_identical {
            return Err(format!(
                "serve arms must stay clean: untraced errors {}, traced errors {}, identical {}",
                untraced.errors, traced.errors, traced.byte_identical
            ));
        }
        (Some(untraced.elapsed_ms), Some(traced.elapsed_ms))
    } else {
        (None, None)
    };

    Ok(ObserveReport {
        workload: workload.name,
        rows: traced_out.cardinality(),
        untraced_ms,
        traced_ms,
        enabled_overhead_pct,
        disabled_site_ns,
        enabled_site_ns,
        spans_per_run,
        projected_disabled_overhead_pct,
        extents_identical,
        snapshot_deterministic,
        serve_untraced_ms,
        serve_traced_ms,
    })
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    use super::*;

    /// `run` toggles the process-global span collector; these tests
    /// serialize against each other so neither observes the other's
    /// enable/clear calls mid-flight.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn traced_run_extents_byte_identical_to_untraced() {
        let _serialized = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let report = run(&ObserveConfig {
            scale: 300,
            reps: 2,
            with_serve: false,
        })
        .unwrap();
        assert!(report.rows > 0);
        assert!(
            report.extents_identical,
            "tracing changed an answer: {report:?}"
        );
        assert!(
            report.spans_per_run > 0,
            "the traced arm captured no spans — instrumentation is dead"
        );
    }

    #[test]
    fn disabled_path_overhead_within_5_percent() {
        let _serialized = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let report = run(&ObserveConfig {
            scale: 300,
            reps: 2,
            with_serve: false,
        })
        .unwrap();
        assert!(
            report.projected_disabled_overhead_pct <= 5.0,
            "disabled-path projection {}% over the 5% budget \
             ({} spans × {} ns against {} ms)",
            report.projected_disabled_overhead_pct,
            report.spans_per_run,
            report.disabled_site_ns,
            report.untraced_ms,
        );
    }
}
