//! Experiment 3 — "Relation Distribution" (§7.3, Figure 14).
//!
//! For a fixed number of sites, does the *evenness* of the relation
//! distribution matter? Fig. 14 plots, per grouped distribution (orderings
//! of the same multiset collapsed, e.g. `(1,5) ~ (5,1)`), the best and worst
//! bytes-transferred over the group members, for three join selectivities.
//!
//! Finding (§7.3): with fast-growing deltas (`js = 0.005`) even
//! distributions win; with shrinking deltas (`js = 0.001`) skewed
//! distributions win; in between there is no clear effect — so the number
//! of sites (Experiment 2) dominates the distribution choice.

use std::collections::BTreeMap;

use eve_qc::cost::{cf_transfer, compositions};

use super::exp2_sites::{plan_for, Table1};

/// One Fig. 14 bar: a grouped distribution with its best / worst / average
/// transfer cost over the orderings in the group.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14Group {
    /// Number of sites.
    pub sites: usize,
    /// Group label, e.g. `"1/5"` for the multiset {1, 5}.
    pub label: String,
    /// Minimum `CF_T` over the group (best legal rewriting).
    pub best: f64,
    /// Maximum `CF_T` over the group (worst legal rewriting).
    pub worst: f64,
    /// Group average.
    pub average: f64,
}

/// Computes the Fig. 14 groups for one join selectivity over 2–4 sites
/// (the paper's x-axis: 1/5, 2/4, 3/3, 1/1/4, 1/2/3, 2/2/2, 1/1/1/3,
/// 1/1/2/2).
#[must_use]
pub fn figure14(js: f64) -> Vec<Fig14Group> {
    let params = Table1 {
        join_selectivity: js,
        ..Table1::default()
    };
    let mut out = Vec::new();
    for m in 2..=4usize {
        let mut groups: BTreeMap<Vec<usize>, Vec<f64>> = BTreeMap::new();
        for d in compositions(params.relations, m) {
            let mut key = d.clone();
            key.sort_unstable();
            let cost = cf_transfer(&plan_for(&d, &params));
            groups.entry(key).or_default().push(cost);
        }
        for (key, costs) in groups {
            let label = key
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("/");
            let best = costs.iter().copied().fold(f64::INFINITY, f64::min);
            let worst = costs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            #[allow(clippy::cast_precision_loss)]
            let average = costs.iter().sum::<f64>() / costs.len() as f64;
            out.push(Fig14Group {
                sites: m,
                label,
                best,
                worst,
                average,
            });
        }
    }
    out
}

/// The three join selectivities of Fig. 14(a–c).
pub const FIG14_JS: [f64; 3] = [0.001, 0.0022, 0.005];

#[cfg(test)]
mod tests {
    use super::*;

    fn group<'a>(rows: &'a [Fig14Group], label: &str) -> &'a Fig14Group {
        rows.iter().find(|g| g.label == label).unwrap()
    }

    #[test]
    fn expected_groups_present() {
        let rows = figure14(0.005);
        let labels: Vec<&str> = rows.iter().map(|g| g.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["1/5", "2/4", "3/3", "1/1/4", "1/2/3", "2/2/2", "1/1/1/3", "1/1/2/2"]
        );
    }

    #[test]
    fn growing_deltas_favour_even_distributions() {
        // Fig. 14(c), js = 0.005: within two sites, evenness minimizes the
        // *worst-case* transfer — the skewed groups contain expensive
        // orderings (update at the heavy site) that 3/3 avoids.
        let rows = figure14(0.005);
        let even = group(&rows, "3/3");
        assert!(even.worst < group(&rows, "2/4").worst);
        assert!(even.worst < group(&rows, "1/5").worst);
        // Three sites: 2/2/2 beats the worst orderings of 1/1/4 and 1/2/3.
        let even3 = group(&rows, "2/2/2");
        assert!(even3.worst < group(&rows, "1/1/4").worst);
        assert!(even3.worst < group(&rows, "1/2/3").worst);
    }

    #[test]
    fn shrinking_deltas_favour_skewed_distributions() {
        // Fig. 14(a), js = 0.001: the skewed 1/5 group beats 3/3.
        let rows = figure14(0.001);
        assert!(group(&rows, "1/5").average < group(&rows, "3/3").average);
    }

    #[test]
    fn best_is_at_most_worst() {
        for js in FIG14_JS {
            for g in figure14(js) {
                assert!(g.best <= g.average && g.average <= g.worst, "{g:?}");
            }
        }
    }

    #[test]
    fn site_count_dominates_distribution_choice() {
        // §7.3's conclusion: minimizing the number of ISs has priority over
        // picking a particular distribution — on average, every extra site
        // costs more than any distribution choice saves.
        let rows = figure14(0.005);
        let mean_for = |m: usize| {
            let groups: Vec<&Fig14Group> = rows.iter().filter(|g| g.sites == m).collect();
            #[allow(clippy::cast_precision_loss)]
            {
                groups.iter().map(|g| g.average).sum::<f64>() / groups.len() as f64
            }
        };
        assert!(mean_for(2) < mean_for(3));
        assert!(mean_for(3) < mean_for(4));
    }
}
