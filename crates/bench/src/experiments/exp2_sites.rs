//! Experiment 2 — "Ratio between Relations and ISs" (§7.2, Tables 1–2,
//! Figure 13).
//!
//! Six relations with Table 1 statistics are spread over `m ∈ 1..6`
//! information sources in every possible distribution (Table 2); data
//! updates originate at the first listed site. For each `m` the three cost
//! factors are averaged over the distributions, yielding the Fig. 13 series:
//! messages and bytes grow with the number of sites, I/O stays flat.

use eve_qc::cost::{cf_io, cf_messages, cf_transfer, compositions};
use eve_qc::{IoBound, MaintenancePlan};

/// One Fig. 13 data point: per-`m` averages of the single-update cost
/// factors over all Table 2 distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Row {
    /// Number of information sources `m`.
    pub sites: usize,
    /// Number of Table 2 distributions averaged.
    pub distributions: usize,
    /// Average `CF_M` (update notification included).
    pub messages: f64,
    /// Average `CF_T` in bytes.
    pub bytes: f64,
    /// Average `CF_IO`, Eq. 33 lower bound.
    pub io_lower: f64,
    /// Average `CF_IO`, Eq. 33 upper bound.
    pub io_upper: f64,
}

/// The Table 1 parameter set driving this experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1 {
    /// Total relations `n`.
    pub relations: usize,
    /// Cardinality `|R|` of every relation.
    pub cardinality: f64,
    /// Tuple size `s` in bytes.
    pub tuple_bytes: f64,
    /// Local selectivity `σ`.
    pub selectivity: f64,
    /// Join selectivity `js`.
    pub join_selectivity: f64,
    /// Blocking factor `bfr`.
    pub blocking_factor: f64,
}

impl Default for Table1 {
    fn default() -> Self {
        Table1 {
            relations: 6,
            cardinality: 400.0,
            tuple_bytes: 100.0,
            selectivity: 0.5,
            join_selectivity: 0.005,
            blocking_factor: 10.0,
        }
    }
}

/// Computes the Fig. 13 series for `m = 1 ..= relations`.
#[must_use]
pub fn figure13(params: &Table1) -> Vec<Fig13Row> {
    (1..=params.relations)
        .map(|m| {
            let dists = compositions(params.relations, m);
            let mut messages = 0.0;
            let mut bytes = 0.0;
            let mut io_lower = 0.0;
            let mut io_upper = 0.0;
            for d in &dists {
                let plan = plan_for(d, params);
                messages += cf_messages(&plan, true);
                bytes += cf_transfer(&plan);
                io_lower += cf_io(&plan, IoBound::Lower);
                io_upper += cf_io(&plan, IoBound::Upper);
            }
            #[allow(clippy::cast_precision_loss)]
            let n = dists.len() as f64;
            Fig13Row {
                sites: m,
                distributions: dists.len(),
                messages: messages / n,
                bytes: bytes / n,
                io_lower: io_lower / n,
                io_upper: io_upper / n,
            }
        })
        .collect()
}

/// Builds a maintenance plan for one Table 2 distribution with arbitrary
/// Table 1 parameters (the update originates at the first site's first
/// relation).
#[must_use]
pub fn plan_for(distribution: &[usize], params: &Table1) -> MaintenancePlan {
    let mut plan = MaintenancePlan::uniform(distribution, params.join_selectivity)
        .expect("valid distribution");
    let patch = |spec: &mut eve_qc::RelSpec| {
        spec.cardinality = params.cardinality;
        spec.tuple_bytes = params.tuple_bytes;
        spec.selectivity = params.selectivity;
        spec.blocking_factor = params.blocking_factor;
    };
    patch(&mut plan.origin);
    for site in &mut plan.sites {
        for rel in &mut site.relations {
            patch(rel);
        }
    }
    plan
}

/// One sensitivity-sweep row (extension): Fig. 13's bytes series under
/// varied join selectivity and cardinality.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityRow {
    /// Join selectivity swept.
    pub js: f64,
    /// Relation cardinality swept.
    pub cardinality: f64,
    /// Per-`m` average `CF_T` (index 0 = one site).
    pub bytes_by_sites: Vec<f64>,
}

/// Sensitivity of the Fig. 13 bytes-transferred series to `js` and `|R|`:
/// the increasing-with-`m` shape is robust whenever deltas do not shrink
/// (`σ·js·|R| ≥ 1`), and flattens toward the notification floor when they
/// do — quantifying how far the paper's conclusion generalizes beyond
/// Table 1.
#[must_use]
pub fn sensitivity(js_values: &[f64], cards: &[f64]) -> Vec<SensitivityRow> {
    let mut out = Vec::new();
    for &js in js_values {
        for &card in cards {
            let params = Table1 {
                join_selectivity: js,
                cardinality: card,
                ..Table1::default()
            };
            let bytes_by_sites = figure13(&params).into_iter().map(|r| r.bytes).collect();
            out.push(SensitivityRow {
                js,
                cardinality: card,
                bytes_by_sites,
            });
        }
    }
    out
}

/// The Table 2 distribution lists per `m` (for display).
#[must_use]
pub fn table2(relations: usize) -> Vec<(usize, Vec<Vec<usize>>)> {
    (1..=relations)
        .map(|m| (m, compositions(relations, m)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_and_bytes_increase_with_sites() {
        // §7.2's finding: "the number of messages exchanged and the number
        // of bytes transferred … both increase when the number of
        // information sources involved in a view increases."
        let rows = figure13(&Table1::default());
        assert_eq!(rows.len(), 6);
        for w in rows.windows(2) {
            assert!(w[0].messages < w[1].messages, "messages not increasing");
            assert!(w[0].bytes < w[1].bytes, "bytes not increasing");
        }
    }

    #[test]
    fn io_is_flat_across_sites() {
        // The I/O factor depends on the number of joins (five), not on the
        // distribution: 31 I/Os per update at the Eq. 33 lower bound.
        let rows = figure13(&Table1::default());
        for r in &rows {
            assert!(
                (r.io_lower - 31.0).abs() < 1e-9,
                "m = {}: {}",
                r.sites,
                r.io_lower
            );
            assert!((r.io_upper - 62.0).abs() < 1e-9);
        }
    }

    #[test]
    fn endpoint_values_match_hand_computation() {
        let rows = figure13(&Table1::default());
        // m = 1: CF_M = 3 (notification + one round trip), CF_T = 800.
        assert!((rows[0].messages - 3.0).abs() < 1e-9);
        assert!((rows[0].bytes - 800.0).abs() < 1e-9);
        // m = 6: CF_M = 11, CF_T = 3600 (single distribution).
        assert!((rows[5].messages - 11.0).abs() < 1e-9);
        assert!((rows[5].bytes - 3600.0).abs() < 1e-9);
        assert_eq!(rows[5].distributions, 1);
    }

    #[test]
    fn table2_row_counts() {
        let t = table2(6);
        let counts: Vec<usize> = t.iter().map(|(_, d)| d.len()).collect();
        assert_eq!(counts, vec![1, 5, 10, 10, 5, 1]);
    }

    #[test]
    fn sensitivity_shape_tracks_delta_growth() {
        let rows = sensitivity(&[0.001, 0.005], &[100.0, 400.0, 1600.0]);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert_eq!(row.bytes_by_sites.len(), 6);
            let growth = 0.5 * row.js * row.cardinality; // σ·js·|R|
            let increasing = row.bytes_by_sites.windows(2).all(|w| w[0] <= w[1] + 1e-9);
            if growth >= 1.0 {
                assert!(increasing, "growth {growth}: {row:?}");
            }
            // All series stay above the notification floor.
            assert!(row.bytes_by_sites.iter().all(|&b| b >= 100.0));
        }
        // Bigger relations cost strictly more at every m (fixed js ≥ 1/σ|R|).
        let small = rows
            .iter()
            .find(|r| r.js == 0.005 && r.cardinality == 400.0)
            .unwrap();
        let big = rows
            .iter()
            .find(|r| r.js == 0.005 && r.cardinality == 1600.0)
            .unwrap();
        for (a, b) in small.bytes_by_sites.iter().zip(&big.bytes_by_sites) {
            assert!(a < b);
        }
    }

    #[test]
    fn message_range_stays_within_section_6_2_bounds() {
        // CF_M ∈ [0, 2m] + 1 notification.
        let rows = figure13(&Table1::default());
        for r in &rows {
            #[allow(clippy::cast_precision_loss)]
            let m = r.sites as f64;
            assert!(r.messages >= 1.0);
            assert!(r.messages <= 2.0 * m + 1.0);
        }
    }
}
