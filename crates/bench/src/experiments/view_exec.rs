//! Cost-ordered planner vs the naive evaluator (extension; ROADMAP "fast
//! as the hardware allows").
//!
//! Executes the same view workloads through both evaluation paths of
//! `eve_system::query` — [`evaluate_view_naive`] (the historical
//! left-to-right fold) and the planned path ([`plan_view`] + execute) —
//! and reports, per workload:
//!
//! * wall-clock of both arms and the speedup,
//! * the planner's [`PlanEstimate`] (estimated rows, I/O blocks, total
//!   abstract cost) next to the *executed* cardinality,
//! * the analytic recompute I/O from `eve_core`'s cost model
//!   ([`eve_qc::cost::cf_recompute_io`]) as the cross-check: with declared
//!   statistics attached, the planner's scan I/O must coincide with the
//!   analytic full-scan sum.
//!
//! Both arms are asserted to produce identical bags (the differential
//! contract), so a reported speedup is never bought with a wrong answer.
//!
//! [`evaluate_view_naive`]: eve_system::query::evaluate_view_naive
//! [`plan_view`]: eve_system::query::plan_view
//! [`PlanEstimate`]: eve_relational::PlanEstimate

use std::collections::BTreeMap;
use std::time::Instant;

use eve_esql::ViewDef;
use eve_qc::cost::cf_recompute_io;
use eve_qc::RelSpec;
use eve_relational::{tup, DataType, Relation, RelationStats, Schema, Tuple};
use eve_system::query::{evaluate_view_naive, plan_view};

/// A named view-execution workload: extents, declared statistics and the
/// view to evaluate.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name.
    pub name: String,
    /// The view under evaluation.
    pub view: ViewDef,
    /// Base extents keyed by relation name.
    pub extents: BTreeMap<String, Relation>,
    /// Declared §6.1 statistics (consistent with the extents).
    pub stats: BTreeMap<String, RelationStats>,
}

/// One naive-vs-planned comparison row.
#[derive(Debug, Clone)]
pub struct ViewExecRow {
    /// Workload name.
    pub workload: String,
    /// Number of FROM relations.
    pub relations: usize,
    /// Naive arm wall-clock, milliseconds (best of the repetitions).
    pub naive_ms: f64,
    /// Planned arm wall-clock (plan + execute), milliseconds.
    pub planned_ms: f64,
    /// `naive_ms / planned_ms`.
    pub speedup: f64,
    /// Planner-estimated result cardinality.
    pub est_rows: f64,
    /// Executed result cardinality.
    pub actual_rows: usize,
    /// Planner-estimated scan I/O blocks.
    pub est_io_blocks: f64,
    /// Analytic recompute I/O from `eve_core` (`Σ ⌈|R|/bfr⌉`).
    pub analytic_io: f64,
    /// Planner-estimated total abstract cost (I/O + tuple touches).
    pub est_total: f64,
}

fn stats_of(extents: &BTreeMap<String, Relation>) -> BTreeMap<String, RelationStats> {
    extents
        .iter()
        .map(|(name, rel)| (name.clone(), RelationStats::from_relation(rel)))
        .collect()
}

/// The wide-join workload the ≥3× speedup gate runs on: two wide relations
/// whose declared join (on a low-cardinality grouping attribute) explodes
/// quadratically, plus a small, highly selective relation listed *last* in
/// FROM order. The naive left-to-right fold materializes the wide
/// intermediate; the planner starts from the filtered small relation and
/// never builds it.
///
/// # Errors
///
/// Relational construction failures.
#[allow(clippy::missing_panics_doc)]
pub fn wide_join(scale: i64) -> eve_system::Result<Workload> {
    let groups = 30i64;
    let kp = Schema::of(&[("K", DataType::Int), ("P", DataType::Int)])?;
    let kq = Schema::of(&[("K", DataType::Int), ("Q", DataType::Int)])?;
    let rows_kp = |n: i64| -> Vec<Tuple> { (0..n).map(|k| tup![k, k % groups]).collect() };
    let big1 = Relation::with_tuples("Big1", kp.clone(), rows_kp(scale))?;
    let big2 = Relation::with_tuples("Big2", kp, rows_kp(scale))?;
    let small = Relation::with_tuples(
        "Small",
        kq,
        (0..scale / 10).map(|k| tup![k, k % 50]).collect(),
    )?;
    let mut extents = BTreeMap::new();
    extents.insert("Big1".to_owned(), big1);
    extents.insert("Big2".to_owned(), big2);
    extents.insert("Small".to_owned(), small);
    let stats = stats_of(&extents);
    let view = eve_esql::parse_view(
        "CREATE VIEW Wide AS SELECT A.K, B.K AS BK \
         FROM Big1 A, Big2 B, Small S \
         WHERE A.P = B.P AND A.K = S.K AND S.Q = 0",
    )?;
    Ok(Workload {
        name: format!("wide_join/{scale}"),
        view,
        extents,
        stats,
    })
}

/// A uniform chain join — both evaluators pick essentially the same plan,
/// so this pins the "no regression on friendly shapes" end of the table.
///
/// # Errors
///
/// Relational construction failures.
pub fn chain_join(scale: i64) -> eve_system::Result<Workload> {
    let schema = Schema::of(&[("K", DataType::Int), ("P", DataType::Int)])?;
    let mut extents = BTreeMap::new();
    for name in ["C1", "C2", "C3"] {
        extents.insert(
            name.to_owned(),
            Relation::with_tuples(
                name,
                schema.clone(),
                (0..scale).map(|k| tup![k, k]).collect(),
            )?,
        );
    }
    let stats = stats_of(&extents);
    let view = eve_esql::parse_view(
        "CREATE VIEW Chain AS SELECT A.K FROM C1 A, C2 B, C3 C \
         WHERE A.K = B.K AND B.K = C.K",
    )?;
    Ok(Workload {
        name: format!("chain_join/{scale}"),
        view,
        extents,
        stats,
    })
}

/// A star join whose selective dimension is listed *last* in FROM order
/// (mildly adversarial for the naive fold: it joins the full fact table
/// before the filter bites). The declared statistics carry the *accurate*
/// selectivity of the dimension filter — the §6.1 contract that the MKB's
/// registered σ describes the relation's condition.
///
/// # Errors
///
/// Relational construction failures.
#[allow(clippy::missing_panics_doc)]
pub fn star_join(scale: i64) -> eve_system::Result<Workload> {
    let fact_schema = Schema::of(&[("D1", DataType::Int), ("D2", DataType::Int)])?;
    let dim_schema = Schema::of(&[("Id", DataType::Int), ("Tag", DataType::Int)])?;
    let mut extents = BTreeMap::new();
    extents.insert(
        "Fact".to_owned(),
        Relation::with_tuples(
            "Fact",
            fact_schema,
            (0..scale).map(|k| tup![k % 100, k % 25]).collect(),
        )?,
    );
    extents.insert(
        "Dim1".to_owned(),
        Relation::with_tuples(
            "Dim1",
            dim_schema.clone(),
            (0..100i64).map(|k| tup![k, k % 4]).collect(),
        )?,
    );
    extents.insert(
        "Dim2".to_owned(),
        Relation::with_tuples(
            "Dim2",
            dim_schema,
            (0..25i64).map(|k| tup![k, k % 5]).collect(),
        )?,
    );
    let mut stats = stats_of(&extents);
    // Dim2's condition (`Tag = 0` over Tag = k % 5) keeps 1 in 5 tuples.
    stats.get_mut("Dim2").expect("registered").selectivity = 0.2;
    let view = eve_esql::parse_view(
        "CREATE VIEW Star AS SELECT F.D1, Dim1.Tag AS T1 \
         FROM Fact F, Dim1, Dim2 \
         WHERE F.D1 = Dim1.Id AND F.D2 = Dim2.Id AND Dim2.Tag = 0",
    )?;
    Ok(Workload {
        name: format!("star_join/{scale}"),
        view,
        extents,
        stats,
    })
}

/// The canonical workload set the bench, the soak gate and `repro
/// view-exec` all run.
///
/// # Errors
///
/// Construction failures.
pub fn workloads() -> eve_system::Result<Vec<Workload>> {
    Ok(vec![wide_join(1500)?, star_join(4000)?, chain_join(2000)?])
}

/// Runs one workload through both arms `reps` times (best-of timing),
/// asserting bag equality between them.
///
/// # Errors
///
/// Evaluation failures, or naive/planned divergence.
#[allow(clippy::cast_precision_loss, clippy::missing_panics_doc)]
pub fn run(workload: &Workload, reps: usize) -> eve_system::Result<ViewExecRow> {
    let reps = reps.max(1);
    let mut naive_ms = f64::INFINITY;
    let mut planned_ms = f64::INFINITY;
    let mut naive_out = None;
    let mut planned_out = None;
    for _ in 0..reps {
        let started = Instant::now();
        let out = evaluate_view_naive(&workload.view, &workload.extents)?;
        naive_ms = naive_ms.min(started.elapsed().as_secs_f64() * 1e3);
        naive_out = Some(out);

        let started = Instant::now();
        let plan = plan_view(&workload.view, &workload.extents, &workload.stats)?;
        let out = plan.execute()?;
        planned_ms = planned_ms.min(started.elapsed().as_secs_f64() * 1e3);
        planned_out = Some((plan, out));
    }
    let naive_out = naive_out.expect("reps >= 1");
    let (plan, planned_rel) = planned_out.expect("reps >= 1");

    // Differential contract: identical bags (join reordering may permute
    // physical row order).
    let mut a = naive_out.tuples().to_vec();
    let mut b = planned_rel.tuples().to_vec();
    a.sort();
    b.sort();
    if a != b {
        return Err(eve_system::Error::State {
            detail: format!(
                "planned and naive evaluation diverged on {}: {} vs {} tuples",
                workload.name,
                naive_out.cardinality(),
                planned_rel.cardinality()
            ),
        });
    }

    // Analytic cross-check: eve_core's recompute I/O over the declared
    // statistics.
    let specs: Vec<RelSpec> = workload
        .view
        .from
        .iter()
        .map(|item| {
            let s = &workload.stats[&item.relation];
            RelSpec {
                name: item.relation.clone(),
                cardinality: s.cardinality as f64,
                tuple_bytes: s.tuple_bytes as f64,
                selectivity: s.selectivity,
                blocking_factor: s.blocking_factor as f64,
                join_selectivity: 0.005,
            }
        })
        .collect();
    let analytic_io = cf_recompute_io(&specs);

    let est = plan.estimate();
    Ok(ViewExecRow {
        workload: workload.name.clone(),
        relations: workload.view.from.len(),
        naive_ms,
        planned_ms,
        speedup: naive_ms / planned_ms.max(1e-9),
        est_rows: est.output_rows,
        actual_rows: planned_rel.cardinality(),
        est_io_blocks: est.io_blocks,
        analytic_io,
        est_total: est.total,
    })
}

/// Runs the full workload set.
///
/// # Errors
///
/// As [`run`].
pub fn compare(reps: usize) -> eve_system::Result<Vec<ViewExecRow>> {
    workloads()?.iter().map(|w| run(w, reps)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_agree_on_every_workload() {
        for row in compare(1).unwrap() {
            assert!(row.naive_ms >= 0.0 && row.planned_ms >= 0.0);
            assert!(row.actual_rows > 0, "{} produced no rows", row.workload);
        }
    }

    #[test]
    fn planner_io_estimate_matches_analytic_recompute_io() {
        // With declared statistics attached, the planner's scan I/O is the
        // analytic model's `Σ ⌈|R|/bfr⌉` recomputation charge — or less,
        // when the cost model routes a selective literal clause through a
        // secondary index instead of a full scan.
        for workload in workloads().unwrap() {
            let plan = plan_view(&workload.view, &workload.extents, &workload.stats).unwrap();
            let row = run(&workload, 1).unwrap();
            let est = plan.estimate();
            assert!(
                est.io_blocks <= row.analytic_io + 1e-9,
                "{}: planner {} vs analytic {}",
                workload.name,
                est.io_blocks,
                row.analytic_io
            );
            if est.index_scans == 0 {
                assert!(
                    (est.io_blocks - row.analytic_io).abs() < 1e-9,
                    "{}: without an index scan the estimates must agree \
                     exactly: planner {} vs analytic {}",
                    workload.name,
                    est.io_blocks,
                    row.analytic_io
                );
            }
        }
    }

    #[test]
    fn wide_join_plan_starts_from_the_filtered_small_relation() {
        let w = wide_join(300).unwrap();
        let plan = plan_view(&w.view, &w.extents, &w.stats).unwrap();
        assert_eq!(plan.join_order_bindings()[0], "S", "{}", plan.explain());
    }
}
