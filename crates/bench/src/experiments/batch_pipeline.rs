//! The batched multi-site synchronization pipeline vs. the legacy op-by-op
//! loop (extension; ROADMAP "batching" direction).
//!
//! Workload shape: `sites` independent information sources, each hosting a
//! two-relation join view `V{i} = R{i}_a ⋈ R{i}_b`, a selection view
//! `W{i}` over the colocated equivalent replica `R{i}_c ≡ R{i}_b`. The op
//! stream interleaves data updates (inserts/deletes across all sites) with
//! capability changes — relation drops repaired by swapping onto the
//! replica, and relation renames — in a deterministic seeded mix.
//!
//! Both arms execute the *same* ops to the *same* final state (asserted,
//! together with identical measured I/O + messages); only the scheduling
//! differs. The batched arm uses [`EveEngine::apply_batch`], the
//! sequential arm the legacy per-op paths. The analytic batch cost
//! (`eve_qc::workload::batch_total_cost`) is reported alongside, priced
//! per update origin over the initial views.

use std::collections::BTreeMap;
use std::time::Instant;

use eve_misd::{AttributeInfo, PcConstraint, PcRelationship, PcSide, RelationInfo, SiteId};
use eve_qc::{plans_for_view, workload, QcParams};
use eve_relational::{DataType, Relation, Schema, Tuple, Value};
use eve_system::{DataUpdate, EveEngine, EvolutionOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of one batched-vs-sequential comparison.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Number of sites (and views) in the space.
    pub sites: u32,
    /// Ops in the workload.
    pub ops: usize,
    /// Data ops among them.
    pub data_ops: usize,
    /// Capability ops among them.
    pub capability_ops: usize,
    /// Wall-clock of the sequential arm, milliseconds.
    pub sequential_ms: f64,
    /// Wall-clock of the batched arm, milliseconds.
    pub batched_ms: f64,
    /// `sequential_ms / batched_ms`.
    pub speedup: f64,
    /// Widest data stage of the batched plan (concurrency opportunity).
    pub max_width: usize,
    /// Measured block I/Os (identical across arms — asserted).
    pub total_io: u64,
    /// Measured messages (identical across arms — asserted).
    pub total_messages: u64,
    /// Analytic cost of the batch's data updates over the initial views
    /// (Eq. 24 summed per origin, `eve_qc::workload::batch_total_cost`).
    pub analytic_cost: f64,
}

fn tuple(k: i64) -> Tuple {
    Tuple::new(vec![Value::Int(k), Value::Int(k % 5)])
}

/// Builds the canonical `sites`-site space: per site, relations `R{i}_a`,
/// `R{i}_b` and the equivalent replica `R{i}_c ≡ R{i}_b` (all 40 rows),
/// the join view `V{i} = R{i}_a ⋈ R{i}_b` and the selection view `W{i}`
/// over the replica. Shared between the bench workload and the root
/// differential property suite so every batched-pipeline harness exercises
/// the same space.
///
/// # Errors
///
/// Engine construction failures.
pub fn build_space(sites: u32) -> eve_system::Result<EveEngine> {
    let mut engine = EveEngine::new();
    let schema = Schema::of(&[("K", DataType::Int), ("P", DataType::Int)])?;
    let attrs = || {
        vec![
            AttributeInfo::new("K", DataType::Int),
            AttributeInfo::new("P", DataType::Int),
        ]
    };
    for i in 1..=sites {
        engine.add_site(SiteId(i), format!("IS{i}"))?;
        for suffix in ["a", "b", "c"] {
            let name = format!("R{i}_{suffix}");
            let rows: Vec<Tuple> = (0..40i64).map(tuple).collect();
            engine.register_relation(
                RelationInfo::new(&name, SiteId(i), attrs(), 10),
                Relation::with_tuples(&name, schema.clone(), rows)?,
            )?;
        }
        engine.mkb_mut().add_pc_constraint(PcConstraint::new(
            PcSide::projection(format!("R{i}_b"), &["K", "P"]),
            PcRelationship::Equivalent,
            PcSide::projection(format!("R{i}_c"), &["K", "P"]),
        ))?;
        engine.define_view_sql(&format!(
            "CREATE VIEW V{i} (VE = '~') AS SELECT A.K, B.P AS BP \
             FROM R{i}_a A, R{i}_b B (RR = true) WHERE A.K = B.K"
        ))?;
        engine.define_view_sql(&format!(
            "CREATE VIEW W{i} (VE = '~') AS SELECT C.K FROM R{i}_c C (RR = true) \
             WHERE C.P = 0 (CD = true)"
        ))?;
    }
    Ok(engine)
}

/// Builds the `sites`-site information space and a seeded `op_count`-op
/// workload over it.
///
/// # Errors
///
/// Engine construction failures.
pub fn build_workload(
    sites: u32,
    op_count: usize,
    seed: u64,
) -> eve_system::Result<(EveEngine, Vec<EvolutionOp>)> {
    let engine = build_space(sites)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dropped_b = vec![false; sites as usize + 1];
    let mut renamed_a = vec![false; sites as usize + 1];
    let mut ops = Vec::with_capacity(op_count);
    for n in 0..op_count {
        let i = rng.gen_range(1..=sites) as usize;
        // Capability changes roughly every 25th op; the rest is data.
        if n % 25 == 24 {
            if !dropped_b[i] {
                dropped_b[i] = true;
                ops.push(EvolutionOp::change(
                    eve_misd::SchemaChange::DeleteRelation {
                        relation: format!("R{i}_b"),
                    },
                ));
                continue;
            }
            if !renamed_a[i] {
                renamed_a[i] = true;
                ops.push(EvolutionOp::change(
                    eve_misd::SchemaChange::RenameRelation {
                        from: format!("R{i}_a"),
                        to: format!("R{i}_ax"),
                    },
                ));
                continue;
            }
        }
        let k = rng.gen_range(0i64..200);
        let a = if renamed_a[i] {
            format!("R{i}_ax")
        } else {
            format!("R{i}_a")
        };
        let b = if dropped_b[i] {
            format!("R{i}_c")
        } else {
            format!("R{i}_b")
        };
        match rng.gen_range(0u8..4) {
            0 => ops.push(EvolutionOp::insert(b, vec![tuple(k)])),
            1 => ops.push(EvolutionOp::delete(a, vec![tuple(k % 40)])),
            _ => ops.push(EvolutionOp::insert(a, vec![tuple(k)])),
        }
    }
    Ok((engine, ops))
}

/// Applies `ops` through the legacy per-op paths.
///
/// # Errors
///
/// Engine failures.
pub fn run_sequential(engine: &mut EveEngine, ops: &[EvolutionOp]) -> eve_system::Result<()> {
    for op in ops {
        match op {
            EvolutionOp::Data {
                relation,
                inserts,
                deletes,
            } => {
                engine.notify_data_update(&DataUpdate {
                    relation: relation.clone(),
                    inserts: inserts.clone(),
                    deletes: deletes.clone(),
                })?;
            }
            EvolutionOp::Capability { change, new_extent } => {
                engine.notify_capability_change_sequential(change, new_extent.clone())?;
            }
        }
    }
    Ok(())
}

/// Runs both arms over the 50-site-style workload and reports timings,
/// asserting observational equivalence along the way.
///
/// # Errors
///
/// Engine failures, or divergence between the two arms.
pub fn compare(sites: u32, op_count: usize, seed: u64) -> eve_system::Result<PipelineReport> {
    let (base, ops) = build_workload(sites, op_count, seed)?;
    let data_ops = ops.iter().filter(|o| o.is_data()).count();

    // Analytic accounting of the data portion over the initial views.
    let params = QcParams::default();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for op in &ops {
        if let EvolutionOp::Data { relation, .. } = op {
            *counts.entry(relation.clone()).or_default() += 1;
        }
    }
    let mut analytic_cost = 0.0;
    for mv in base.views() {
        let plans = plans_for_view(&mv.def, base.mkb())?;
        analytic_cost += workload::batch_total_cost(&plans, &counts, &params);
    }

    let mut sequential = base.clone();
    sequential.reset_io();
    let started = Instant::now();
    run_sequential(&mut sequential, &ops)?;
    let sequential_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut batched = base;
    batched.reset_io();
    let started = Instant::now();
    let outcome = batched.apply_batch(ops.clone())?;
    let batched_ms = started.elapsed().as_secs_f64() * 1e3;

    // Equivalence gate: same state, same measured costs.
    let defs = |e: &EveEngine| -> Vec<String> { e.views().map(|mv| mv.def.to_string()).collect() };
    if defs(&sequential) != defs(&batched)
        || sequential.total_io() != batched.total_io()
        || sequential.total_messages() != batched.total_messages()
        || sequential
            .views()
            .zip(batched.views())
            .any(|(s, b)| s.extent.tuples() != b.extent.tuples())
    {
        return Err(eve_system::Error::State {
            detail: "batched and sequential arms diverged".into(),
        });
    }

    Ok(PipelineReport {
        sites,
        ops: ops.len(),
        data_ops,
        capability_ops: ops.len() - data_ops,
        sequential_ms,
        batched_ms,
        speedup: sequential_ms / batched_ms.max(1e-9),
        max_width: outcome.max_width,
        total_io: batched.total_io(),
        total_messages: batched.total_messages(),
        analytic_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arms_agree_on_a_small_workload() {
        let report = compare(6, 40, 7).unwrap();
        assert_eq!(report.ops, 40);
        assert!(report.data_ops > 0 && report.capability_ops > 0);
        assert!(report.max_width > 1, "independent sites overlap");
        assert!(report.total_io > 0 && report.total_messages > 0);
        assert!(report.analytic_cost > 0.0);
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let (_, a) = build_workload(4, 30, 42).unwrap();
        let (_, b) = build_workload(4, 30, 42).unwrap();
        let fmt =
            |ops: &[EvolutionOp]| -> Vec<String> { ops.iter().map(|o| format!("{o:?}")).collect() };
        assert_eq!(fmt(&a), fmt(&b));
    }
}
