//! Experiment 5 — "Workload Models" (§7.5, Tables 5–6, Figure 16).
//!
//! * **Table 5** (model M1, 1 update per 100 tuples): the number of updates
//!   grows with the substitute's cardinality, but normalization leaves the
//!   per-update ranking — and hence the QC scores — unchanged from Table 4.
//! * **Table 6 / Fig. 16** (model M3, `u = 10` updates per IS): extending
//!   Experiment 2, the totals over a time unit grow super-linearly with the
//!   number of sites, favouring rewritings with few ISs.

use eve_qc::cost::{cf_io, cf_messages, cf_transfer, compositions};
use eve_qc::{IoBound, MaintenancePlan, WorkloadModel};

use super::exp2_sites::{plan_for, Table1};
use super::exp4_cardinality::{table4, Table4Row};

/// One Table 5 row: the M1 workload over the Experiment 4 rewritings.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// Rewriting name.
    pub rewriting: String,
    /// Total degree of divergence (unchanged from Table 4).
    pub dd: f64,
    /// Per-update cost (Table 4's cost column).
    pub cost: f64,
    /// Updates per time unit under M1 (1 per 100 tuples of the substitute).
    pub updates: f64,
    /// Normalized cost — identical to Table 4 by §7.5's argument.
    pub normalized_cost: f64,
    /// Efficiency score.
    pub qc: f64,
    /// Rank (1 = best).
    pub rating: usize,
}

/// Computes Table 5: Experiment 4's case 1 with M1 update counts attached
/// (1 update per 100 tuples, §7.5).
///
/// # Errors
///
/// QC-Model failures.
pub fn table5() -> eve_qc::Result<Vec<Table5Row>> {
    let case1: Vec<Table4Row> = table4(0.9, 0.1)?;
    let cards = [2000.0, 3000.0, 4000.0, 5000.0, 6000.0];
    Ok(case1
        .into_iter()
        .zip(cards)
        .map(|(r, card)| Table5Row {
            rewriting: r.rewriting,
            dd: r.dd,
            cost: r.cost,
            updates: card / 100.0,
            normalized_cost: r.normalized_cost,
            qc: r.qc,
            rating: r.rating,
        })
        .collect())
}

/// One Table 6 / Fig. 16 row: per-time-unit totals under M3 for a
/// representative rewriting over `m` sites.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6Row {
    /// Number of sites `m`.
    pub sites: usize,
    /// Total updates per time unit (`u · m`).
    pub updates: f64,
    /// Total messages.
    pub cf_m: f64,
    /// Total bytes transferred.
    pub cf_t: f64,
    /// Total I/O operations (Eq. 33 lower bound, as the paper uses).
    pub cf_io: f64,
}

/// Computes Table 6: for each `m`, `u` updates per IS per time unit, with
/// per-update costs averaged over all Table 2 distributions *and* origin
/// sites (updates under M3 strike every IS).
#[must_use]
pub fn table6(updates_per_site: f64) -> Vec<Table6Row> {
    let params = Table1::default();
    (1..=params.relations)
        .map(|m| {
            let dists = compositions(params.relations, m);
            let mut messages = 0.0;
            let mut bytes = 0.0;
            let mut io = 0.0;
            let mut cases = 0usize;
            for d in &dists {
                for origin_site in 0..m {
                    // Rotate the distribution so the origin site comes
                    // first; remaining sites keep their relative order.
                    let mut rotated: Vec<usize> = Vec::with_capacity(m);
                    rotated.push(d[origin_site]);
                    rotated.extend(
                        d.iter()
                            .enumerate()
                            .filter_map(|(i, &c)| (i != origin_site).then_some(c)),
                    );
                    let plan = plan_for(&rotated, &params);
                    messages += cf_messages(&plan, true);
                    bytes += cf_transfer(&plan);
                    io += cf_io(&plan, IoBound::Lower);
                    cases += 1;
                }
            }
            #[allow(clippy::cast_precision_loss)]
            let avg = |total: f64| total / cases as f64;
            #[allow(clippy::cast_precision_loss)]
            let total_updates = updates_per_site * m as f64;
            Table6Row {
                sites: m,
                updates: total_updates,
                cf_m: total_updates * avg(messages),
                cf_t: total_updates * avg(bytes),
                cf_io: total_updates * avg(io),
            }
        })
        .collect()
}

/// Per-model per-update cost multiplier illustration (§6.6): how many
/// updates each model assigns to a uniform plan's origin.
#[must_use]
pub fn model_update_counts(distribution: &[usize]) -> Vec<(&'static str, f64)> {
    let plan = MaintenancePlan::uniform(distribution, 0.005).expect("valid");
    let n = distribution.iter().sum::<usize>();
    let models: [(&'static str, WorkloadModel); 4] = [
        (
            "M1 (1/100 tuples)",
            WorkloadModel::TuplesProportional { per_tuple: 0.01 },
        ),
        (
            "M2 (u = 10/relation)",
            WorkloadModel::PerRelation { updates: 10.0 },
        ),
        ("M3 (u = 10/site)", WorkloadModel::PerSite { updates: 10.0 }),
        ("M4 (u = 10 total)", WorkloadModel::Fixed { updates: 10.0 }),
    ];
    models
        .into_iter()
        .map(|(name, m)| (name, m.updates_at_origin(&plan, n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_matches_paper_exactly() {
        // Table 6's six rows, reproduced to the digit.
        let rows = table6(10.0);
        let expected = [
            (1, 10.0, 30.0, 8000.0, 310.0),
            (2, 20.0, 92.0, 27200.0, 620.0),
            (3, 30.0, 186.0, 57600.0, 930.0),
            (4, 40.0, 312.0, 99200.0, 1240.0),
            (5, 50.0, 470.0, 152000.0, 1550.0),
            (6, 60.0, 660.0, 216000.0, 1860.0),
        ];
        assert_eq!(rows.len(), 6);
        for (row, (m, upd, cfm, cft, cfio)) in rows.iter().zip(expected) {
            assert_eq!(row.sites, m);
            assert!((row.updates - upd).abs() < 1e-9, "m={m} updates");
            assert!(
                (row.cf_m - cfm).abs() < 1e-6,
                "m={m}: CF_M {} vs {cfm}",
                row.cf_m
            );
            assert!(
                (row.cf_t - cft).abs() < 1e-6,
                "m={m}: CF_T {} vs {cft}",
                row.cf_t
            );
            assert!(
                (row.cf_io - cfio).abs() < 1e-6,
                "m={m}: CF_IO {} vs {cfio}",
                row.cf_io
            );
        }
    }

    #[test]
    fn table5_normalized_costs_and_qc_unchanged_from_table4() {
        // §7.5: "both the normalized cost factors and hence the final
        // efficiency values are unchanged" under M1.
        let t5 = table5().unwrap();
        let expected_norm = [0.0, 0.25, 0.5, 0.75, 1.0];
        let expected_qc = [0.9325, 0.94125, 0.95, 0.898, 0.855];
        let expected_updates = [20.0, 30.0, 40.0, 50.0, 60.0];
        for (i, row) in t5.iter().enumerate() {
            assert!((row.normalized_cost - expected_norm[i]).abs() < 1e-9);
            assert!((row.qc - expected_qc[i]).abs() < 1e-9);
            assert!((row.updates - expected_updates[i]).abs() < 1e-9);
        }
        // Rating: V3 best, as in Table 4/5.
        assert_eq!(t5.iter().find(|r| r.rating == 1).unwrap().rewriting, "V3");
    }

    #[test]
    fn fig16_totals_grow_superlinearly_with_sites() {
        let rows = table6(10.0);
        // Totals grow faster than linearly: per-update cost itself grows
        // with m, and the update count grows with m.
        for w in rows.windows(2) {
            #[allow(clippy::cast_precision_loss)]
            let scale = w[1].updates / w[0].updates;
            assert!(w[1].cf_t > w[0].cf_t * scale, "{w:?}");
            assert!(w[1].cf_m > w[0].cf_m * scale);
        }
    }

    #[test]
    fn model_update_counts_are_sane() {
        let counts = model_update_counts(&[3, 3]);
        let by_name: std::collections::BTreeMap<&str, f64> = counts.into_iter().collect();
        // M1: 0.01 × 400 = 4 updates at the origin relation.
        assert!((by_name["M1 (1/100 tuples)"] - 4.0).abs() < 1e-12);
        // M2: flat 10.
        assert!((by_name["M2 (u = 10/relation)"] - 10.0).abs() < 1e-12);
        // M3: 10 per site over 3 relations at the origin site.
        assert!((by_name["M3 (u = 10/site)"] - 10.0 / 3.0).abs() < 1e-12);
        // M4: 10 total over 6 relations.
        assert!((by_name["M4 (u = 10 total)"] - 10.0 / 6.0).abs() < 1e-12);
    }
}
