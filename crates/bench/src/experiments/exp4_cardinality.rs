//! Experiment 4 — "Relation Cardinality" (§7.4, Tables 3–4, Figure 15).
//!
//! A view joins `R1` and `R2`; `R2` is deleted by its provider. Five
//! substitutes `S1 … S5` with cardinalities 2000 … 6000 form the containment
//! chain `S1 ⊆ S2 ⊆ S3 ≡ R2 ⊆ S4 ⊆ S5` (Table 3). The synchronizer derives
//! five legal rewritings; the QC-Model ranks them under three quality/cost
//! trade-offs (Fig. 15's cases), reproducing Table 4.

use eve_esql::ViewDef;
use eve_misd::{
    AttributeInfo, Mkb, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
};
use eve_qc::{rank_rewritings, QcParams, WorkloadModel};
use eve_relational::DataType;
use eve_sync::{synchronize, LegalRewriting, SyncOptions};

/// Table 3: the substitute cardinalities.
pub const TABLE3: [(&str, u64); 6] = [
    ("R2", 4000),
    ("S1", 2000),
    ("S2", 3000),
    ("S3", 4000),
    ("S4", 5000),
    ("S5", 6000),
];

/// One Table 4 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Rewriting name (`V1` … `V5`, substituting `S1` … `S5`).
    pub rewriting: String,
    /// Interface divergence.
    pub dd_attr: f64,
    /// Extent divergence.
    pub dd_ext: f64,
    /// Total degree of divergence.
    pub dd: f64,
    /// Absolute maintenance cost (per single update).
    pub cost: f64,
    /// Normalized cost (Eq. 25).
    pub normalized_cost: f64,
    /// Efficiency score (Eq. 26).
    pub qc: f64,
    /// Rank (1 = best).
    pub rating: usize,
}

/// Builds the Experiment 4 information space, view and legal rewritings.
///
/// # Panics
///
/// Never for the fixed built-in scenario (all construction is validated).
#[must_use]
pub fn setup() -> (ViewDef, Vec<LegalRewriting>, Mkb) {
    let mut m = Mkb::new();
    for i in 1..=6u32 {
        m.register_site(SiteId(i), format!("IS{i}")).unwrap();
    }
    let half = |n: &str| AttributeInfo::sized(n, DataType::Int, 50);
    m.register_relation(RelationInfo::new(
        "R1",
        SiteId(1),
        vec![half("K"), half("X")],
        400,
    ))
    .unwrap();
    let abc = || {
        vec![
            AttributeInfo::sized("A", DataType::Int, 34),
            AttributeInfo::sized("B", DataType::Int, 33),
            AttributeInfo::sized("C", DataType::Int, 33),
        ]
    };
    for (i, (name, card)) in TABLE3.iter().enumerate() {
        let site = if *name == "R2" {
            SiteId(1)
        } else {
            SiteId(u32::try_from(i).unwrap() + 1)
        };
        m.register_relation(RelationInfo::new(*name, site, abc(), *card))
            .unwrap();
    }
    let proj = |r: &str| PcSide::projection(r, &["A", "B", "C"]);
    for (a, rel, b) in [
        ("S1", PcRelationship::Subset, "S2"),
        ("S2", PcRelationship::Subset, "S3"),
        ("S3", PcRelationship::Equivalent, "R2"),
        ("S3", PcRelationship::Subset, "S4"),
        ("S4", PcRelationship::Subset, "S5"),
    ] {
        m.add_pc_constraint(PcConstraint::new(proj(a), rel, proj(b)))
            .unwrap();
    }
    let view = eve_esql::parse_view(
        "CREATE VIEW V (VE = '~') AS \
         SELECT R2.A (AR = true), R2.B (AR = true), R2.C (AR = true) \
         FROM R1, R2 (RR = true) \
         WHERE R1.K = R2.A",
    )
    .unwrap();
    let change = SchemaChange::DeleteRelation {
        relation: "R2".into(),
    };
    let outcome = synchronize(&view, &change, &m, &SyncOptions::default()).unwrap();
    (view, outcome.rewritings, m)
}

fn substitute_of(rw: &LegalRewriting) -> String {
    rw.view
        .from
        .iter()
        .find(|f| f.relation != "R1")
        .map(|f| f.relation.clone())
        .unwrap_or_default()
}

/// Computes Table 4 for one quality/cost trade-off case, rows ordered
/// `V1 … V5`.
///
/// # Errors
///
/// QC-Model failures.
pub fn table4(rho_quality: f64, rho_cost: f64) -> eve_qc::Result<Vec<Table4Row>> {
    let (view, rewritings, mkb) = setup();
    let params = QcParams::experiment4(rho_quality, rho_cost);
    let scored = rank_rewritings(
        &view,
        &rewritings,
        &mkb,
        &params,
        WorkloadModel::SingleUpdate,
    )?;
    // Ratings from the QC order; rows presented in V1..V5 order.
    let mut rows: Vec<Table4Row> = Vec::new();
    for (rank, s) in scored.iter().enumerate() {
        let substitute = substitute_of(&s.rewriting);
        let v_name = format!("V{}", &substitute[1..]);
        rows.push(Table4Row {
            rewriting: v_name,
            dd_attr: s.divergence.dd_attr,
            dd_ext: s.divergence.dd_ext,
            dd: s.divergence.dd,
            cost: s.cost,
            normalized_cost: s.normalized_cost,
            qc: s.qc,
            rating: rank + 1,
        });
    }
    rows.sort_by(|a, b| a.rewriting.cmp(&b.rewriting));
    Ok(rows)
}

/// The three Fig. 15 trade-off cases.
pub const FIG15_CASES: [(f64, f64); 3] = [(0.9, 0.1), (0.75, 0.25), (0.5, 0.5)];

/// Computes Fig. 15: QC per rewriting for the three cases.
///
/// # Errors
///
/// QC-Model failures.
pub fn figure15() -> eve_qc::Result<Vec<(String, [f64; 3])>> {
    let mut out: Vec<(String, [f64; 3])> = (1..=5).map(|i| (format!("V{i}"), [0.0; 3])).collect();
    for (case, (q, c)) in FIG15_CASES.iter().enumerate() {
        for row in table4(*q, *c)? {
            let idx = out
                .iter()
                .position(|(n, _)| *n == row.rewriting)
                .expect("known rewriting");
            out[idx].1[case] = row.qc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_case1_matches_paper_exactly() {
        let rows = table4(0.9, 0.1).unwrap();
        // (rewriting, dd_attr, dd_ext, dd, normalized cost, qc, rating)
        // Note: the paper's printed DD for V4/V5 (0.027/0.045) carries a
        // ρ_quality typo; its QC column is consistent with DD = 0.03/0.05.
        let expected = [
            ("V1", 0.0, 0.25, 0.075, 0.0, 0.9325, 3),
            ("V2", 0.0, 0.125, 0.0375, 0.25, 0.94125, 2),
            ("V3", 0.0, 0.0, 0.0, 0.5, 0.95, 1),
            ("V4", 0.0, 0.1, 0.03, 0.75, 0.898, 4),
            ("V5", 0.0, 1.0 / 6.0, 0.05, 1.0, 0.855, 5),
        ];
        assert_eq!(rows.len(), 5);
        for (row, (name, dd_attr, dd_ext, dd, norm, qc, rating)) in rows.iter().zip(expected) {
            assert_eq!(row.rewriting, name);
            assert!((row.dd_attr - dd_attr).abs() < 1e-9, "{name} dd_attr");
            assert!((row.dd_ext - dd_ext).abs() < 1e-9, "{name} dd_ext");
            assert!((row.dd - dd).abs() < 1e-9, "{name} dd");
            assert!((row.normalized_cost - norm).abs() < 1e-9, "{name} norm");
            assert!((row.qc - qc).abs() < 1e-9, "{name} qc={}", row.qc);
            assert_eq!(row.rating, rating, "{name} rating");
        }
    }

    #[test]
    fn cases_2_and_3_pick_v1() {
        // §7.4: "Even in Case 2, the influence of the cost … is large enough
        // for V1 to be selected as best legal rewriting."
        for (q, c) in [(0.75, 0.25), (0.5, 0.5)] {
            let rows = table4(q, c).unwrap();
            let best = rows.iter().find(|r| r.rating == 1).unwrap();
            assert_eq!(best.rewriting, "V1", "case ({q}, {c})");
        }
    }

    #[test]
    fn superset_substitutes_rank_by_size_in_every_case() {
        // §7.4 observation 1: among V3, V4, V5 the closest-size substitute
        // V3 ranks best under all trade-off settings.
        for (q, c) in FIG15_CASES {
            let rows = table4(q, c).unwrap();
            let rating = |n: &str| rows.iter().find(|r| r.rewriting == n).unwrap().rating;
            assert!(rating("V3") < rating("V4"), "case ({q}, {c})");
            assert!(rating("V4") < rating("V5"), "case ({q}, {c})");
        }
    }

    #[test]
    fn figure15_shape() {
        let fig = figure15().unwrap();
        assert_eq!(fig.len(), 5);
        // Case 1 rises from V1 to V3 then falls (§7.4's description).
        let case1: Vec<f64> = fig.iter().map(|(_, qcs)| qcs[0]).collect();
        assert!(case1[0] < case1[1] && case1[1] < case1[2]);
        assert!(case1[2] > case1[3] && case1[3] > case1[4]);
        // Case 3 decreases monotonically from V1 (cost dominates).
        let case3: Vec<f64> = fig.iter().map(|(_, qcs)| qcs[2]).collect();
        for w in case3.windows(2) {
            assert!(w[0] > w[1], "case 3 not decreasing: {case3:?}");
        }
    }

    #[test]
    fn absolute_costs_are_affine_in_cardinality() {
        let rows = table4(0.9, 0.1).unwrap();
        // Cost deltas between consecutive substitutes are constant (the
        // paper's 351 per 1000 tuples, scaled by our averaging over origins).
        let diffs: Vec<f64> = rows.windows(2).map(|w| w[1].cost - w[0].cost).collect();
        for w in diffs.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6, "not affine: {diffs:?}");
        }
        assert!(diffs[0] > 0.0);
    }
}
