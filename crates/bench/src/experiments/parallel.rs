//! Morsel-driven parallel columnar execution vs the serial columnar
//! baseline (PR 9 tentpole).
//!
//! Executes the *same* compiled plan through `ExecMode::Columnar` — once
//! serially, then with the morsel pool at 1, 2, 4 and 8 workers — and
//! reports, per workload × thread count:
//!
//! * wall-clock of both arms and the speedup over serial,
//! * morsel/steal/partition counters from [`ExecStats`],
//! * the modeled cost ratio `total / parallel_total(8)` — the
//!   machine-independent speedup the planner's cost model predicts.
//!
//! Every parallel arm is asserted **byte-identical, order included** to
//! the serial columnar output — the deterministic-merge contract — so a
//! reported speedup is never bought with a reordered (or wrong) answer.
//! Wall-clock speedup is meaningful only on multi-core machines; the
//! modeled ratio (and the byte-identity assertion) is deterministic
//! everywhere, which is what the tier-1 gate below checks.
//!
//! [`ExecStats`]: eve_relational::ExecStats

use std::time::Instant;

use eve_relational::exec::{execute_with_options, ExecMode};
use eve_relational::{morsel, ExecOptions};
use eve_system::query::plan_view;

use super::columns;
use super::view_exec::Workload;

/// Thread counts every workload is swept over.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Morsel size used by the sweep: small enough that even the mid-size
/// repro workloads split into well over 8 morsels, so every worker of
/// the widest arm has work to steal.
pub const MORSEL_ROWS: usize = 1024;

/// One (workload × thread-count) measurement.
#[derive(Debug, Clone)]
pub struct ParallelArm {
    /// Worker threads requested.
    pub threads: usize,
    /// Parallel arm wall-clock, milliseconds (best of the reps).
    pub ms: f64,
    /// `serial_ms / ms`.
    pub speedup: f64,
    /// Morsels dispatched by this arm's reps.
    pub morsels: u64,
    /// Work-stealing events in this arm's reps.
    pub steals: u64,
    /// Hash-join partition tasks built by this arm's reps.
    pub partitions: u64,
}

/// The sweep of one workload.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    /// Workload name.
    pub workload: String,
    /// Serial columnar baseline wall-clock, milliseconds (best of reps).
    pub serial_ms: f64,
    /// Executed result cardinality (identical in every arm).
    pub rows_out: usize,
    /// Modeled cost ratio `estimate.total / estimate.parallel_total(8)`:
    /// the machine-independent speedup the cost model predicts for 8
    /// workers.
    pub modeled_ratio_8: f64,
    /// One measurement per entry of [`THREADS`].
    pub arms: Vec<ParallelArm>,
}

/// The canonical workload set `repro parallel`, the criterion-shim bench
/// and the soak smoke all run: the wide text-key join and the star shape
/// from the columnar comparison, at the same scales.
///
/// # Errors
///
/// Construction failures.
pub fn workloads() -> eve_system::Result<Vec<Workload>> {
    Ok(vec![
        columns::wide_text_join(1500)?,
        columns::star_text(4000)?,
    ])
}

/// Plans the workload once, executes the serial columnar baseline and
/// every thread count of [`THREADS`] `reps` times each (best-of timing),
/// asserting every parallel output byte-identical — order included — to
/// the serial one.
///
/// # Errors
///
/// Planning/execution failures, or a serial/parallel divergence.
#[allow(clippy::missing_panics_doc)]
pub fn run(workload: &Workload, reps: usize) -> eve_system::Result<ParallelRow> {
    let reps = reps.max(1);
    let plan = plan_view(&workload.view, &workload.extents, &workload.stats)?;
    let estimate = plan.estimate();
    let modeled_ratio_8 = estimate.total / estimate.parallel_total(8).max(1e-9);

    let mut serial_ms = f64::INFINITY;
    let mut serial_out = None;
    for _ in 0..reps {
        let started = Instant::now();
        let out = execute_with_options(&plan, ExecMode::Columnar, &ExecOptions::serial())?;
        serial_ms = serial_ms.min(started.elapsed().as_secs_f64() * 1e3);
        serial_out = Some(out);
    }
    let serial_out = serial_out.expect("reps >= 1");

    let mut arms = Vec::with_capacity(THREADS.len());
    for &threads in &THREADS {
        let opts = ExecOptions {
            parallelism: threads,
            morsel_rows: MORSEL_ROWS,
            force_parallel: false,
        };
        morsel::reset_stats();
        let mut ms = f64::INFINITY;
        let mut out = None;
        for _ in 0..reps {
            let started = Instant::now();
            let o = execute_with_options(&plan, ExecMode::Columnar, &opts)?;
            ms = ms.min(started.elapsed().as_secs_f64() * 1e3);
            out = Some(o);
        }
        let out = out.expect("reps >= 1");
        // Deterministic-merge contract: byte-identical, order included.
        if serial_out.tuples() != out.tuples() {
            return Err(eve_system::Error::State {
                detail: format!(
                    "serial and {threads}-thread execution diverged on {}: {} vs {} tuples",
                    workload.name,
                    serial_out.cardinality(),
                    out.cardinality()
                ),
            });
        }
        let stats = morsel::stats();
        arms.push(ParallelArm {
            threads,
            ms,
            speedup: serial_ms / ms.max(1e-9),
            morsels: stats.morsels,
            steals: stats.steals,
            partitions: stats.partitions,
        });
    }

    Ok(ParallelRow {
        workload: workload.name.clone(),
        serial_ms,
        rows_out: serial_out.cardinality(),
        modeled_ratio_8,
        arms,
    })
}

/// Runs the full workload set.
///
/// # Errors
///
/// As [`run`].
pub fn compare(reps: usize) -> eve_system::Result<Vec<ParallelRow>> {
    workloads()?.iter().map(|w| run(w, reps)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_parallel_arm_is_byte_identical_to_serial() {
        // run() hard-errors on any divergence, so a clean pass over the
        // sweep *is* the assertion; spot-check the reported shape too.
        let w = columns::wide_text_join(200).unwrap();
        let row = run(&w, 1).unwrap();
        assert_eq!(row.arms.len(), THREADS.len());
        assert!(row.rows_out > 0);
        let wide = row.arms.iter().find(|a| a.threads == 8).unwrap();
        assert!(
            wide.morsels > 8,
            "8-worker arm must split into many morsels: {wide:?}"
        );
    }

    #[test]
    fn star_shape_partitions_its_hash_join_under_parallelism() {
        let w = columns::star_text(2000).unwrap();
        let row = run(&w, 1).unwrap();
        let wide = row.arms.iter().find(|a| a.threads == 8).unwrap();
        assert!(
            wide.partitions > 0,
            "parallel hash join must build partitioned tables: {wide:?}"
        );
    }

    /// Tier-1 gate (debug build, `cargo test -q`): the cost model must
    /// predict at least 1.5× for 8 workers on the wide text join. The
    /// ratio is pure arithmetic over the plan estimate — deterministic
    /// on any machine, single-core CI included; `repro parallel` adds
    /// the wall-clock ≥3× gate on machines with ≥8 cores.
    #[test]
    fn parallel_modeled_speedup_at_8_workers_at_least_1p5x() {
        let w = columns::wide_text_join(1200).unwrap();
        let row = run(&w, 1).unwrap();
        assert!(
            row.modeled_ratio_8 >= 1.5,
            "cost model must predict >= 1.5x at 8 workers on the wide \
             text join (got {:.2}x)",
            row.modeled_ratio_8
        );
    }
}
