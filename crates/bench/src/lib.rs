//! # eve-bench
//!
//! The experiment harness: one module per experiment of the paper's §7,
//! regenerating every table and figure:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`experiments::exp1_survival`] | Experiment 1, Fig. 12 (view survival) |
//! | [`experiments::exp2_sites`] | Experiment 2, Tables 1–2, Fig. 13 |
//! | [`experiments::exp3_distribution`] | Experiment 3, Fig. 14 |
//! | [`experiments::exp4_cardinality`] | Experiment 4, Tables 3–4, Fig. 15 |
//! | [`experiments::exp5_workload`] | Experiment 5, Tables 5–6, Fig. 16 |
//! | [`experiments::heuristics`] | §7.6 heuristics checks |
//! | [`experiments::validation`] | measured-vs-analytic cross-validation (extension) |
//! | [`experiments::view_exec`] | cost-ordered planner vs naive evaluator (extension) |
//!
//! The `repro` binary prints them all; the Criterion benches under
//! `benches/` time the underlying computations.

pub mod experiments;
pub mod report;
pub mod table;
