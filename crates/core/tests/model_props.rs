//! Property-based tests of the QC-Model's analytic guarantees.

use proptest::prelude::*;

use eve_qc::cost::{cf_io, cf_messages, cf_transfer, CostFactors};
use eve_qc::quality::ExtentSizes;
use eve_qc::{IoBound, MaintenancePlan, QcParams, RelSpec};

fn rel_spec() -> impl Strategy<Value = RelSpec> {
    (
        10.0f64..10_000.0,
        8.0f64..500.0,
        0.05f64..1.0,
        1.0f64..50.0,
        1e-4f64..0.05,
    )
        .prop_map(|(card, bytes, sel, bfr, js)| RelSpec {
            name: "R".into(),
            cardinality: card,
            tuple_bytes: bytes,
            selectivity: sel,
            blocking_factor: bfr,
            join_selectivity: js,
        })
}

fn plan() -> impl Strategy<Value = MaintenancePlan> {
    (
        rel_spec(),
        prop::collection::vec(prop::collection::vec(rel_spec(), 0..4), 1..4),
    )
        .prop_map(|(origin, site_rels)| MaintenancePlan {
            origin,
            sites: site_rels
                .into_iter()
                .enumerate()
                .map(|(i, relations)| eve_qc::SiteSpec {
                    site: eve_misd::SiteId(u32::try_from(i).unwrap() + 1),
                    relations,
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // -------------------------------------------------------------------
    // Cost factors on arbitrary heterogeneous plans.
    // -------------------------------------------------------------------

    #[test]
    fn factors_finite_nonnegative_and_ordered(p in plan()) {
        let m = cf_messages(&p, true);
        let t = cf_transfer(&p);
        let lo = cf_io(&p, IoBound::Lower);
        let mid = cf_io(&p, IoBound::Midpoint);
        let hi = cf_io(&p, IoBound::Upper);
        for v in [m, t, lo, mid, hi] {
            prop_assert!(v.is_finite() && v >= 0.0, "{v}");
        }
        prop_assert!(lo <= mid + 1e-9 && mid <= hi + 1e-9);
        // Notification accounting adds exactly one message.
        prop_assert_eq!(m - cf_messages(&p, false), 1.0);
        // Transfer includes at least the update notification.
        prop_assert!(t >= p.origin.tuple_bytes - 1e-9);
    }

    #[test]
    fn transfer_monotone_in_cardinality(p in plan(), factor in 1.0f64..4.0) {
        // Scaling every relation's cardinality up scales deltas up: CF_T
        // cannot decrease (join growth terms are multiplicative and
        // non-negative).
        let mut bigger = p.clone();
        for s in &mut bigger.sites {
            for r in &mut s.relations {
                r.cardinality *= factor;
            }
        }
        prop_assert!(cf_transfer(&bigger) >= cf_transfer(&p) - 1e-9);
    }

    #[test]
    fn eq24_total_is_linear_in_unit_prices(
        p in plan(),
        cm in 0.0f64..2.0,
        ct in 0.0f64..2.0,
        cio in 0.0f64..2.0,
        scale in 0.1f64..5.0,
    ) {
        let factors = CostFactors {
            messages: cf_messages(&p, true),
            transfer: cf_transfer(&p),
            io: cf_io(&p, IoBound::Lower),
        };
        let params1 = QcParams { cost_m: cm, cost_t: ct, cost_io: cio, ..QcParams::default() };
        let params2 = QcParams {
            cost_m: cm * scale,
            cost_t: ct * scale,
            cost_io: cio * scale,
            ..QcParams::default()
        };
        let a = factors.total(&params1);
        let b = factors.total(&params2);
        prop_assert!((b - a * scale).abs() < 1e-6 * (1.0 + a.abs()), "{a} {b}");
    }

    // -------------------------------------------------------------------
    // Extent divergence arithmetic.
    // -------------------------------------------------------------------

    #[test]
    fn dd_ext_bounds_and_monotonicity(
        original in 0.0f64..10_000.0,
        rewriting in 0.0f64..10_000.0,
        overlap in 0.0f64..20_000.0,
        rho in 0.0f64..1.0,
    ) {
        let s = ExtentSizes::new(original, rewriting, overlap);
        let dd = s.dd_ext(rho, 1.0 - rho);
        prop_assert!((0.0..=1.0).contains(&dd), "dd {dd}");
        prop_assert!((0.0..=1.0).contains(&s.d1()));
        prop_assert!((0.0..=1.0).contains(&s.d2()));
        // More overlap never increases divergence.
        let more = ExtentSizes::new(original, rewriting, s.overlap + 1.0);
        prop_assert!(more.dd_ext(rho, 1.0 - rho) <= dd + 1e-12);
        // Perfect overlap means zero divergence.
        let perfect = ExtentSizes::new(original, original, original);
        prop_assert_eq!(perfect.dd_ext(rho, 1.0 - rho), 0.0);
    }

    #[test]
    fn dd_ext_scale_invariant(
        original in 1.0f64..10_000.0,
        rewriting in 1.0f64..10_000.0,
        frac in 0.0f64..1.0,
        scale in 0.001f64..1_000.0,
    ) {
        // D1/D2 are ratios: scaling all three sizes together changes
        // nothing (the §5.4.3 cancellation our estimator relies on).
        let overlap = frac * original.min(rewriting);
        let a = ExtentSizes::new(original, rewriting, overlap).dd_ext(0.5, 0.5);
        let b = ExtentSizes::new(original * scale, rewriting * scale, overlap * scale)
            .dd_ext(0.5, 0.5);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    // -------------------------------------------------------------------
    // Uniform plans: Eq. 22's closed form agrees with Eq. 21 for any
    // parameters, not just Table 1's.
    // -------------------------------------------------------------------

    #[test]
    fn closed_form_matches_general_everywhere(
        dist in prop::collection::vec(1usize..4, 1..5),
        card in 10.0f64..2000.0,
        s in 10.0f64..300.0,
        sel in 0.05f64..1.0,
        js in 1e-4f64..0.02,
    ) {
        let mut plan = MaintenancePlan::uniform(&dist, js).unwrap();
        let patch = |r: &mut RelSpec| {
            r.cardinality = card;
            r.tuple_bytes = s;
            r.selectivity = sel;
        };
        patch(&mut plan.origin);
        for site in &mut plan.sites {
            for r in &mut site.relations {
                patch(r);
            }
        }
        let general = cf_transfer(&plan);
        let closed = eve_qc::cost::cf_transfer_uniform_closed_form(&dist, card, s, sel, js);
        prop_assert!((general - closed).abs() < 1e-6 * (1.0 + general), "{general} vs {closed}");
    }
}
