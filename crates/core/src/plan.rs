//! Maintenance plans: the structural input of the cost model (§6.1, Fig. 11).
//!
//! Incremental maintenance of a view after one base-data update walks the
//! involved information sources in order, shipping a growing delta relation
//! (Algorithm 1). A [`MaintenancePlan`] captures everything the cost factors
//! need about that walk: which relation was updated (the origin), which
//! relations share its site (`n_1` peers), and which relations live at the
//! subsequently visited sites.

use eve_esql::ViewDef;
use eve_misd::{Mkb, SiteId};

use crate::error::{Error, Result};

/// Statistics of one relation participating in maintenance.
#[derive(Debug, Clone, PartialEq)]
pub struct RelSpec {
    /// Relation name (for reporting).
    pub name: String,
    /// Cardinality `|R|`.
    pub cardinality: f64,
    /// Tuple size `s_R` in bytes.
    pub tuple_bytes: f64,
    /// Local-condition selectivity `σ`.
    pub selectivity: f64,
    /// Blocking factor `bfr` (tuples per block).
    pub blocking_factor: f64,
    /// Join selectivity `js` used when the delta joins this relation.
    pub join_selectivity: f64,
}

impl RelSpec {
    /// A relation with the paper's Table 1 parameters
    /// (`|R| = 400`, `s = 100`, `σ = 0.5`, `js = 0.005`, `bfr = 10`).
    #[must_use]
    pub fn table1(name: impl Into<String>) -> RelSpec {
        RelSpec {
            name: name.into(),
            cardinality: 400.0,
            tuple_bytes: 100.0,
            selectivity: 0.5,
            blocking_factor: 10.0,
            join_selectivity: 0.005,
        }
    }
}

/// One information source visited during maintenance, with the view
/// relations it hosts (in join order).
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSpec {
    /// Site identifier.
    pub site: SiteId,
    /// Hosted view relations, in the order the delta joins them.
    pub relations: Vec<RelSpec>,
}

/// The maintenance walk for a single base update.
#[derive(Debug, Clone, PartialEq)]
pub struct MaintenancePlan {
    /// The updated relation `R_{1,0}` — supplies the initial delta width and
    /// the origin site/cardinality for workload models.
    pub origin: RelSpec,
    /// Sites in visit order. `sites[0]` is the origin site and lists only
    /// the *other* relations there (the paper's `n_1`); it may be empty.
    pub sites: Vec<SiteSpec>,
}

impl MaintenancePlan {
    /// Number of information sources `m` involved in the view.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Total number of relations referenced by the view (including the
    /// updated one) — the paper's `n = 1 + Σ n_i`.
    #[must_use]
    pub fn relation_count(&self) -> usize {
        1 + self.sites.iter().map(|s| s.relations.len()).sum::<usize>()
    }

    /// Builds the uniform-parameter plan of Experiments 2/3/5: `n` relations
    /// distributed over sites as `distribution` (Table 2 rows), the update
    /// originating at the first relation of the first site, every relation
    /// carrying Table 1 statistics except for the supplied `js`.
    ///
    /// # Errors
    ///
    /// [`Error::BadView`] for an empty or zero-containing distribution.
    pub fn uniform(distribution: &[usize], js: f64) -> Result<MaintenancePlan> {
        if distribution.is_empty() || distribution.contains(&0) {
            return Err(Error::BadView {
                detail: "distribution must be non-empty with positive site loads".into(),
            });
        }
        let spec = |name: String| RelSpec {
            join_selectivity: js,
            ..RelSpec::table1(name)
        };
        let mut sites = Vec::with_capacity(distribution.len());
        for (i, &count) in distribution.iter().enumerate() {
            let peers = if i == 0 { count - 1 } else { count };
            let relations = (0..peers)
                .map(|k| spec(format!("R{}_{}", i + 1, k + 1)))
                .collect();
            sites.push(SiteSpec {
                site: SiteId(u32::try_from(i).unwrap_or(u32::MAX) + 1),
                relations,
            });
        }
        Ok(MaintenancePlan {
            origin: spec("R1_0".to_owned()),
            sites,
        })
    }
}

#[allow(clippy::cast_precision_loss)]
fn rel_spec_from_mkb(mkb: &Mkb, relation: &str) -> Result<RelSpec> {
    let info = mkb.relation(relation)?;
    Ok(RelSpec {
        name: info.name.clone(),
        cardinality: info.cardinality as f64,
        tuple_bytes: info.tuple_bytes() as f64,
        selectivity: info.selectivity,
        blocking_factor: info.blocking_factor as f64,
        join_selectivity: mkb.default_join_selectivity(),
    })
}

/// Derives one maintenance plan per possible update origin (each FROM
/// relation of the view), resolving statistics from the MKB.
///
/// The visit order is deterministic: the origin site first, then the
/// remaining sites in ascending site-id order; within a site, relations keep
/// their FROM order. This realizes the §6.1 assumption that sites are never
/// revisited.
///
/// # Errors
///
/// MKB lookups for unregistered relations.
pub fn plans_for_view(view: &ViewDef, mkb: &Mkb) -> Result<Vec<(String, MaintenancePlan)>> {
    // Resolve every FROM relation once.
    let mut resolved: Vec<(String, SiteId, RelSpec)> = Vec::with_capacity(view.from.len());
    for item in &view.from {
        let site = mkb.site_of(&item.relation)?;
        resolved.push((
            item.relation.clone(),
            site,
            rel_spec_from_mkb(mkb, &item.relation)?,
        ));
    }

    let mut plans = Vec::with_capacity(resolved.len());
    for (origin_idx, (origin_name, origin_site, origin_spec)) in resolved.iter().enumerate() {
        // Origin site: peers in FROM order, excluding the updated relation.
        let origin_peers: Vec<RelSpec> = resolved
            .iter()
            .enumerate()
            .filter(|(i, (_, site, _))| *i != origin_idx && site == origin_site)
            .map(|(_, (_, _, spec))| spec.clone())
            .collect();
        let mut sites = vec![SiteSpec {
            site: *origin_site,
            relations: origin_peers,
        }];
        // Remaining sites ascending by id.
        let mut other_sites: Vec<SiteId> = resolved
            .iter()
            .map(|(_, site, _)| *site)
            .filter(|s| s != origin_site)
            .collect();
        other_sites.sort_unstable();
        other_sites.dedup();
        for site in other_sites {
            let relations = resolved
                .iter()
                .filter(|(_, s, _)| *s == site)
                .map(|(_, _, spec)| spec.clone())
                .collect();
            sites.push(SiteSpec { site, relations });
        }
        plans.push((
            origin_name.clone(),
            MaintenancePlan {
                origin: origin_spec.clone(),
                sites,
            },
        ));
    }
    Ok(plans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_misd::{AttributeInfo, RelationInfo};
    use eve_relational::DataType;

    #[test]
    fn uniform_plan_shapes() {
        let p = MaintenancePlan::uniform(&[6], 0.005).unwrap();
        assert_eq!(p.site_count(), 1);
        assert_eq!(p.relation_count(), 6);
        assert_eq!(p.sites[0].relations.len(), 5);

        let p = MaintenancePlan::uniform(&[1, 5], 0.005).unwrap();
        assert_eq!(p.site_count(), 2);
        assert_eq!(p.relation_count(), 6);
        assert!(p.sites[0].relations.is_empty());
        assert_eq!(p.sites[1].relations.len(), 5);
    }

    #[test]
    fn uniform_plan_rejects_bad_distributions() {
        assert!(MaintenancePlan::uniform(&[], 0.005).is_err());
        assert!(MaintenancePlan::uniform(&[2, 0, 1], 0.005).is_err());
    }

    #[test]
    fn uniform_uses_table1_statistics() {
        let p = MaintenancePlan::uniform(&[2], 0.001).unwrap();
        assert_eq!(p.origin.cardinality, 400.0);
        assert_eq!(p.origin.tuple_bytes, 100.0);
        assert_eq!(p.origin.selectivity, 0.5);
        assert_eq!(p.origin.blocking_factor, 10.0);
        assert_eq!(p.origin.join_selectivity, 0.001);
    }

    fn mkb_three_sites() -> Mkb {
        let mut m = Mkb::new();
        for i in 1..=3u32 {
            m.register_site(SiteId(i), format!("IS{i}")).unwrap();
        }
        let attrs = |n: u32| {
            (0..n)
                .map(|k| AttributeInfo::sized(format!("A{k}"), DataType::Int, 50))
                .collect::<Vec<_>>()
        };
        // R and Q share site 1; S on site 2; T on site 3.
        m.register_relation(RelationInfo::new("R", SiteId(1), attrs(2), 400))
            .unwrap();
        m.register_relation(RelationInfo::new("Q", SiteId(1), attrs(2), 500))
            .unwrap();
        m.register_relation(RelationInfo::new("S", SiteId(2), attrs(2), 600))
            .unwrap();
        m.register_relation(RelationInfo::new("T", SiteId(3), attrs(2), 700))
            .unwrap();
        m
    }

    #[test]
    fn plans_for_view_per_origin() {
        let mkb = mkb_three_sites();
        let view = eve_esql::parse_view(
            "CREATE VIEW V AS SELECT R.A0, Q.A0 AS QA, S.A0 AS SA, T.A0 AS TA FROM R, Q, S, T",
        )
        .unwrap();
        let plans = plans_for_view(&view, &mkb).unwrap();
        assert_eq!(plans.len(), 4);

        // Origin R: site 1 peers = [Q]; then sites 2, 3.
        let (name, plan) = &plans[0];
        assert_eq!(name, "R");
        assert_eq!(plan.origin.name, "R");
        assert_eq!(plan.origin.tuple_bytes, 100.0);
        assert_eq!(plan.site_count(), 3);
        assert_eq!(plan.sites[0].relations.len(), 1);
        assert_eq!(plan.sites[0].relations[0].name, "Q");
        assert_eq!(plan.sites[1].site, SiteId(2));
        assert_eq!(plan.sites[2].site, SiteId(3));
        assert_eq!(plan.relation_count(), 4);

        // Origin S: site 2 first (no peers), then sites 1 and 3.
        let (name, plan) = &plans[2];
        assert_eq!(name, "S");
        assert!(plan.sites[0].relations.is_empty());
        assert_eq!(plan.sites[1].site, SiteId(1));
        assert_eq!(plan.sites[1].relations.len(), 2);
    }

    #[test]
    fn plans_for_view_unknown_relation_errors() {
        let mkb = mkb_three_sites();
        let view = eve_esql::parse_view("CREATE VIEW V AS SELECT Z.A0 FROM Z").unwrap();
        assert!(plans_for_view(&view, &mkb).is_err());
    }
}
