//! The QC-Model as a search guide: branch-and-bound synchronization.
//!
//! Plugs the [`bound`](crate::bound) module into `eve_sync`'s streaming
//! enumerator: [`QcGuide`] scores complete rewritings by their exact QC
//! badness and open nodes by an admissible lower bound, so
//! [`ExplorationPolicy::BestFirst`] emits rewritings in QC order — the
//! paper's *materialize-everything-then-rank* pipeline becomes an any-time
//! search whose **first** emission is already the QC-best rewriting (zero
//! strategy regret), without building the candidate tail.

use eve_esql::ViewDef;
use eve_misd::{Mkb, SchemaChange};
use eve_sync::{
    synchronize_with_policy, ExplorationPolicy, LegalRewriting, PartnerCache, Provenance,
    SearchGuide, SearchNode, SearchStats, SyncOptions, SyncOutcome,
};

use crate::bound::{exact_score, partial_bound, CostBound, ScoreModel};
use crate::error::{Error, Result};
use crate::params::QcParams;
use crate::plan::plans_for_view;
use crate::workload::{total_cost, WorkloadModel};

/// A [`SearchGuide`] scoring nodes with the QC-Model: exact badness for
/// complete rewritings, admissible [`partial_bound`]s for open nodes.
/// Nodes whose score cannot be computed (e.g. a candidate referencing
/// statistics the MKB lost) sort last rather than failing the search.
#[derive(Debug, Clone)]
pub struct QcGuide<'a> {
    /// QC-Model parameters (weights, prices, divergence split).
    pub params: &'a QcParams,
    /// Workload model aggregating per-update costs.
    pub workload: WorkloadModel,
    /// The badness scalarization (normalization made explicit).
    pub score: ScoreModel,
    /// Cost-bound flavour for open nodes.
    pub cost_bound: CostBound,
}

impl<'a> QcGuide<'a> {
    /// A guide with the given scalarization and the always-admissible
    /// [`CostBound::Ignore`] for open nodes.
    #[must_use]
    pub fn new(params: &'a QcParams, workload: WorkloadModel, score: ScoreModel) -> QcGuide<'a> {
        QcGuide {
            params,
            workload,
            score,
            cost_bound: CostBound::default(),
        }
    }

    /// A guide that estimates the normalization scale from the *original*
    /// view's maintenance cost — the production setting, where the
    /// candidate set (and hence the exact Eq. 25 normalization) is unknown
    /// before the search runs.
    ///
    /// # Errors
    ///
    /// MKB lookups while pricing the original view.
    pub fn auto(
        original: &ViewDef,
        mkb: &Mkb,
        params: &'a QcParams,
        workload: WorkloadModel,
    ) -> Result<QcGuide<'a>> {
        let plans = plans_for_view(original, mkb)?;
        let scale = total_cost(&plans, workload, params);
        Ok(QcGuide::new(
            params,
            workload,
            ScoreModel::with_scale(params, scale),
        ))
    }
}

impl SearchGuide for QcGuide<'_> {
    fn score(&self, original: &ViewDef, node: &SearchNode, mkb: &Mkb) -> f64 {
        if node.is_complete() {
            let rewriting = LegalRewriting {
                view: node.view.clone(),
                provenance: Provenance {
                    actions: node.actions.clone(),
                },
                extent: node.extent,
            };
            match exact_score(original, &rewriting, mkb, self.params, self.workload) {
                Ok((dd, cost)) => self.score.badness(dd, cost),
                Err(_) => f64::INFINITY,
            }
        } else {
            match partial_bound(
                original,
                &node.view,
                &node.actions,
                &node.pending,
                mkb,
                self.params,
                self.workload,
                self.cost_bound,
            ) {
                Ok(partial) => self.score.badness(partial.dd_lower, partial.cost_lower),
                Err(_) => f64::INFINITY,
            }
        }
    }
}

/// Branch-and-bound synchronization: runs the streaming enumerator under
/// [`ExplorationPolicy::BestFirst`] with a [`QcGuide`], so rewritings come
/// out in ascending QC badness — the first one is the QC-best pick. The
/// emission count is capped by `options.max_rewritings` (set it to 1 for a
/// pure "find the best rewriting" search).
///
/// # Errors
///
/// Validation or MKB failures from the synchronizer.
pub fn synchronize_qc_best_first(
    view: &ViewDef,
    change: &SchemaChange,
    mkb: &Mkb,
    options: &SyncOptions,
    guide: &QcGuide<'_>,
) -> Result<(SyncOutcome, SearchStats)> {
    synchronize_with_policy(
        view,
        change,
        mkb,
        options,
        &ExplorationPolicy::BestFirst { guide },
        &mut PartnerCache::new(),
    )
    .map_err(|e| Error::BadView {
        detail: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::{rank_rewritings, SelectionStrategy};
    use eve_misd::{AttributeInfo, PcConstraint, PcRelationship, PcSide, RelationInfo, SiteId};
    use eve_relational::DataType;
    use eve_sync::{synchronize, SyncOptions};

    fn attr(name: &str) -> AttributeInfo {
        AttributeInfo::new(name, DataType::Int)
    }

    /// R(A,B) bound twice, with four replicas of mixed direction/size.
    fn space() -> (Mkb, ViewDef) {
        let mut m = Mkb::new();
        for i in 1..=5u32 {
            m.register_site(SiteId(i), format!("IS{i}")).unwrap();
        }
        m.register_relation(RelationInfo::new(
            "R",
            SiteId(1),
            vec![attr("A"), attr("B")],
            4000,
        ))
        .unwrap();
        for (i, (name, rel, card)) in [
            ("Mirror", PcRelationship::Equivalent, 4000u64),
            ("Half", PcRelationship::Superset, 2000),
            ("Double", PcRelationship::Subset, 8000),
            ("Triple", PcRelationship::Subset, 12000),
        ]
        .iter()
        .enumerate()
        {
            m.register_relation(RelationInfo::new(
                *name,
                SiteId(u32::try_from(i).unwrap() + 2),
                vec![attr("A"), attr("B")],
                *card,
            ))
            .unwrap();
            m.add_pc_constraint(PcConstraint::new(
                PcSide::projection("R", &["A", "B"]),
                *rel,
                PcSide::projection(*name, &["A", "B"]),
            ))
            .unwrap();
        }
        let view = eve_esql::parse_view(
            "CREATE VIEW V (VE = '~') AS \
             SELECT X.A AS XA (AR = true), Y.B AS YB (AR = true) \
             FROM R X (RR = true), R Y (RR = true) \
             WHERE X.A = Y.A",
        )
        .unwrap();
        (m, view)
    }

    #[test]
    fn first_emission_equals_qc_best_under_exact_normalization() {
        let (mkb, view) = space();
        let change = SchemaChange::DeleteRelation {
            relation: "R".into(),
        };
        let params = QcParams::default();
        let exhaustive = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        let scored = rank_rewritings(
            &view,
            &exhaustive.rewritings,
            &mkb,
            &params,
            WorkloadModel::SingleUpdate,
        )
        .unwrap();
        let best = SelectionStrategy::QcBest.select(&scored).unwrap();

        let mut costs: Vec<(usize, f64)> = scored.iter().map(|s| (s.index, s.cost)).collect();
        costs.sort_by_key(|(i, _)| *i);
        let costs: Vec<f64> = costs.into_iter().map(|(_, c)| c).collect();
        let guide = QcGuide::new(
            &params,
            WorkloadModel::SingleUpdate,
            ScoreModel::from_costs(&params, &costs),
        );
        let (outcome, stats) = synchronize_qc_best_first(
            &view,
            &change,
            &mkb,
            &SyncOptions {
                max_rewritings: 1,
                ..SyncOptions::default()
            },
            &guide,
        )
        .unwrap();
        assert_eq!(outcome.rewritings.len(), 1);
        let first = &outcome.rewritings[0];
        // Zero regret: the first emission attains the QC-best badness.
        let (dd, cost) =
            exact_score(&view, first, &mkb, &params, WorkloadModel::SingleUpdate).unwrap();
        let regret =
            guide.score.badness(dd, cost) - guide.score.badness(best.divergence.dd, best.cost);
        assert!(regret.abs() < 1e-9, "regret {regret}");
        assert!(stats.pruned > 0, "frontier left unexpanded");
    }

    #[test]
    fn best_first_streams_in_ascending_badness() {
        let (mkb, view) = space();
        let change = SchemaChange::DeleteRelation {
            relation: "R".into(),
        };
        let params = QcParams::default();
        let guide = QcGuide::auto(&view, &mkb, &params, WorkloadModel::SingleUpdate).unwrap();
        let (outcome, _) =
            synchronize_qc_best_first(&view, &change, &mkb, &SyncOptions::default(), &guide)
                .unwrap();
        assert!(outcome.rewritings.len() > 2);
        let mut last = f64::NEG_INFINITY;
        for rw in &outcome.rewritings {
            let (dd, cost) =
                exact_score(&view, rw, &mkb, &params, WorkloadModel::SingleUpdate).unwrap();
            let badness = guide.score.badness(dd, cost);
            assert!(
                badness + 1e-9 >= last,
                "emissions out of order: {badness} after {last}"
            );
            last = badness;
        }
    }
}
