//! QC-Model errors.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while scoring rewritings.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A trade-off parameter is out of range or a pair does not sum to 1.
    InvalidParams {
        /// Explanation.
        detail: String,
    },
    /// The MKB is missing data needed by the model.
    Misd(eve_misd::Error),
    /// The relational layer failed (measured-extent mode).
    Relational(eve_relational::Error),
    /// A view references something the model cannot cost.
    BadView {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParams { detail } => write!(f, "invalid QC parameters: {detail}"),
            Error::Misd(e) => write!(f, "MKB error: {e}"),
            Error::Relational(e) => write!(f, "relational error: {e}"),
            Error::BadView { detail } => write!(f, "cannot cost view: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<eve_misd::Error> for Error {
    fn from(e: eve_misd::Error) -> Self {
        Error::Misd(e)
    }
}

impl From<eve_relational::Error> for Error {
    fn from(e: eve_relational::Error) -> Self {
        Error::Relational(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_wraps_sources() {
        let e = Error::Misd(eve_misd::Error::UnknownRelation {
            relation: "R".into(),
        });
        assert_eq!(e.to_string(), "MKB error: unknown relation `R`");
        let e = Error::InvalidParams {
            detail: "w1 out of range".into(),
        };
        assert!(e.to_string().contains("w1"));
    }
}
