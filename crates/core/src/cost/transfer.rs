//! `CF_T` — bytes transferred per data update (§6.3, Eq. 21).
//!
//! The walk of Algorithm 1 in bytes: the update notification ships the delta
//! tuple to the warehouse; for each site holding view relations, the current
//! delta is sent down (`R_in`), joined with the site's relations (each join
//! scaling the expected delta cardinality by `σ·js·|R|` and widening every
//! delta tuple by the relation's tuple size), and the result is shipped back
//! (`R_out`). The origin site is skipped when it holds no other view
//! relation.

use crate::plan::MaintenancePlan;

/// Expected number of bytes transferred for one base update (Eq. 21).
#[must_use]
pub fn cf_transfer(plan: &MaintenancePlan) -> f64 {
    // Update notification: one delta tuple travels to the warehouse.
    let mut bytes = plan.origin.tuple_bytes;
    let mut delta_card = 1.0f64;
    let mut delta_width = plan.origin.tuple_bytes;

    for site in &plan.sites {
        if site.relations.is_empty() {
            continue; // nothing to join here (possible only for the origin)
        }
        // R_in: the current delta travels to the site…
        bytes += delta_card * delta_width;
        // …joins each local relation…
        for rel in &site.relations {
            delta_card *= rel.selectivity * rel.join_selectivity * rel.cardinality;
            delta_width += rel.tuple_bytes;
        }
        // …and R_out returns to the warehouse.
        bytes += delta_card * delta_width;
    }
    bytes
}

/// Closed form of Eq. 22 for the uniform case (all relations share `|R|`,
/// `s`, `σ`, `js`): used to cross-check the general computation.
#[must_use]
pub fn cf_transfer_uniform_closed_form(
    distribution: &[usize],
    card: f64,
    tuple_bytes: f64,
    selectivity: f64,
    js: f64,
) -> f64 {
    let mut bytes = tuple_bytes; // notification
    let mut cum_relations = 0usize; // n_R(j): relations joined so far
    let mut delta_card = 1.0f64;
    for (i, &count) in distribution.iter().enumerate() {
        let here = if i == 0 { count - 1 } else { count };
        if here == 0 {
            continue;
        }
        #[allow(clippy::cast_precision_loss)]
        let width_in = tuple_bytes * (1.0 + cum_relations as f64);
        bytes += delta_card * width_in;
        #[allow(clippy::cast_precision_loss)]
        let growth = (selectivity * js * card).powi(i32::try_from(here).unwrap_or(i32::MAX));
        delta_card *= growth;
        cum_relations += here;
        #[allow(clippy::cast_precision_loss)]
        let width_out = tuple_bytes * (1.0 + cum_relations as f64);
        bytes += delta_card * width_out;
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(distribution: &[usize], js: f64) -> MaintenancePlan {
        MaintenancePlan::uniform(distribution, js).unwrap()
    }

    #[test]
    fn single_site_six_relations_is_800_bytes() {
        // Experiment 5 / Table 6, m = 1: 8000 bytes for 10 updates.
        // Notification 100 + R_in 100 + R_out 600 (σ·js·|R| = 1 keeps the
        // delta at one tuple while it widens to six attributes).
        let p = plan(&[6], 0.005);
        assert!((cf_transfer(&p) - 800.0).abs() < 1e-9);
    }

    #[test]
    fn six_singleton_sites_is_3600_bytes() {
        // Table 6, m = 6: 216000 / 60 updates = 3600 bytes per update.
        let p = plan(&[1, 1, 1, 1, 1, 1], 0.005);
        assert!((cf_transfer(&p) - 3600.0).abs() < 1e-9);
    }

    #[test]
    fn origin_with_no_peers_ships_nothing_locally() {
        // (1,5): origin alone at site 1 ⇒ no site-1 round trip.
        let p = plan(&[1, 5], 0.005);
        // 100 notification + in 100 + out 600.
        assert!((cf_transfer(&p) - 800.0).abs() < 1e-9);
    }

    #[test]
    fn closed_form_matches_general_computation() {
        for dist in [
            vec![6],
            vec![1, 5],
            vec![2, 4],
            vec![3, 3],
            vec![1, 2, 3],
            vec![2, 2, 2],
            vec![1, 1, 1, 3],
            vec![1, 1, 1, 1, 1, 1],
        ] {
            for js in [0.001, 0.0022, 0.005] {
                let general = cf_transfer(&plan(&dist, js));
                let closed = cf_transfer_uniform_closed_form(&dist, 400.0, 100.0, 0.5, js);
                assert!(
                    (general - closed).abs() < 1e-9,
                    "dist {dist:?} js {js}: {general} vs {closed}"
                );
            }
        }
    }

    #[test]
    fn transfer_grows_with_site_count() {
        // Figure 13(b): bytes transferred increase with the number of sites.
        let avg_for_m = |m: usize| -> f64 {
            let dists = crate::cost::compositions(6, m);
            let total: f64 = dists.iter().map(|d| cf_transfer(&plan(d, 0.005))).sum();
            #[allow(clippy::cast_precision_loss)]
            {
                total / dists.len() as f64
            }
        };
        let series: Vec<f64> = (1..=6).map(avg_for_m).collect();
        for w in series.windows(2) {
            assert!(w[0] < w[1], "series not increasing: {series:?}");
        }
    }

    #[test]
    fn shrinking_deltas_favour_skew_growing_deltas_favour_even() {
        // Figure 14's finding: with js = 0.005 (growing deltas) the even
        // (3,3) distribution beats the skewed (5,1); with js = 0.001
        // (shrinking deltas) the skew wins.
        let grow_even = cf_transfer(&plan(&[3, 3], 0.005));
        let grow_skew = cf_transfer(&plan(&[5, 1], 0.005));
        assert!(grow_even < grow_skew);
        let shrink_even = cf_transfer(&plan(&[3, 3], 0.001));
        let shrink_skew = cf_transfer(&plan(&[5, 1], 0.001));
        assert!(shrink_skew < shrink_even);
    }
}
