//! `CF_M` — messages exchanged per data update (§6.2).
//!
//! Each visited site costs one query message and one answer message; the
//! origin site is skipped when no other view relation lives there
//! (`n_1 = 0`). §6.2's piecewise definition:
//!
//! ```text
//! CF_M = 0          if m = 1 and n_1 = 0
//!        2          if m = 1 and n_1 > 0
//!        2·(m − 1)  if m > 1 and n_1 = 0
//!        2·m        otherwise
//! ```
//!
//! The paper's Experiment 5 numbers additionally count the initial update
//! notification (+1); [`cf_messages`] takes that convention as a flag.

use crate::plan::MaintenancePlan;

/// Number of messages exchanged for one base update.
#[must_use]
pub fn cf_messages(plan: &MaintenancePlan, count_notification: bool) -> f64 {
    let queried_sites = plan
        .sites
        .iter()
        .filter(|s| !s.relations.is_empty())
        .count();
    #[allow(clippy::cast_precision_loss)]
    let base = 2.0 * queried_sites as f64;
    if count_notification {
        base + 1.0
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(distribution: &[usize]) -> MaintenancePlan {
        MaintenancePlan::uniform(distribution, 0.005).unwrap()
    }

    #[test]
    fn paper_piecewise_definition_without_notification() {
        // m = 1, n1 = 0 (single-relation view): no messages at all.
        assert_eq!(cf_messages(&plan(&[1]), false), 0.0);
        // m = 1, n1 > 0: one query/answer round trip.
        assert_eq!(cf_messages(&plan(&[6]), false), 2.0);
        // m = 3, n1 = 0: skip the origin site.
        assert_eq!(cf_messages(&plan(&[1, 3, 2]), false), 4.0);
        // m = 3, n1 > 0: all sites queried.
        assert_eq!(cf_messages(&plan(&[2, 2, 2]), false), 6.0);
    }

    #[test]
    fn experiment5_convention_counts_notification() {
        // Table 6 row m = 1 (distribution (6)): 3 messages per update.
        assert_eq!(cf_messages(&plan(&[6]), true), 3.0);
        // m = 6, all singletons: 1 + 2·5 = 11.
        assert_eq!(cf_messages(&plan(&[1, 1, 1, 1, 1, 1]), true), 11.0);
    }

    #[test]
    fn experiment5_table6_average_for_m2() {
        // Table 6 row m = 2: averaging over the five Table 2 distributions
        // and both origin sites gives 92 / 20 = 4.6 messages per update.
        let dists: [&[usize]; 5] = [&[1, 5], &[2, 4], &[3, 3], &[4, 2], &[5, 1]];
        let mut total = 0.0;
        let mut count = 0usize;
        for d in dists {
            // Origin at site 1 as listed, and the mirrored case (origin at
            // the other site) via the reversed distribution.
            let mut rev: Vec<usize> = d.to_vec();
            rev.reverse();
            for dist in [d.to_vec(), rev] {
                total += cf_messages(&plan(&dist), true);
                count += 1;
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let avg = total / count as f64;
        assert!((avg - 4.6).abs() < 1e-12, "avg = {avg}");
    }
}
