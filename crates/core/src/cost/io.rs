//! `CF_IO` — I/O operations at the information sources (Appendix A).
//!
//! Every join of the travelling delta with a local relation costs I/Os
//! bounded by Eq. 33:
//!
//! ```text
//! IO_i ∈ [ min(⌈|R_i|/bfr⌉, Δ_i · ⌈js·|R_i|/bfr⌉),
//!          min(⌈|R_i|/bfr⌉, Δ_i · js·|R_i|) ]
//! ```
//!
//! where `Δ_i = ∏_{j<i} js·|R_j|` is the expected delta cardinality entering
//! join `i` (Eq. 33 ignores the local selectivities `σ`) and `⌈|R|/bfr⌉` is
//! the full-scan fallback the site's optimizer switches to when probing
//! would be dearer (Eq. 32). The lower bound models clustered index probes
//! (each delta tuple touches only matching blocks), the upper bound
//! unclustered probes (one I/O per matching tuple).

use crate::params::IoBound;
use crate::plan::MaintenancePlan;

fn ceil_div(x: f64, d: f64) -> f64 {
    if d <= 0.0 {
        return x;
    }
    (x / d).ceil()
}

/// Expected I/O operations for one base update under the chosen Eq. 33
/// bound.
#[must_use]
pub fn cf_io(plan: &MaintenancePlan, bound: IoBound) -> f64 {
    let mut delta_card = 1.0f64;
    let mut total = 0.0f64;
    for site in &plan.sites {
        for rel in &site.relations {
            let full_scan = ceil_div(rel.cardinality, rel.blocking_factor);
            let matched = rel.join_selectivity * rel.cardinality;
            let clustered = full_scan.min(delta_card * ceil_div(matched, rel.blocking_factor));
            let unclustered = full_scan.min(delta_card * matched);
            // Eq. 33's formulas can cross when js·|R| < 1 (the block
            // ceiling exceeds the fractional expected matches); order them
            // so Lower ≤ Upper always holds.
            let (lower, upper) = if clustered <= unclustered {
                (clustered, unclustered)
            } else {
                (unclustered, clustered)
            };
            total += match bound {
                IoBound::Lower => lower,
                IoBound::Upper => upper,
                IoBound::Midpoint => 0.5 * (lower + upper),
            };
            delta_card *= matched;
        }
    }
    total
}

/// Analytic I/O of the one-time view *recomputation* baseline: every
/// referenced relation is scanned in full at its source, `Σ ⌈|R|/bfr⌉`
/// (Eq. 32's full-scan term per relation, the \[ZGMHW95\]-style ablation of
/// §6.1). This is also exactly the I/O the physical planner's
/// `PlanEstimate::io_blocks` charges for its scans, which is what the
/// `view_exec` bench experiment cross-checks.
#[must_use]
pub fn cf_recompute_io(relations: &[crate::plan::RelSpec]) -> f64 {
    relations
        .iter()
        .map(|r| ceil_div(r.cardinality, r.blocking_factor))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(distribution: &[usize]) -> MaintenancePlan {
        MaintenancePlan::uniform(distribution, 0.005).unwrap()
    }

    #[test]
    fn experiment5_lower_bound_is_31_per_update() {
        // Table 6: CF_IO = 31 × #updates for every m — the delta growth
        // 2^{i-1} times ⌈2/10⌉ = 1 per join sums to 1+2+4+8+16 = 31,
        // independent of the distribution.
        for dist in [
            vec![6],
            vec![1, 5],
            vec![3, 3],
            vec![2, 2, 2],
            vec![1, 1, 1, 1, 1, 1],
        ] {
            let p = plan(&dist);
            assert!(
                (cf_io(&p, IoBound::Lower) - 31.0).abs() < 1e-9,
                "dist {dist:?}"
            );
        }
    }

    #[test]
    fn upper_bound_doubles_the_lower_here() {
        // js·|R| = 2 ⇒ upper per join = 2^i: 2+4+8+16+32 = 62.
        let p = plan(&[6]);
        assert!((cf_io(&p, IoBound::Upper) - 62.0).abs() < 1e-9);
        assert!((cf_io(&p, IoBound::Midpoint) - 46.5).abs() < 1e-9);
    }

    #[test]
    fn full_scan_caps_probing() {
        // A huge delta makes probing dearer than scanning: cap at ⌈|R|/bfr⌉.
        let mut p = plan(&[1, 1]);
        p.sites[1].relations[0].join_selectivity = 1.0; // every tuple matches
        let full_scan = 40.0; // ⌈400/10⌉
        assert_eq!(cf_io(&p, IoBound::Upper), full_scan);
        assert_eq!(cf_io(&p, IoBound::Lower), full_scan);
    }

    #[test]
    fn recompute_io_sums_full_scans() {
        use crate::plan::RelSpec;
        // Table 1 relations: ⌈400/10⌉ = 40 blocks each.
        let rels = vec![RelSpec::table1("A"), RelSpec::table1("B")];
        assert!((cf_recompute_io(&rels) - 80.0).abs() < 1e-9);
        assert_eq!(cf_recompute_io(&[]), 0.0);
        // Partial blocks round up.
        let mut odd = RelSpec::table1("C");
        odd.cardinality = 401.0;
        assert!((cf_recompute_io(&[odd]) - 41.0).abs() < 1e-9);
    }

    #[test]
    fn experiment4_upper_bound_values() {
        // Exp. 4: delta of one tuple joins S_i alone; upper bound
        // min(⌈|S_i|/10⌉, js·|S_i|) = 0.005·|S_i| for the Table 3 sizes.
        for (card, want) in [(2000.0, 10.0), (4000.0, 20.0), (6000.0, 30.0)] {
            let mut p = plan(&[1, 1]);
            p.sites[1].relations[0].cardinality = card;
            assert!(
                (cf_io(&p, IoBound::Upper) - want).abs() < 1e-9,
                "card {card}"
            );
        }
    }

    #[test]
    fn zero_blocking_factor_degrades_gracefully() {
        let mut p = plan(&[2]);
        p.sites[0].relations[0].blocking_factor = 0.0;
        let io = cf_io(&p, IoBound::Lower);
        assert!(io.is_finite() && io >= 0.0);
    }
}
