//! Cost: view-maintenance cost factors and the Eq. 24 total.
//!
//! ```text
//! Cost(V) = CF_M·cost_M + CF_T·cost_T + CF_IO·cost_IO
//! ```

pub mod io;
pub mod messages;
pub mod transfer;

pub use io::{cf_io, cf_recompute_io};
pub use messages::cf_messages;
pub use transfer::{cf_transfer, cf_transfer_uniform_closed_form};

use crate::params::QcParams;
use crate::plan::MaintenancePlan;

/// The three cost factors of §6.2–6.4 for a single base update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostFactors {
    /// `CF_M` — messages exchanged.
    pub messages: f64,
    /// `CF_T` — bytes transferred.
    pub transfer: f64,
    /// `CF_IO` — I/O operations at the sources.
    pub io: f64,
}

impl CostFactors {
    /// Eq. 24: the weighted total with the parameterized unit prices.
    #[must_use]
    pub fn total(&self, params: &QcParams) -> f64 {
        self.messages * params.cost_m + self.transfer * params.cost_t + self.io * params.cost_io
    }
}

/// Evaluates all three cost factors of a plan.
#[must_use]
pub fn cost_factors(plan: &MaintenancePlan, params: &QcParams) -> CostFactors {
    CostFactors {
        messages: cf_messages(plan, params.count_notification),
        transfer: cf_transfer(plan),
        io: cf_io(plan, params.io_bound),
    }
}

/// Total maintenance cost of one base update (Eq. 24).
#[must_use]
pub fn maintenance_cost(plan: &MaintenancePlan, params: &QcParams) -> f64 {
    cost_factors(plan, params).total(params)
}

/// All ordered compositions of `n` relations into `m` positive site loads —
/// the rows of the paper's Table 2 (e.g. `compositions(6, 2)` yields
/// `(1,5), (2,4), (3,3), (4,2), (5,1)`).
#[must_use]
pub fn compositions(n: usize, m: usize) -> Vec<Vec<usize>> {
    fn rec(remaining: usize, slots: usize, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if slots == 1 {
            if remaining >= 1 {
                prefix.push(remaining);
                out.push(prefix.clone());
                prefix.pop();
            }
            return;
        }
        // Leave at least one relation for each remaining slot.
        for take in 1..=remaining.saturating_sub(slots - 1) {
            prefix.push(take);
            rec(remaining - take, slots - 1, prefix, out);
            prefix.pop();
        }
    }
    if m == 0 || n < m {
        return Vec::new();
    }
    let mut out = Vec::new();
    rec(n, m, &mut Vec::new(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::IoBound;

    #[test]
    fn table2_distribution_counts() {
        // Table 2 lists 1, 5, 10, 10, 5, 1 distributions for m = 1..6.
        let counts: Vec<usize> = (1..=6).map(|m| compositions(6, m).len()).collect();
        assert_eq!(counts, vec![1, 5, 10, 10, 5, 1]);
        assert_eq!(
            compositions(6, 2),
            vec![vec![1, 5], vec![2, 4], vec![3, 3], vec![4, 2], vec![5, 1]]
        );
        assert!(compositions(2, 3).is_empty());
        assert!(compositions(3, 0).is_empty());
    }

    #[test]
    fn eq24_weighted_total() {
        let f = CostFactors {
            messages: 2.0,
            transfer: 1200.0,
            io: 10.0,
        };
        let p = QcParams::default(); // prices 0.1 / 0.7 / 0.2
        assert!((f.total(&p) - (0.2 + 840.0 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn experiment4_cost_values_match_table4_shape() {
        // Reconstructing Table 4's Cost column: m = 2, update at R1's site
        // (no peers), S_i of growing cardinality at site 2. With the upper
        // I/O bound the values land within 0.1 of the paper's 842.3, 1193.3,
        // 1544.3, 1895.3, 2246.3 (the paper's extra constant +0.1 cancels in
        // normalization; see EXPERIMENTS.md).
        let params = QcParams {
            io_bound: IoBound::Upper,
            count_notification: false,
            ..QcParams::default()
        };
        let expect = [842.3, 1193.3, 1544.3, 1895.3, 2246.3];
        for (i, card) in [2000.0, 3000.0, 4000.0, 5000.0, 6000.0].iter().enumerate() {
            let mut plan = MaintenancePlan::uniform(&[1, 1], 0.005).unwrap();
            plan.sites[1].relations[0].cardinality = *card;
            let cost = maintenance_cost(&plan, &params);
            assert!(
                (cost - expect[i]).abs() <= 0.2,
                "S{}: cost {cost} vs paper {}",
                i + 1,
                expect[i]
            );
        }
    }

    #[test]
    fn costs_are_monotone_in_cardinality() {
        let params = QcParams::default();
        let mut last = 0.0;
        for card in [1000.0, 2000.0, 4000.0, 8000.0] {
            let mut plan = MaintenancePlan::uniform(&[1, 1], 0.005).unwrap();
            plan.sites[1].relations[0].cardinality = card;
            let cost = maintenance_cost(&plan, &params);
            assert!(cost > last);
            last = cost;
        }
    }
}
