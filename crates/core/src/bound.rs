//! Admissible partial-rewriting bounds for the branch-and-bound search.
//!
//! The streaming rewrite enumerator (`eve_sync::search`) expands a tree of
//! *partial rewritings* — repairs applied to a prefix of the affected
//! bindings. For best-first search to emit rewritings in exact QC-badness
//! order, every open node needs a score **no completion of the node can
//! beat**. This module computes such bounds from the QC-Model's own
//! factors:
//!
//! * **Divergence** ([`PartialScore::dd_lower`]) — the degree of divergence
//!   of the prefix itself, computed by [`degree_of_divergence`] over the
//!   repairs applied so far. Every further repair only loses interface
//!   attributes (`DD_attr` counts surviving C1/C2 attributes, and repairs
//!   never resurrect one) and only multiplies the extent factors by
//!   per-action ratios with `overlap ≤ min(original, rewriting)` (the
//!   selection-free PC estimates used along chains), so `D1` and `D2` are
//!   non-decreasing along any completion: the prefix divergence is a lower
//!   bound.
//! * **Cost** ([`PartialScore::cost_lower`]) — by default the trivial
//!   (always admissible) floor of zero ([`CostBound::Ignore`]);
//!   [`CostBound::ReducedView`] instead prices the view restricted to the
//!   already-repaired FROM items through [`plans_for_view`] and the
//!   workload model, scaled by the fixed-to-maximum relation-count ratio.
//!   The reduced estimate reuses `cost::{io,transfer,messages}` wholesale
//!   and prunes far more, but is only admissible when joining another
//!   relation never shrinks downstream deltas (`js·|R| ≥ 1`, the paper's
//!   Table 1 regime) — pick it deliberately.
//!
//! [`ScoreModel`] folds a `(DD, cost)` pair into the scalar *badness*
//! `ρ_quality·DD + ρ_cost·COST*` that [`rank_rewritings`] minimizes
//! (`QC = 1 − badness`, Eq. 26), with the Eq. 25 normalization made
//! explicit so a search can be handed the exact normalization of a
//! candidate set — or a scale-free estimate when the set is unknown.
//!
//! [`rank_rewritings`]: crate::rank::rank_rewritings

use eve_esql::ViewDef;
use eve_misd::Mkb;
use eve_sync::{ExtentRelationship, LegalRewriting, Provenance, RewriteAction};

use crate::error::Result;
use crate::params::QcParams;
use crate::plan::plans_for_view;
use crate::quality::degree_of_divergence;
use crate::workload::{total_cost, WorkloadModel};

/// Scalarization of the QC trade-off with an explicit cost normalization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreModel {
    /// Quality weight `ρ_quality` (Eq. 26).
    pub rho_quality: f64,
    /// Cost weight `ρ_cost` (Eq. 26).
    pub rho_cost: f64,
    /// The `min_j COST(V_j)` of the normalization (Eq. 25).
    pub cost_floor: f64,
    /// The `max_j − min_j` spread of the normalization; a non-positive
    /// spread degenerates to the all-zero normalization, exactly like
    /// [`normalize_costs`](crate::rank::normalize_costs).
    pub cost_scale: f64,
}

impl ScoreModel {
    /// The model with the *exact* normalization of a candidate cost set —
    /// badness then orders candidates exactly as [`rank_rewritings`]'s QC
    /// score does (`QC = 1 − badness`).
    ///
    /// [`rank_rewritings`]: crate::rank::rank_rewritings
    #[must_use]
    pub fn from_costs(params: &QcParams, costs: &[f64]) -> ScoreModel {
        let min = costs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = costs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (floor, scale) = if min.is_finite() && max.is_finite() {
            (min, max - min)
        } else {
            (0.0, 0.0)
        };
        ScoreModel {
            rho_quality: params.rho_quality,
            rho_cost: params.rho_cost,
            cost_floor: floor,
            cost_scale: scale,
        }
    }

    /// A scale estimate for searches that cannot know the candidate set up
    /// front: costs are normalized against `scale` from zero. Any positive
    /// scale preserves the badness *minimum* whenever one candidate
    /// minimizes both dimensions; it only re-weights genuine trade-offs.
    #[must_use]
    pub fn with_scale(params: &QcParams, scale: f64) -> ScoreModel {
        ScoreModel {
            rho_quality: params.rho_quality,
            rho_cost: params.rho_cost,
            cost_floor: 0.0,
            cost_scale: scale.max(0.0),
        }
    }

    /// The quality-only corner: cost never contributes (`COST* ≡ 0`).
    #[must_use]
    pub fn quality_only(params: &QcParams) -> ScoreModel {
        ScoreModel::with_scale(params, 0.0)
    }

    /// Badness `ρ_quality·DD + ρ_cost·COST*` — the quantity QC-best
    /// selection minimizes. The normalized cost is floored at zero so
    /// admissible cost lower bounds below `cost_floor` stay admissible.
    #[must_use]
    pub fn badness(&self, dd: f64, cost: f64) -> f64 {
        let normalized = if self.cost_scale > f64::EPSILON {
            ((cost - self.cost_floor) / self.cost_scale).max(0.0)
        } else {
            0.0
        };
        self.rho_quality * dd + self.rho_cost * normalized
    }
}

/// How [`partial_bound`] bounds the maintenance cost of completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostBound {
    /// The trivial floor: zero. Always admissible; pruning is then driven
    /// entirely by the divergence bound (and the exact scores of complete
    /// nodes).
    #[default]
    Ignore,
    /// Price the already-repaired FROM items as a reduced view and scale by
    /// the fixed-to-maximum relation-count ratio. Sharper, but admissible
    /// only under the no-shrinking-join regime (`js·|R| ≥ 1` for every
    /// partner, as with the paper's Table 1 statistics).
    ReducedView,
}

/// Lower bounds on what any completion of a partial rewriting can achieve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialScore {
    /// Lower bound on the completed degree of divergence.
    pub dd_lower: f64,
    /// Lower bound on the completed maintenance cost (per the chosen
    /// [`CostBound`]).
    pub cost_lower: f64,
}

/// Bounds the `(DD, cost)` outcome of every completion of a partial
/// rewriting: `partial_view` carries the repairs of `actions` applied so
/// far; `pending` names the affected bindings still unrepaired.
///
/// # Errors
///
/// Parameter validation or MKB lookups (a repair action referencing a
/// relation unknown to the pre-change MKB).
#[allow(clippy::too_many_arguments)] // mirrors the components of a SearchNode
pub fn partial_bound(
    original: &ViewDef,
    partial_view: &ViewDef,
    actions: &[RewriteAction],
    pending: &[String],
    mkb: &Mkb,
    params: &QcParams,
    workload: WorkloadModel,
    cost_bound: CostBound,
) -> Result<PartialScore> {
    let prefix = LegalRewriting {
        view: partial_view.clone(),
        provenance: Provenance {
            actions: actions.to_vec(),
        },
        // The extent tag is not consulted by the divergence estimator.
        extent: ExtentRelationship::Equal,
    };
    let dd_lower = degree_of_divergence(original, &prefix, mkb, params)?.dd;

    let cost_lower = match cost_bound {
        CostBound::Ignore => 0.0,
        CostBound::ReducedView => {
            let mut reduced = partial_view.clone();
            reduced
                .from
                .retain(|f| !pending.iter().any(|p| p == f.binding_name()));
            if reduced.from.is_empty() {
                0.0
            } else {
                let plans = plans_for_view(&reduced, mkb)?;
                let cost = total_cost(&plans, workload, params);
                #[allow(clippy::cast_precision_loss)]
                let kept = reduced.from.len() as f64;
                #[allow(clippy::cast_precision_loss)]
                let ceiling = kept + pending.len() as f64;
                // A completion averages over at least `kept` and at most…
                // well, possibly more relations; the ratio compensates for
                // workload models that average per origin.
                cost * kept / ceiling.max(1.0)
            }
        }
    };

    Ok(PartialScore {
        dd_lower,
        cost_lower,
    })
}

/// The exact `(DD, cost)` of a *complete* rewriting — the quantities
/// [`rank_rewritings`](crate::rank::rank_rewritings) scores.
///
/// # Errors
///
/// Parameter validation, MKB lookups, or plan derivation failures.
pub fn exact_score(
    original: &ViewDef,
    rewriting: &LegalRewriting,
    mkb: &Mkb,
    params: &QcParams,
    workload: WorkloadModel,
) -> Result<(f64, f64)> {
    let dd = degree_of_divergence(original, rewriting, mkb, params)?.dd;
    let plans = plans_for_view(&rewriting.view, mkb)?;
    let cost = total_cost(&plans, workload, params);
    Ok((dd, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::{normalize_costs, rank_rewritings, SelectionStrategy};
    use eve_misd::{
        AttributeInfo, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
    };
    use eve_relational::DataType;
    use eve_sync::{synchronize, SyncOptions};

    fn attr(name: &str) -> AttributeInfo {
        AttributeInfo::new(name, DataType::Int)
    }

    /// R(A,B) with three replicas: one equivalent, one subset, one superset.
    fn space() -> (Mkb, ViewDef) {
        let mut m = Mkb::new();
        for i in 1..=4u32 {
            m.register_site(SiteId(i), format!("IS{i}")).unwrap();
        }
        m.register_relation(RelationInfo::new(
            "R",
            SiteId(1),
            vec![attr("A"), attr("B")],
            4000,
        ))
        .unwrap();
        for (i, (name, rel, card)) in [
            ("Same", PcRelationship::Equivalent, 4000u64),
            ("Small", PcRelationship::Superset, 2000),
            ("Big", PcRelationship::Subset, 8000),
        ]
        .iter()
        .enumerate()
        {
            m.register_relation(RelationInfo::new(
                *name,
                SiteId(u32::try_from(i).unwrap() + 2),
                vec![attr("A"), attr("B")],
                *card,
            ))
            .unwrap();
            m.add_pc_constraint(PcConstraint::new(
                PcSide::projection("R", &["A", "B"]),
                *rel,
                PcSide::projection(*name, &["A", "B"]),
            ))
            .unwrap();
        }
        let view = eve_esql::parse_view(
            "CREATE VIEW V (VE = '~') AS \
             SELECT X.A AS XA (AR = true), Y.B AS YB (AR = true) \
             FROM R X (RR = true), R Y (RR = true) \
             WHERE X.A = Y.A",
        )
        .unwrap();
        (m, view)
    }

    #[test]
    fn score_model_matches_rank_ordering_exactly() {
        let (mkb, view) = space();
        let change = SchemaChange::DeleteRelation {
            relation: "R".into(),
        };
        let outcome = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        assert!(outcome.rewritings.len() > 2);
        let params = QcParams::default();
        let scored = rank_rewritings(
            &view,
            &outcome.rewritings,
            &mkb,
            &params,
            WorkloadModel::SingleUpdate,
        )
        .unwrap();
        let costs: Vec<f64> = {
            // rank sorts; recover costs in discovery order by index.
            let mut by_index: Vec<(usize, f64)> =
                scored.iter().map(|s| (s.index, s.cost)).collect();
            by_index.sort_by_key(|(i, _)| *i);
            by_index.into_iter().map(|(_, c)| c).collect()
        };
        let model = ScoreModel::from_costs(&params, &costs);
        let norm = normalize_costs(&costs);
        for s in &scored {
            let badness = model.badness(s.divergence.dd, s.cost);
            let qc = 1.0 - badness;
            assert!(
                (qc - s.qc).abs() < 1e-12,
                "badness must mirror QC: {qc} vs {}",
                s.qc
            );
            assert!((model.badness(0.0, s.cost) / params.rho_cost - norm[s.index]).abs() < 1e-9);
        }
        // The badness minimum is the QC-best pick.
        let best = SelectionStrategy::QcBest.select(&scored).unwrap();
        let min_badness = scored
            .iter()
            .map(|s| model.badness(s.divergence.dd, s.cost))
            .fold(f64::INFINITY, f64::min);
        assert!((model.badness(best.divergence.dd, best.cost) - min_badness).abs() < 1e-12);
    }

    #[test]
    fn prefix_divergence_bounds_every_completion() {
        let (mkb, view) = space();
        let change = SchemaChange::DeleteRelation {
            relation: "R".into(),
        };
        let outcome = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        let params = QcParams::default();
        // Every prefix of every completed rewriting's action list bounds
        // the completed divergence from below.
        for rw in &outcome.rewritings {
            let (full_dd, _) =
                exact_score(&view, rw, &mkb, &params, WorkloadModel::SingleUpdate).unwrap();
            for cut in 0..rw.provenance.actions.len() {
                let prefix_actions = &rw.provenance.actions[..cut];
                // The partial view at this cut is not reconstructible here;
                // what the bound consumes is the action list (extent
                // factors) plus the view interface, which only shrinks —
                // use the completed view for the interface (a completion of
                // itself) and the cut action list for the extent factors.
                let bound = partial_bound(
                    &view,
                    &rw.view,
                    prefix_actions,
                    &[],
                    &mkb,
                    &params,
                    WorkloadModel::SingleUpdate,
                    CostBound::Ignore,
                )
                .unwrap();
                assert!(
                    bound.dd_lower <= full_dd + 1e-9,
                    "prefix dd {} exceeds completed dd {full_dd}",
                    bound.dd_lower
                );
            }
        }
    }

    #[test]
    fn reduced_view_cost_bound_is_below_exact_cost_on_swap_completions() {
        let (mkb, view) = space();
        let change = SchemaChange::DeleteRelation {
            relation: "R".into(),
        };
        let outcome = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        let params = QcParams::default();
        for rw in &outcome.rewritings {
            let (_, exact_cost) =
                exact_score(&view, rw, &mkb, &params, WorkloadModel::SingleUpdate).unwrap();
            // Bound a hypothetical node that has committed to this view but
            // still lists a pending binding: the reduced cost must stay
            // below the exact completion cost.
            let pending = vec!["Ghost".to_owned()];
            let bound = partial_bound(
                &view,
                &rw.view,
                &rw.provenance.actions,
                &pending,
                &mkb,
                &params,
                WorkloadModel::SingleUpdate,
                CostBound::ReducedView,
            )
            .unwrap();
            assert!(
                bound.cost_lower <= exact_cost + 1e-9,
                "reduced {} vs exact {exact_cost}",
                bound.cost_lower
            );
        }
    }

    #[test]
    fn ignore_bound_is_zero_and_degenerate_scale_drops_cost() {
        let params = QcParams::default();
        let model = ScoreModel::quality_only(&params);
        assert_eq!(model.badness(0.5, 1e9), params.rho_quality * 0.5);
        let flat = ScoreModel::from_costs(&params, &[7.0, 7.0, 7.0]);
        assert_eq!(flat.badness(0.0, 7.0), 0.0);
        let empty = ScoreModel::from_costs(&params, &[]);
        assert_eq!(empty.badness(0.25, 123.0), params.rho_quality * 0.25);
    }
}
