//! Ranking legal rewritings by the QC score (§6.7, Eq. 25–26).
//!
//! Per-rewriting costs are normalized across the candidate set,
//!
//! ```text
//! COST*(V_i) = (COST(V_i) − min_j COST(V_j)) / (max_j COST(V_j) − min_j COST(V_j))
//! ```
//!
//! and folded with the degree of divergence into
//!
//! ```text
//! QC(V_i) = 1 − (ρ_quality·DD(V_i) + ρ_cost·COST*(V_i))
//! ```
//!
//! An efficiency of 1 would be a perfect rewriting at the cheapest cost in
//! the set; 0 means no information preserved at the dearest cost.

use eve_esql::ViewDef;
use eve_misd::Mkb;
use eve_sync::LegalRewriting;

use crate::error::Result;
use crate::params::QcParams;
use crate::plan::plans_for_view;
use crate::quality::{degree_of_divergence, DivergenceReport};
use crate::workload::{total_cost, WorkloadModel};

/// A rewriting with its full QC-Model assessment.
#[derive(Debug, Clone)]
pub struct ScoredRewriting {
    /// Position in the synchronizer's discovery order (0-based) — the
    /// first-found baseline picks index 0.
    pub index: usize,
    /// The rewriting being scored.
    pub rewriting: LegalRewriting,
    /// Quality breakdown.
    pub divergence: DivergenceReport,
    /// Absolute maintenance cost under the workload model.
    pub cost: f64,
    /// Normalized cost `COST*` (Eq. 25).
    pub normalized_cost: f64,
    /// Efficiency score `QC` (Eq. 26).
    pub qc: f64,
}

/// Normalizes costs across a candidate set (Eq. 25). A uniform set (max =
/// min) normalizes to all zeros.
#[must_use]
pub fn normalize_costs(costs: &[f64]) -> Vec<f64> {
    let min = costs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = costs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !min.is_finite() || !max.is_finite() || (max - min).abs() < f64::EPSILON {
        return vec![0.0; costs.len()];
    }
    costs.iter().map(|c| (c - min) / (max - min)).collect()
}

/// Scores and ranks a set of legal rewritings. The result is sorted by
/// descending `QC`; ties keep discovery order (stable sort).
///
/// # Errors
///
/// Parameter validation, MKB lookups, or plan derivation failures.
pub fn rank_rewritings(
    original: &ViewDef,
    rewritings: &[LegalRewriting],
    mkb: &Mkb,
    params: &QcParams,
    workload: WorkloadModel,
) -> Result<Vec<ScoredRewriting>> {
    params.validate()?;
    let mut divergences = Vec::with_capacity(rewritings.len());
    let mut costs = Vec::with_capacity(rewritings.len());
    for rw in rewritings {
        divergences.push(degree_of_divergence(original, rw, mkb, params)?);
        let plans = plans_for_view(&rw.view, mkb)?;
        costs.push(total_cost(&plans, workload, params));
    }
    let normalized = normalize_costs(&costs);

    let mut scored: Vec<ScoredRewriting> = rewritings
        .iter()
        .enumerate()
        .map(|(i, rw)| ScoredRewriting {
            index: i,
            rewriting: rw.clone(),
            divergence: divergences[i],
            cost: costs[i],
            normalized_cost: normalized[i],
            qc: 1.0 - (params.rho_quality * divergences[i].dd + params.rho_cost * normalized[i]),
        })
        .collect();
    scored.sort_by(|a, b| b.qc.partial_cmp(&a.qc).unwrap_or(std::cmp::Ordering::Equal));
    Ok(scored)
}

/// The quality/cost Pareto front of a scored set: rewritings not dominated
/// by any other candidate (another candidate dominates when it has
/// lower-or-equal divergence *and* lower-or-equal cost, at least one
/// strictly). The QC score linearizes this two-dimensional trade-off
/// (Eq. 26); for any `(ρ_quality, ρ_cost)` the QC-best rewriting lies on
/// this front, so the front is exactly the set of rewritings some user
/// weighting could select.
#[must_use]
pub fn pareto_front(scored: &[ScoredRewriting]) -> Vec<&ScoredRewriting> {
    scored
        .iter()
        .filter(|a| {
            !scored.iter().any(|b| {
                let no_worse = b.divergence.dd <= a.divergence.dd && b.cost <= a.cost;
                let strictly_better = b.divergence.dd < a.divergence.dd || b.cost < a.cost;
                no_worse && strictly_better
            })
        })
        .collect()
}

/// How EVE picks the rewriting to adopt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Highest QC score (the paper's proposal).
    QcBest,
    /// First legal rewriting discovered — what the pre-QC-Model EVE
    /// prototype did (§8); the baseline.
    FirstFound,
    /// Lowest degree of divergence, ignoring cost (`ρ_cost = 0` corner).
    QualityOnly,
    /// Lowest maintenance cost, ignoring quality (`ρ_quality = 0` corner).
    CostOnly,
}

impl SelectionStrategy {
    /// Picks from a scored set (any order). Returns `None` on an empty set.
    #[must_use]
    pub fn select<'a>(&self, scored: &'a [ScoredRewriting]) -> Option<&'a ScoredRewriting> {
        if scored.is_empty() {
            return None;
        }
        let best_by = |cmp: &dyn Fn(&ScoredRewriting, &ScoredRewriting) -> bool| {
            scored
                .iter()
                .fold(None::<&ScoredRewriting>, |acc, x| match acc {
                    None => Some(x),
                    Some(best) => {
                        if cmp(x, best) {
                            Some(x)
                        } else {
                            Some(best)
                        }
                    }
                })
        };
        match self {
            SelectionStrategy::QcBest => {
                best_by(&|x, best| x.qc > best.qc || (x.qc == best.qc && x.index < best.index))
            }
            SelectionStrategy::FirstFound => best_by(&|x, best| x.index < best.index),
            SelectionStrategy::QualityOnly => best_by(&|x, best| {
                x.divergence.dd < best.divergence.dd
                    || (x.divergence.dd == best.divergence.dd && x.index < best.index)
            }),
            SelectionStrategy::CostOnly => best_by(&|x, best| {
                x.cost < best.cost || (x.cost == best.cost && x.index < best.index)
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_bounds_and_degenerate_case() {
        let n = normalize_costs(&[842.3, 1193.3, 1544.3, 1895.3, 2246.3]);
        let want = [0.0, 0.25, 0.5, 0.75, 1.0];
        for (got, want) in n.iter().zip(want) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        assert_eq!(normalize_costs(&[5.0, 5.0, 5.0]), vec![0.0, 0.0, 0.0]);
        assert!(normalize_costs(&[]).is_empty());
    }

    #[test]
    fn normalization_invariant_under_affine_shift() {
        // The +0.1 discrepancy between our Exp-4 costs and the paper's
        // cancels here: (x + c) normalizes identically to x.
        let a = normalize_costs(&[10.0, 20.0, 30.0]);
        let b = normalize_costs(&[10.1, 20.1, 30.1]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    mod selection {
        use super::super::*;
        use eve_esql::parse_view;
        use eve_sync::{ExtentRelationship, Provenance};

        fn scored(idx: usize, dd: f64, cost: f64, qc: f64) -> ScoredRewriting {
            ScoredRewriting {
                index: idx,
                rewriting: LegalRewriting {
                    view: parse_view("CREATE VIEW V AS SELECT R.A FROM R").unwrap(),
                    provenance: Provenance::default(),
                    extent: ExtentRelationship::Equal,
                },
                divergence: DivergenceReport {
                    dd_attr: dd,
                    dd_ext: dd,
                    dd,
                },
                cost,
                normalized_cost: 0.0,
                qc,
            }
        }

        #[test]
        fn strategies_pick_their_extremes() {
            let set = vec![
                scored(0, 0.5, 100.0, 0.60), // first found
                scored(1, 0.0, 900.0, 0.85), // best quality
                scored(2, 0.9, 10.0, 0.70),  // cheapest
                scored(3, 0.2, 500.0, 0.90), // best QC
            ];
            assert_eq!(SelectionStrategy::QcBest.select(&set).unwrap().index, 3);
            assert_eq!(SelectionStrategy::FirstFound.select(&set).unwrap().index, 0);
            assert_eq!(
                SelectionStrategy::QualityOnly.select(&set).unwrap().index,
                1
            );
            assert_eq!(SelectionStrategy::CostOnly.select(&set).unwrap().index, 2);
        }

        #[test]
        fn empty_set_selects_nothing() {
            assert!(SelectionStrategy::QcBest.select(&[]).is_none());
        }

        #[test]
        fn ties_break_by_discovery_order() {
            let set = vec![scored(1, 0.1, 5.0, 0.9), scored(0, 0.1, 5.0, 0.9)];
            assert_eq!(SelectionStrategy::QcBest.select(&set).unwrap().index, 0);
        }
    }

    mod pareto {
        use super::super::*;
        use eve_esql::parse_view;
        use eve_sync::{ExtentRelationship, Provenance};

        fn scored(idx: usize, dd: f64, cost: f64) -> ScoredRewriting {
            ScoredRewriting {
                index: idx,
                rewriting: LegalRewriting {
                    view: parse_view("CREATE VIEW V AS SELECT R.A FROM R").unwrap(),
                    provenance: Provenance::default(),
                    extent: ExtentRelationship::Equal,
                },
                divergence: DivergenceReport {
                    dd_attr: dd,
                    dd_ext: dd,
                    dd,
                },
                cost,
                normalized_cost: 0.0,
                qc: 0.0,
            }
        }

        #[test]
        fn dominated_candidates_are_excluded() {
            let set = vec![
                scored(0, 0.0, 100.0), // front: best quality
                scored(1, 0.5, 10.0),  // front: best cost
                scored(2, 0.6, 50.0),  // dominated by 1 (worse dd, worse cost)
                scored(3, 0.2, 40.0),  // front: intermediate
            ];
            let front = pareto_front(&set);
            let ids: Vec<usize> = front.iter().map(|s| s.index).collect();
            assert_eq!(ids, vec![0, 1, 3]);
        }

        #[test]
        fn front_members_are_mutually_nondominating() {
            let set = vec![
                scored(0, 0.1, 90.0),
                scored(1, 0.1, 90.0), // duplicate point: both survive
                scored(2, 0.3, 30.0),
            ];
            let front = pareto_front(&set);
            assert_eq!(front.len(), 3);
            for a in &front {
                for b in &front {
                    let dominates = b.divergence.dd <= a.divergence.dd
                        && b.cost <= a.cost
                        && (b.divergence.dd < a.divergence.dd || b.cost < a.cost);
                    assert!(!dominates);
                }
            }
        }

        #[test]
        fn qc_best_lies_on_the_front_for_any_weighting() {
            let set = vec![
                scored(0, 0.0, 100.0),
                scored(1, 0.5, 10.0),
                scored(2, 0.25, 55.0),
                scored(3, 0.4, 80.0), // dominated by 2? dd 0.4>0.25, cost 80>55 → dominated
            ];
            let front_ids: Vec<usize> = pareto_front(&set).iter().map(|s| s.index).collect();
            let normalized = normalize_costs(&set.iter().map(|s| s.cost).collect::<Vec<_>>());
            for q in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
                let best = set
                    .iter()
                    .enumerate()
                    .min_by(|(i, a), (j, b)| {
                        let fa = q * a.divergence.dd + (1.0 - q) * normalized[*i];
                        let fb = q * b.divergence.dd + (1.0 - q) * normalized[*j];
                        fa.partial_cmp(&fb).unwrap()
                    })
                    .map(|(i, _)| i)
                    .unwrap();
                assert!(
                    front_ids.contains(&best),
                    "weighting {q} picked off-front candidate {best}"
                );
            }
        }

        #[test]
        fn empty_and_singleton_fronts() {
            assert!(pareto_front(&[]).is_empty());
            let one = vec![scored(0, 0.3, 5.0)];
            assert_eq!(pareto_front(&one).len(), 1);
        }
    }

    mod end_to_end {
        use super::super::*;
        use eve_misd::{
            AttributeInfo, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
        };
        use eve_relational::DataType;
        use eve_sync::{synchronize, SyncOptions};

        /// The full Experiment 4 pipeline: synchronize, rank, check Table 4.
        fn experiment4() -> (ViewDef, Vec<LegalRewriting>, Mkb) {
            let mut m = Mkb::new();
            for i in 1..=6u32 {
                m.register_site(SiteId(i), format!("IS{i}")).unwrap();
            }
            let half = |n: &str| AttributeInfo::sized(n, DataType::Int, 50);
            m.register_relation(RelationInfo::new(
                "R1",
                SiteId(1),
                vec![half("K"), half("X")],
                400,
            ))
            .unwrap();
            let abc = || {
                vec![
                    AttributeInfo::sized("A", DataType::Int, 34),
                    AttributeInfo::sized("B", DataType::Int, 33),
                    AttributeInfo::sized("C", DataType::Int, 33),
                ]
            };
            m.register_relation(RelationInfo::new("R2", SiteId(1), abc(), 4000))
                .unwrap();
            for (i, (name, card)) in [
                ("S1", 2000u64),
                ("S2", 3000),
                ("S3", 4000),
                ("S4", 5000),
                ("S5", 6000),
            ]
            .iter()
            .enumerate()
            {
                m.register_relation(RelationInfo::new(
                    *name,
                    SiteId(u32::try_from(i).unwrap() + 2),
                    abc(),
                    *card,
                ))
                .unwrap();
            }
            let proj = |r: &str| PcSide::projection(r, &["A", "B", "C"]);
            for (a, rel, b) in [
                ("S1", PcRelationship::Subset, "S2"),
                ("S2", PcRelationship::Subset, "S3"),
                ("S3", PcRelationship::Equivalent, "R2"),
                ("S3", PcRelationship::Subset, "S4"),
                ("S4", PcRelationship::Subset, "S5"),
            ] {
                m.add_pc_constraint(PcConstraint::new(proj(a), rel, proj(b)))
                    .unwrap();
            }
            let view = eve_esql::parse_view(
                "CREATE VIEW V (VE = '~') AS \
                 SELECT R2.A (AR = true), R2.B (AR = true), R2.C (AR = true) \
                 FROM R1, R2 (RR = true) \
                 WHERE R1.K = R2.A",
            )
            .unwrap();
            let change = SchemaChange::DeleteRelation {
                relation: "R2".into(),
            };
            let outcome = synchronize(&view, &change, &m, &SyncOptions::default()).unwrap();
            (view, outcome.rewritings, m)
        }

        fn swap_target(rw: &LegalRewriting) -> String {
            rw.view
                .from
                .iter()
                .find(|f| f.relation != "R1")
                .map(|f| f.relation.clone())
                .unwrap_or_default()
        }

        #[test]
        fn experiment4_case1_ranking_matches_table4() {
            let (view, rewritings, mkb) = experiment4();
            assert_eq!(rewritings.len(), 5);
            let params = QcParams::experiment4(0.9, 0.1);
            let scored = rank_rewritings(
                &view,
                &rewritings,
                &mkb,
                &params,
                WorkloadModel::SingleUpdate,
            )
            .unwrap();
            // Table 4 rating: V3 > V2 > V1 > V4 > V5.
            let order: Vec<String> = scored.iter().map(|s| swap_target(&s.rewriting)).collect();
            assert_eq!(order, vec!["S3", "S2", "S1", "S4", "S5"]);
            // QC values of Table 4 (0.95, 0.94125, 0.9325, 0.898, 0.855).
            let by_target = |t: &str| scored.iter().find(|s| swap_target(&s.rewriting) == t);
            for (t, qc) in [
                ("S1", 0.9325),
                ("S2", 0.94125),
                ("S3", 0.95),
                ("S4", 0.898),
                ("S5", 0.855),
            ] {
                let s = by_target(t).unwrap();
                assert!((s.qc - qc).abs() < 1e-6, "{t}: qc {} vs paper {qc}", s.qc);
            }
        }

        #[test]
        fn experiment4_case3_prefers_cheapest_subset() {
            // Case 3 (ρ_quality = ρ_cost = 0.5): cost dominates; V1 (the
            // smallest substitute) wins (§7.4).
            let (view, rewritings, mkb) = experiment4();
            let params = QcParams::experiment4(0.5, 0.5);
            let scored = rank_rewritings(
                &view,
                &rewritings,
                &mkb,
                &params,
                WorkloadModel::SingleUpdate,
            )
            .unwrap();
            assert_eq!(swap_target(&scored[0].rewriting), "S1");
        }

        #[test]
        fn qc_scores_lie_in_unit_interval() {
            let (view, rewritings, mkb) = experiment4();
            for (q, c) in [(0.9, 0.1), (0.75, 0.25), (0.5, 0.5)] {
                let scored = rank_rewritings(
                    &view,
                    &rewritings,
                    &mkb,
                    &QcParams::experiment4(q, c),
                    WorkloadModel::SingleUpdate,
                )
                .unwrap();
                for s in &scored {
                    assert!((0.0..=1.0).contains(&s.qc), "qc = {}", s.qc);
                    assert!((0.0..=1.0).contains(&s.divergence.dd));
                    assert!((0.0..=1.0).contains(&s.normalized_cost));
                }
            }
        }
    }
}
