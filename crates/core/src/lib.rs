//! # eve-qc — the QC-Model
//!
//! The paper's primary contribution: an analytic **efficiency model** that
//! ranks the *non-equivalent* legal rewritings produced by view
//! synchronization along two dimensions:
//!
//! * **Quality** (§5) — the *degree of divergence* `DD(V_i)` of a rewriting
//!   from the original view, combining
//!   * interface divergence `DD_attr` over the weighted attribute categories
//!     C1–C4 ([`quality::interface`], Eq. 12 and §5.4.1), and
//!   * extent divergence `DD_ext` from lost (`D1`) and surplus (`D2`) tuples
//!     on the common attributes ([`quality::extent`], Eq. 13–17), with
//!     overlap sizes either *measured* on materialized extents or *estimated*
//!     from PC constraints (§5.4.3);
//! * **Cost** (§6) — the long-term incremental view-maintenance cost of the
//!   rewriting per base-data update: messages `CF_M` ([`cost::messages`]),
//!   bytes transferred `CF_T` (Eq. 21, [`cost::transfer`]) and source I/O
//!   `CF_IO` (Appendix A, [`cost::io`]), combined with unit prices (Eq. 24)
//!   and aggregated under one of the workload models M1–M4 ([`workload`]).
//!
//! Costs are normalized across the rewriting set (Eq. 25) and folded with
//! quality into the efficiency score (Eq. 26):
//!
//! ```text
//! QC(V_i) = 1 − (ρ_quality · DD(V_i) + ρ_cost · COST*(V_i))
//! ```
//!
//! [`rank::rank_rewritings`] scores and orders a rewriting set;
//! [`rank::SelectionStrategy`] implements QC-best selection plus the
//! baselines (first-found — the pre-QC EVE prototype behaviour — and the
//! quality-only / cost-only corners).

pub mod bound;
pub mod cost;
pub mod error;
pub mod params;
pub mod plan;
pub mod quality;
pub mod rank;
pub mod search;
pub mod workload;

pub use bound::{exact_score, partial_bound, CostBound, PartialScore, ScoreModel};
pub use cost::{maintenance_cost, CostFactors};
pub use error::{Error, Result};
pub use params::{IoBound, QcParams};
pub use plan::{plans_for_view, MaintenancePlan, RelSpec, SiteSpec};
pub use quality::{degree_of_divergence, DivergenceReport, ExtentSizes};
pub use rank::{pareto_front, rank_rewritings, ScoredRewriting, SelectionStrategy};
pub use search::{synchronize_qc_best_first, QcGuide};
pub use workload::WorkloadModel;
