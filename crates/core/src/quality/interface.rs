//! Interface quality: attribute categories and `DD_attr` (§5.2, §5.4.1).
//!
//! Attributes of a view interface fall into four categories by their
//! `(AD, AR)` parameters (Fig. 6). Categories C3/C4 (indispensable) must be
//! preserved by *every* legal rewriting, so they carry no weight; the
//! interface quality of a view counts its C1 and C2 attributes:
//!
//! ```text
//! Q_V = |A¹| · w1 + |A²| · w2                         (Eq. 12)
//! DD_attr(V_i) = (Q_V − Q_{V_i}) / Q_V   (0 when Q_V = 0)
//! ```

use eve_esql::ViewDef;

/// Number of category-C1 attributes (`AD ∧ AR`) in a view interface.
#[must_use]
pub fn category1_count(view: &ViewDef) -> usize {
    view.select
        .iter()
        .filter(|s| s.evolution.dispensable && s.evolution.replaceable)
        .count()
}

/// Number of category-C2 attributes (`AD ∧ ¬AR`) in a view interface.
#[must_use]
pub fn category2_count(view: &ViewDef) -> usize {
    view.select
        .iter()
        .filter(|s| s.evolution.dispensable && !s.evolution.replaceable)
        .count()
}

/// Interface quality `Q_V` (Eq. 12).
#[must_use]
pub fn interface_quality(view: &ViewDef, w1: f64, w2: f64) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    {
        category1_count(view) as f64 * w1 + category2_count(view) as f64 * w2
    }
}

/// Normalized interface divergence `DD_attr(V_i)` of a rewriting from the
/// original view (§5.4.1). Clamped to `[0, 1]`.
#[must_use]
pub fn dd_attr(original: &ViewDef, rewriting: &ViewDef, w1: f64, w2: f64) -> f64 {
    let q_v = interface_quality(original, w1, w2);
    if q_v == 0.0 {
        // All original attributes are indispensable; any legal rewriting
        // preserves them entirely.
        return 0.0;
    }
    let q_vi = interface_quality(rewriting, w1, w2);
    ((q_v - q_vi) / q_v).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_esql::parse_view;

    /// The paper's Example 1: V selects A (strict), B and C (both C1).
    fn example1() -> (ViewDef, ViewDef, ViewDef) {
        let v = parse_view(
            "CREATE VIEW V (VE = '=') AS \
             SELECT A, B (AD = true, AR = true), C (AD = true, AR = true) \
             FROM R WHERE R.A > 10",
        )
        .unwrap();
        let v1 = parse_view(
            "CREATE VIEW V1 (VE = '=') AS \
             SELECT A, B (AD = true, AR = true) FROM R WHERE R.A > 10",
        )
        .unwrap();
        let v2 = parse_view("CREATE VIEW V2 (VE = '=') AS SELECT A FROM R WHERE R.A > 10").unwrap();
        (v, v1, v2)
    }

    #[test]
    fn example3_divergences() {
        // Example 3: Q_V = 2·w1; Q_V1 = w1 ⇒ DD_attr(V1) = 0.5;
        // Q_V2 = 0 ⇒ DD_attr(V2) = 1.
        let (v, v1, v2) = example1();
        let (w1, w2) = (0.7, 0.3);
        assert!((interface_quality(&v, w1, w2) - 1.4).abs() < 1e-12);
        assert!((dd_attr(&v, &v1, w1, w2) - 0.5).abs() < 1e-12);
        assert!((dd_attr(&v, &v2, w1, w2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn category_counting() {
        let v = parse_view(
            "CREATE VIEW V AS \
             SELECT R.A (AD = true, AR = true), R.B (AD = true), \
                    R.C (AR = true), R.D \
             FROM R",
        )
        .unwrap();
        assert_eq!(category1_count(&v), 1); // A
        assert_eq!(category2_count(&v), 1); // B
    }

    #[test]
    fn all_indispensable_gives_zero_divergence() {
        let v = parse_view("CREATE VIEW V AS SELECT R.A, R.B FROM R").unwrap();
        let vi = parse_view("CREATE VIEW V AS SELECT R.A, R.B FROM R").unwrap();
        assert_eq!(dd_attr(&v, &vi, 0.7, 0.3), 0.0);
    }

    #[test]
    fn relative_weights_drive_preference() {
        // Experiment 1's dichotomy: with w1 > w2 a rewriting preserving the
        // C1 attribute beats one preserving the C2 attribute, and vice versa.
        let v = parse_view(
            "CREATE VIEW V0 AS SELECT R.A (AD = true, AR = true), R.B (AD = true) FROM R",
        )
        .unwrap();
        let keeps_a =
            parse_view("CREATE VIEW V1 AS SELECT S.A (AD = true, AR = true) FROM S").unwrap();
        let keeps_b = parse_view("CREATE VIEW V3 AS SELECT R.B (AD = true) FROM R").unwrap();
        // w1 > w2: keeping A diverges less.
        assert!(dd_attr(&v, &keeps_a, 0.7, 0.3) < dd_attr(&v, &keeps_b, 0.7, 0.3));
        // w2 > w1: keeping B diverges less.
        assert!(dd_attr(&v, &keeps_b, 0.3, 0.7) < dd_attr(&v, &keeps_a, 0.3, 0.7));
    }

    #[test]
    fn dd_attr_is_clamped() {
        // A rewriting with *more* weighted attributes than the original
        // (possible after an attribute gains evolution parameters) clamps to
        // zero rather than going negative.
        let v = parse_view("CREATE VIEW V AS SELECT R.A (AD = true) FROM R").unwrap();
        let vi =
            parse_view("CREATE VIEW V AS SELECT R.A (AD = true), R.B (AD = true) FROM R").unwrap();
        assert_eq!(dd_attr(&v, &vi, 0.7, 0.3), 0.0);
    }
}
