//! Extent quality: `DD_ext` from lost and surplus tuples (§5.4.2–5.4.3).
//!
//! The extent of a rewriting `V_i` diverges from the original `V` in two
//! ways, both measured on the common subset of attributes with duplicates
//! removed:
//!
//! ```text
//! D1 = |V \~ V_i| / |V^(V_i)|     — fraction of original tuples lost (Eq. 13)
//! D2 = |V_i \~ V| / |V_i^(V)|     — fraction of surplus tuples      (Eq. 14)
//! DD_ext = ρ1·D1 + ρ2·D2                                            (Eq. 15)
//! ```
//!
//! The three sizes can be *measured* on materialized extents
//! ([`ExtentSizes::measured`]) or *estimated* from the MKB
//! ([`estimate_extent_sizes`]). Estimation follows §5.4.3: the view-level
//! overlap is the product of per-factor overlaps (replaced relations
//! contribute their PC-estimated intersection, Fig. 9/10; every other factor
//! is shared between `V` and `V_i` and cancels in the `D1`/`D2` ratios).

use eve_misd::Mkb;
use eve_relational::{Operand, PrimitiveClause, Relation};
use eve_sync::{LegalRewriting, RewriteAction};

use eve_esql::ViewDef;

use crate::error::{Error, Result};

/// The three extent sizes entering Eq. 15: `|V^(V_i)|`, `|V_i^(V)|` and
/// `|V ∩~ V_i|`. For estimated sizes these are *relative* magnitudes — only
/// the ratios matter, common factors having cancelled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtentSizes {
    /// `|V^(V_i)|` — original view on the common attributes.
    pub original: f64,
    /// `|V_i^(V)|` — rewriting on the common attributes.
    pub rewriting: f64,
    /// `|V ∩~ V_i|` — shared tuples (≤ min of the other two).
    pub overlap: f64,
}

impl ExtentSizes {
    /// Builds sizes, clamping the overlap into `[0, min(original, rewriting)]`.
    #[must_use]
    pub fn new(original: f64, rewriting: f64, overlap: f64) -> ExtentSizes {
        let original = original.max(0.0);
        let rewriting = rewriting.max(0.0);
        ExtentSizes {
            original,
            rewriting,
            overlap: overlap.clamp(0.0, original.min(rewriting)),
        }
    }

    /// Measures the sizes exactly on two materialized extents (Definition 1
    /// and Fig. 7 set operators, duplicates removed).
    ///
    /// # Errors
    ///
    /// Propagates projection/compatibility failures.
    pub fn measured(original: &Relation, rewriting: &Relation) -> Result<ExtentSizes> {
        let sizes = eve_relational::common::measure_common_sizes(original, rewriting)?;
        #[allow(clippy::cast_precision_loss)]
        Ok(ExtentSizes::new(
            sizes.original as f64,
            sizes.rewriting as f64,
            sizes.overlap as f64,
        ))
    }

    /// `DD_ext-D1`: fraction of original tuples not preserved (Eq. 13).
    #[must_use]
    pub fn d1(&self) -> f64 {
        if self.original <= 0.0 {
            0.0
        } else {
            (self.original - self.overlap) / self.original
        }
    }

    /// `DD_ext-D2`: fraction of the new extent that is surplus (Eq. 14).
    #[must_use]
    pub fn d2(&self) -> f64 {
        if self.rewriting <= 0.0 {
            0.0
        } else {
            (self.rewriting - self.overlap) / self.rewriting
        }
    }

    /// `DD_ext = ρ1·D1 + ρ2·D2` (Eq. 15), clamped to `[0, 1]`.
    ///
    /// The `VE`-specific shortcuts of Eq. 16/17 fall out automatically: a
    /// superset rewriting has `overlap = original` hence `D1 = 0`, a subset
    /// rewriting has `overlap = rewriting` hence `D2 = 0`.
    #[must_use]
    pub fn dd_ext(&self, rho_d1: f64, rho_d2: f64) -> f64 {
        (rho_d1 * self.d1() + rho_d2 * self.d2()).clamp(0.0, 1.0)
    }
}

/// Classifies a dropped condition: a clause comparing columns of two
/// different bindings is a join predicate (its removal multiplies the extent
/// by `1/js`), anything else is a local selection (`1/σ`).
fn is_join_clause(clause: &PrimitiveClause) -> bool {
    match &clause.right {
        Operand::Column(rc) => clause.left.qualifier != rc.qualifier,
        Operand::Literal(_) => false,
    }
}

fn binding_relation(view: &ViewDef, binding: &str) -> Option<String> {
    view.from_item(binding).map(|f| f.relation.clone())
}

/// Estimates [`ExtentSizes`] for a rewriting from MKB statistics and the
/// rewriting's provenance (§5.4.3).
///
/// Walks the repair actions, multiplying the factor each contributes to
/// `|V|`, `|V_i|` and `|V ∩~ V_i|` (all other query factors are shared and
/// cancel in `D1`/`D2`):
///
/// * **swapped relation** `R → T`: `|V| ∝ |R|`, `|V_i| ∝ |T|`,
///   overlap `∝ |R ∩~ T|` from the PC constraints (the paper's
///   `|V ∩~ V_1| ≈ js_{T,S} · |R ∩~ T| · |S|` computation for Example 4),
/// * **dropped condition**: the original carries the condition's selectivity
///   (`σ` local, `js` join), the rewriting does not; overlap = original,
/// * **replaced attribute** (`old ⊒ new` fragment): the rewriting keeps only
///   tuples whose value exists in the new fragment,
/// * **dropped attribute / rename**: no extent effect.
///
/// Relations no longer in the MKB (the deleted ones) contribute their last
/// known statistics if still registered — callers must estimate against the
/// *pre-change* MKB, which is also what synchronization uses.
///
/// # Errors
///
/// [`Error::Misd`] if a referenced relation is unknown to the MKB.
pub fn estimate_extent_sizes(
    original: &ViewDef,
    rewriting: &LegalRewriting,
    mkb: &Mkb,
) -> Result<ExtentSizes> {
    let mut orig = 1.0f64;
    let mut rewr = 1.0f64;
    let mut ovl = 1.0f64;

    for action in &rewriting.provenance.actions {
        match action {
            RewriteAction::SwappedRelation {
                old_relation,
                new_relation,
                ..
            } => {
                #[allow(clippy::cast_precision_loss)]
                let old_card = mkb.relation(old_relation)?.cardinality as f64;
                #[allow(clippy::cast_precision_loss)]
                let new_card = mkb.relation(new_relation)?.cardinality as f64;
                let (_, est) = mkb.relation_overlap(old_relation, new_relation)?;
                orig *= old_card;
                rewr *= new_card;
                ovl *= est.size;
            }
            RewriteAction::DroppedCondition { clause } => {
                let factor = if is_join_clause(clause) {
                    // Identify the joined relations to look up a js override.
                    let left_rel = clause
                        .left
                        .qualifier
                        .as_deref()
                        .and_then(|b| binding_relation(original, b));
                    let right_rel = match &clause.right {
                        Operand::Column(c) => c
                            .qualifier
                            .as_deref()
                            .and_then(|b| binding_relation(original, b)),
                        Operand::Literal(_) => None,
                    };
                    match (left_rel, right_rel) {
                        (Some(l), Some(r)) => mkb.join_selectivity(&l, &r),
                        _ => mkb.default_join_selectivity(),
                    }
                } else {
                    // Local selection: the owning relation's registered σ.
                    clause
                        .left
                        .qualifier
                        .as_deref()
                        .and_then(|b| binding_relation(original, b))
                        .and_then(|rel| mkb.relation(&rel).ok().map(|r| r.selectivity))
                        .unwrap_or(0.5)
                };
                // A dropped predicate widens the rewriting: the original is
                // the selected fragment of the new extent.
                orig *= factor;
                ovl *= factor;
            }
            RewriteAction::ReplacedAttribute {
                old,
                new,
                relationship,
            } => {
                if *relationship == eve_misd::PcRelationship::Superset {
                    // Old fragment ⊇ new: tuples with values outside the new
                    // fragment are lost.
                    let old_rel =
                        binding_relation(original, &old.0).ok_or_else(|| Error::BadView {
                            detail: format!("unknown binding `{}` in original view", old.0),
                        })?;
                    #[allow(clippy::cast_precision_loss)]
                    let old_card = mkb.relation(&old_rel)?.cardinality as f64;
                    let (_, est) = mkb.relation_overlap(&old_rel, &new.0)?;
                    let kept = if old_card > 0.0 {
                        (est.size / old_card).clamp(0.0, 1.0)
                    } else {
                        1.0
                    };
                    rewr *= kept;
                    ovl *= kept;
                }
                // Subset/Equivalent fragments preserve the extent under the
                // key-join reading (see eve-sync::extent).
            }
            RewriteAction::DroppedRelation { relation, .. } => {
                // Removing the join with R divides the extent by js·|R|;
                // projected on the common attributes the original cannot
                // exceed the remainder, so the shared factor caps at 1.
                #[allow(clippy::cast_precision_loss)]
                let card = mkb.relation(relation)?.cardinality as f64;
                let js = mkb.default_join_selectivity();
                let factor = (js * card).min(1.0);
                orig *= factor;
                ovl *= factor;
            }
            RewriteAction::DroppedAttribute { .. }
            | RewriteAction::RewroteCondition { .. }
            | RewriteAction::AddedJoinRelation { .. }
            | RewriteAction::Renamed { .. } => {}
        }
    }

    Ok(ExtentSizes::new(orig, rewr, ovl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_misd::{AttributeInfo, PcConstraint, PcRelationship, PcSide, RelationInfo, SiteId};
    use eve_relational::{DataType, Schema, Tuple, Value};
    use eve_sync::{ExtentRelationship, Provenance};

    #[test]
    fn d1_d2_arithmetic() {
        let s = ExtentSizes::new(10.0, 8.0, 6.0);
        assert!((s.d1() - 0.4).abs() < 1e-12);
        assert!((s.d2() - 0.25).abs() < 1e-12);
        assert!((s.dd_ext(0.5, 0.5) - 0.325).abs() < 1e-12);
    }

    #[test]
    fn overlap_clamped_to_min_side() {
        let s = ExtentSizes::new(5.0, 3.0, 99.0);
        assert_eq!(s.overlap, 3.0);
        assert_eq!(s.d2(), 0.0);
        let neg = ExtentSizes::new(5.0, 3.0, -1.0);
        assert_eq!(neg.overlap, 0.0);
    }

    #[test]
    fn empty_sides_do_not_divide_by_zero() {
        let s = ExtentSizes::new(0.0, 0.0, 0.0);
        assert_eq!(s.d1(), 0.0);
        assert_eq!(s.d2(), 0.0);
        assert_eq!(s.dd_ext(0.5, 0.5), 0.0);
    }

    #[test]
    fn subset_and_superset_shortcuts() {
        // Subset rewriting: overlap = rewriting ⇒ D2 = 0 (Eq. 17 case).
        let sub = ExtentSizes::new(4000.0, 2000.0, 2000.0);
        assert_eq!(sub.d2(), 0.0);
        assert!((sub.d1() - 0.5).abs() < 1e-12);
        // Superset rewriting: overlap = original ⇒ D1 = 0 (Eq. 16 case).
        let sup = ExtentSizes::new(4000.0, 5000.0, 4000.0);
        assert_eq!(sup.d1(), 0.0);
        assert!((sup.d2() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn measured_sizes_from_relations() {
        let mk = |name: &str, vals: &[i64]| {
            Relation::with_tuples(
                name,
                Schema::of(&[("A", DataType::Int)]).unwrap(),
                vals.iter()
                    .map(|&v| Tuple::new(vec![Value::Int(v)]))
                    .collect(),
            )
            .unwrap()
        };
        let v = mk("V", &[1, 2, 3, 4]);
        let vi = mk("Vi", &[3, 4, 5]);
        let s = ExtentSizes::measured(&v, &vi).unwrap();
        assert_eq!(
            s,
            ExtentSizes {
                original: 4.0,
                rewriting: 3.0,
                overlap: 2.0
            }
        );
    }

    /// Experiment 4 MKB fragment: R2 (4000) with the containment chain.
    fn exp4_mkb() -> Mkb {
        let mut m = Mkb::new();
        m.register_site(SiteId(1), "one").unwrap();
        let attrs = || {
            vec![
                AttributeInfo::new("A", DataType::Int),
                AttributeInfo::new("B", DataType::Int),
                AttributeInfo::new("C", DataType::Int),
            ]
        };
        for (name, card) in [
            ("R1", 400u64),
            ("R2", 4000),
            ("S1", 2000),
            ("S2", 3000),
            ("S3", 4000),
            ("S4", 5000),
            ("S5", 6000),
        ] {
            m.register_relation(RelationInfo::new(name, SiteId(1), attrs(), card))
                .unwrap();
        }
        let proj = |r: &str| PcSide::projection(r, &["A", "B", "C"]);
        for (a, rel, b) in [
            ("S1", PcRelationship::Subset, "S2"),
            ("S2", PcRelationship::Subset, "S3"),
            ("S3", PcRelationship::Equivalent, "R2"),
            ("S3", PcRelationship::Subset, "S4"),
            ("S4", PcRelationship::Subset, "S5"),
        ] {
            m.add_pc_constraint(PcConstraint::new(proj(a), rel, proj(b)))
                .unwrap();
        }
        m
    }

    fn swap_rewriting(
        target: &str,
        rel: PcRelationship,
        ext: ExtentRelationship,
    ) -> LegalRewriting {
        let view = eve_esql::parse_view(&format!(
            "CREATE VIEW V (VE = '~') AS SELECT R1.X, {target}.A (AR = true) FROM R1, {target} (RR = true)"
        ))
        .unwrap();
        LegalRewriting {
            view,
            provenance: Provenance {
                actions: vec![RewriteAction::SwappedRelation {
                    binding: "R2".into(),
                    old_relation: "R2".into(),
                    new_relation: target.into(),
                    relationship: rel,
                }],
            },
            extent: ext,
        }
    }

    #[test]
    fn experiment4_dd_ext_values() {
        // Table 4 column DD_ext: V1 0.25, V2 0.13, V3 0.00, V4 0.10, V5 0.17.
        let mkb = exp4_mkb();
        let original = eve_esql::parse_view(
            "CREATE VIEW V (VE = '~') AS SELECT R1.X, R2.A (AR = true) FROM R1, R2 (RR = true)",
        )
        .unwrap();
        let cases = [
            (
                "S1",
                PcRelationship::Superset,
                ExtentRelationship::Subset,
                0.25,
            ),
            (
                "S2",
                PcRelationship::Superset,
                ExtentRelationship::Subset,
                0.125,
            ),
            (
                "S3",
                PcRelationship::Equivalent,
                ExtentRelationship::Equal,
                0.0,
            ),
            (
                "S4",
                PcRelationship::Subset,
                ExtentRelationship::Superset,
                0.1,
            ),
            (
                "S5",
                PcRelationship::Subset,
                ExtentRelationship::Superset,
                1.0 / 6.0,
            ),
        ];
        for (target, rel, ext, want) in cases {
            let rw = swap_rewriting(target, rel, ext);
            let sizes = estimate_extent_sizes(&original, &rw, &mkb).unwrap();
            let got = sizes.dd_ext(0.5, 0.5);
            assert!(
                (got - want).abs() < 1e-9,
                "{target}: dd_ext = {got}, want {want}"
            );
        }
    }

    #[test]
    fn dropped_local_condition_shows_surplus() {
        let mkb = exp4_mkb();
        let original = eve_esql::parse_view(
            "CREATE VIEW V (VE = '~') AS SELECT R1.X FROM R1 WHERE R1.X > 10 (CD = true)",
        )
        .unwrap();
        let view = eve_esql::parse_view("CREATE VIEW V (VE = '~') AS SELECT R1.X FROM R1").unwrap();
        let rw = LegalRewriting {
            view,
            provenance: Provenance {
                actions: vec![RewriteAction::DroppedCondition {
                    clause: PrimitiveClause::lit(
                        eve_relational::ColumnRef::parse("R1.X"),
                        eve_relational::CompOp::Gt,
                        Value::Int(10),
                    ),
                }],
            },
            extent: ExtentRelationship::Superset,
        };
        let sizes = estimate_extent_sizes(&original, &rw, &mkb).unwrap();
        // σ = 0.5 ⇒ D1 = 0, D2 = 1 − 0.5 = 0.5.
        assert_eq!(sizes.d1(), 0.0);
        assert!((sizes.d2() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn replaced_attribute_superset_fragment_loses_tuples() {
        let mkb = exp4_mkb();
        let original =
            eve_esql::parse_view("CREATE VIEW V (VE = '~') AS SELECT R2.A (AR = true) FROM R2")
                .unwrap();
        let view =
            eve_esql::parse_view("CREATE VIEW V (VE = '~') AS SELECT S1.A (AR = true) FROM S1")
                .unwrap();
        let rw = LegalRewriting {
            view,
            provenance: Provenance {
                actions: vec![RewriteAction::ReplacedAttribute {
                    old: ("R2".into(), "A".into()),
                    new: ("S1".into(), "A".into()),
                    relationship: PcRelationship::Superset,
                }],
            },
            extent: ExtentRelationship::Subset,
        };
        let sizes = estimate_extent_sizes(&original, &rw, &mkb).unwrap();
        // overlap(R2, S1) = 2000 of 4000 ⇒ half the tuples survive.
        assert!((sizes.d1() - 0.5).abs() < 1e-12);
        assert_eq!(sizes.d2(), 0.0);
    }
}
