//! Quality: the total degree of divergence `DD(V_i)` (§5.4.4, Eq. 20).
//!
//! ```text
//! DD(V_i) = ρ_attr · DD_attr(V_i) + ρ_ext · DD_ext(V_i)
//! ```

pub mod extent;
pub mod interface;

pub use extent::{estimate_extent_sizes, ExtentSizes};
pub use interface::{dd_attr, interface_quality};

use eve_esql::ViewDef;
use eve_misd::Mkb;
use eve_relational::Relation;
use eve_sync::LegalRewriting;

use crate::error::Result;
use crate::params::QcParams;

/// The quality breakdown of one rewriting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivergenceReport {
    /// Interface divergence `DD_attr` (§5.4.1).
    pub dd_attr: f64,
    /// Extent divergence `DD_ext` (§5.4.2).
    pub dd_ext: f64,
    /// Total `DD` (Eq. 20).
    pub dd: f64,
}

/// Computes the total degree of divergence using *estimated* extent sizes
/// (§5.4.3) from the pre-change MKB.
///
/// # Errors
///
/// Parameter validation or MKB lookup failures.
pub fn degree_of_divergence(
    original: &ViewDef,
    rewriting: &LegalRewriting,
    mkb: &Mkb,
    params: &QcParams,
) -> Result<DivergenceReport> {
    params.validate()?;
    let a = dd_attr(original, &rewriting.view, params.w1, params.w2);
    let sizes = estimate_extent_sizes(original, rewriting, mkb)?;
    let e = sizes.dd_ext(params.rho_d1, params.rho_d2);
    Ok(DivergenceReport {
        dd_attr: a,
        dd_ext: e,
        dd: (params.rho_attr * a + params.rho_ext * e).clamp(0.0, 1.0),
    })
}

/// Computes the total degree of divergence from *materialized* extents —
/// the ground-truth counterpart used to validate the estimator.
///
/// # Errors
///
/// Parameter validation or relational failures.
pub fn degree_of_divergence_measured(
    original: &ViewDef,
    rewriting: &ViewDef,
    original_extent: &Relation,
    rewriting_extent: &Relation,
    params: &QcParams,
) -> Result<DivergenceReport> {
    params.validate()?;
    let a = dd_attr(original, rewriting, params.w1, params.w2);
    let sizes = ExtentSizes::measured(original_extent, rewriting_extent)?;
    let e = sizes.dd_ext(params.rho_d1, params.rho_d2);
    Ok(DivergenceReport {
        dd_attr: a,
        dd_ext: e,
        dd: (params.rho_attr * a + params.rho_ext * e).clamp(0.0, 1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_misd::{AttributeInfo, PcConstraint, PcRelationship, PcSide, RelationInfo, SiteId};
    use eve_relational::DataType;
    use eve_sync::{ExtentRelationship, Provenance, RewriteAction};

    fn mkb() -> Mkb {
        let mut m = Mkb::new();
        m.register_site(SiteId(1), "one").unwrap();
        for (name, card) in [("R", 4000u64), ("S", 2000)] {
            m.register_relation(RelationInfo::new(
                name,
                SiteId(1),
                vec![AttributeInfo::new("A", DataType::Int)],
                card,
            ))
            .unwrap();
        }
        m.add_pc_constraint(PcConstraint::new(
            PcSide::projection("S", &["A"]),
            PcRelationship::Subset,
            PcSide::projection("R", &["A"]),
        ))
        .unwrap();
        m
    }

    #[test]
    fn dd_combines_interface_and_extent() {
        let m = mkb();
        let original = eve_esql::parse_view(
            "CREATE VIEW V (VE = '~') AS SELECT R.A (AD = true, AR = true) FROM R (RR = true)",
        )
        .unwrap();
        let view = eve_esql::parse_view(
            "CREATE VIEW V (VE = '~') AS SELECT S.A (AD = true, AR = true) FROM S (RR = true)",
        )
        .unwrap();
        let rw = LegalRewriting {
            view,
            provenance: Provenance {
                actions: vec![RewriteAction::SwappedRelation {
                    binding: "R".into(),
                    old_relation: "R".into(),
                    new_relation: "S".into(),
                    relationship: PcRelationship::Superset,
                }],
            },
            extent: ExtentRelationship::Subset,
        };
        let params = QcParams::default();
        let rep = degree_of_divergence(&original, &rw, &m, &params).unwrap();
        // Interface fully preserved.
        assert_eq!(rep.dd_attr, 0.0);
        // Extent: half the tuples lost, none surplus ⇒ DD_ext = 0.25.
        assert!((rep.dd_ext - 0.25).abs() < 1e-12);
        assert!((rep.dd - 0.3 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn invalid_params_rejected() {
        let m = mkb();
        let original =
            eve_esql::parse_view("CREATE VIEW V (VE = '~') AS SELECT R.A FROM R").unwrap();
        let rw = LegalRewriting {
            view: original.clone(),
            provenance: Provenance::default(),
            extent: ExtentRelationship::Equal,
        };
        let bad = QcParams {
            rho_attr: 0.9,
            rho_ext: 0.9,
            ..QcParams::default()
        };
        assert!(degree_of_divergence(&original, &rw, &m, &bad).is_err());
    }

    #[test]
    fn identity_rewriting_has_zero_divergence() {
        let m = mkb();
        let original =
            eve_esql::parse_view("CREATE VIEW V (VE = '~') AS SELECT R.A (AD = true) FROM R")
                .unwrap();
        let rw = LegalRewriting {
            view: original.clone(),
            provenance: Provenance::default(),
            extent: ExtentRelationship::Equal,
        };
        let rep = degree_of_divergence(&original, &rw, &m, &QcParams::default()).unwrap();
        assert_eq!(rep.dd, 0.0);
    }

    #[test]
    fn measured_divergence_matches_hand_computation() {
        use eve_relational::{Schema, Tuple, Value};
        let original_view = eve_esql::parse_view(
            "CREATE VIEW V (VE = '~') AS SELECT R.A (AD = true, AR = true) FROM R",
        )
        .unwrap();
        let rewriting_view = eve_esql::parse_view(
            "CREATE VIEW V (VE = '~') AS SELECT S.A (AD = true, AR = true) FROM S",
        )
        .unwrap();
        let mk = |name: &str, vals: &[i64]| {
            eve_relational::Relation::with_tuples(
                name,
                Schema::of(&[("A", DataType::Int)]).unwrap(),
                vals.iter()
                    .map(|&v| Tuple::new(vec![Value::Int(v)]))
                    .collect(),
            )
            .unwrap()
        };
        let old_ext = mk("V", &[1, 2, 3, 4]);
        let new_ext = mk("Vi", &[3, 4, 5, 6, 7, 8]);
        let rep = degree_of_divergence_measured(
            &original_view,
            &rewriting_view,
            &old_ext,
            &new_ext,
            &QcParams::default(),
        )
        .unwrap();
        assert_eq!(rep.dd_attr, 0.0);
        // D1 = 2/4, D2 = 4/6 ⇒ DD_ext = 0.5·0.5 + 0.5·(2/3).
        let want = 0.5 * 0.5 + 0.5 * (2.0 / 3.0);
        assert!((rep.dd_ext - want).abs() < 1e-12);
    }
}
