//! Trade-off parameters of the QC-Model.

use crate::error::{Error, Result};

/// Which bound of the I/O estimate interval (Eq. 33) to use. The paper's own
/// experiments use the lower bound in Experiments 2/5 and the upper bound in
/// Experiment 4 (reverse-engineered from Tables 4–6; see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoBound {
    /// Index-assisted joins: each probing delta tuple touches only matching
    /// blocks (lower end of Eq. 33).
    #[default]
    Lower,
    /// Unclustered worst case: every matching tuple costs one I/O, capped by
    /// a full scan (upper end of Eq. 33).
    Upper,
    /// Midpoint of the two bounds.
    Midpoint,
}

/// All tunable parameters of the QC-Model, with the paper's defaults.
///
/// | Parameter | Meaning | Default | Source |
/// |---|---|---|---|
/// | `w1`, `w2` | category C1/C2 attribute weights | 0.7 / 0.3 | §5.2 |
/// | `rho_d1`, `rho_d2` | lost vs surplus tuple weights | 0.5 / 0.5 | §5.4.2 |
/// | `rho_attr`, `rho_ext` | interface vs extent divergence | 0.7 / 0.3 | Exp. 4 |
/// | `cost_m/t/io` | unit prices (message / byte / I/O) | 0.1 / 0.7 / 0.2 | Exp. 4 |
/// | `rho_quality`, `rho_cost` | quality vs cost trade-off | 0.9 / 0.1 | Exp. 4 case 1 |
#[derive(Debug, Clone, PartialEq)]
pub struct QcParams {
    /// Weight of category C1 attributes (dispensable & replaceable).
    pub w1: f64,
    /// Weight of category C2 attributes (dispensable, non-replaceable).
    pub w2: f64,
    /// Weight `ρ1` of `DD_ext-D1` (tuples of the original view lost).
    pub rho_d1: f64,
    /// Weight `ρ2` of `DD_ext-D2` (surplus tuples introduced).
    pub rho_d2: f64,
    /// Weight `ρ_attr` of interface divergence in `DD`.
    pub rho_attr: f64,
    /// Weight `ρ_ext` of extent divergence in `DD`.
    pub rho_ext: f64,
    /// Unit price of one message (`cost_M`, Eq. 24).
    pub cost_m: f64,
    /// Unit price of one transferred byte (`cost_T`, Eq. 24).
    pub cost_t: f64,
    /// Unit price of one I/O (`cost_IO`, Eq. 24).
    pub cost_io: f64,
    /// Weight `ρ_quality` of divergence in the final score (Eq. 26).
    pub rho_quality: f64,
    /// Weight `ρ_cost` of normalized cost in the final score (Eq. 26).
    pub rho_cost: f64,
    /// Which Eq. 33 bound `CF_IO` uses.
    pub io_bound: IoBound,
    /// Whether `CF_M` counts the initial update notification message
    /// (the convention behind the paper's Table 6 numbers).
    pub count_notification: bool,
}

impl Default for QcParams {
    fn default() -> Self {
        QcParams {
            w1: 0.7,
            w2: 0.3,
            rho_d1: 0.5,
            rho_d2: 0.5,
            rho_attr: 0.7,
            rho_ext: 0.3,
            cost_m: 0.1,
            cost_t: 0.7,
            cost_io: 0.2,
            rho_quality: 0.9,
            rho_cost: 0.1,
            io_bound: IoBound::Lower,
            count_notification: true,
        }
    }
}

impl QcParams {
    /// Validates ranges and the `ρ` pairs that must sum to 1
    /// (`ρ1 + ρ2 = 1`, `ρ_attr + ρ_ext = 1`, `ρ_quality + ρ_cost = 1`; the
    /// attribute weights only need `0 ≤ w ≤ 1`, §5.2 footnote 3).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParams`] describing the first violated constraint.
    pub fn validate(&self) -> Result<()> {
        let unit = |name: &str, v: f64| -> Result<()> {
            if !(0.0..=1.0).contains(&v) || v.is_nan() {
                return Err(Error::InvalidParams {
                    detail: format!("{name} = {v} must lie in [0, 1]"),
                });
            }
            Ok(())
        };
        unit("w1", self.w1)?;
        unit("w2", self.w2)?;
        for (name, a, b) in [
            ("rho_d1 + rho_d2", self.rho_d1, self.rho_d2),
            ("rho_attr + rho_ext", self.rho_attr, self.rho_ext),
            ("rho_quality + rho_cost", self.rho_quality, self.rho_cost),
        ] {
            unit(name, a)?;
            unit(name, b)?;
            if (a + b - 1.0).abs() > 1e-9 {
                return Err(Error::InvalidParams {
                    detail: format!("{name} = {} must equal 1", a + b),
                });
            }
        }
        for (name, v) in [
            ("cost_m", self.cost_m),
            ("cost_t", self.cost_t),
            ("cost_io", self.cost_io),
        ] {
            if v < 0.0 || v.is_nan() {
                return Err(Error::InvalidParams {
                    detail: format!("{name} = {v} must be non-negative"),
                });
            }
        }
        Ok(())
    }

    /// The Experiment 4 parameterization for a given quality/cost trade-off
    /// case (`(0.9, 0.1)`, `(0.75, 0.25)` or `(0.5, 0.5)` in the paper).
    #[must_use]
    pub fn experiment4(rho_quality: f64, rho_cost: f64) -> QcParams {
        QcParams {
            rho_quality,
            rho_cost,
            io_bound: IoBound::Upper,
            ..QcParams::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_match_the_paper() {
        let p = QcParams::default();
        p.validate().unwrap();
        assert!(p.w1 > p.w2, "EVE favours replaceable attributes (§5.2)");
        assert!((p.rho_d1 + p.rho_d2 - 1.0).abs() < 1e-12);
        assert!((p.cost_m - 0.1).abs() < 1e-12);
        assert!((p.cost_t - 0.7).abs() < 1e-12);
        assert!((p.cost_io - 0.2).abs() < 1e-12);
    }

    #[test]
    fn pair_sum_violation_rejected() {
        let p = QcParams {
            rho_quality: 0.8,
            rho_cost: 0.1,
            ..QcParams::default()
        };
        let e = p.validate().unwrap_err();
        assert!(e.to_string().contains("rho_quality + rho_cost"));
    }

    #[test]
    fn range_violations_rejected() {
        let p = QcParams {
            w1: 1.5,
            ..QcParams::default()
        };
        assert!(p.validate().is_err());
        let p = QcParams {
            cost_t: -1.0,
            ..QcParams::default()
        };
        assert!(p.validate().is_err());
        let p = QcParams {
            w1: f64::NAN,
            ..QcParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn experiment4_cases_valid() {
        for (q, c) in [(0.9, 0.1), (0.75, 0.25), (0.5, 0.5)] {
            let p = QcParams::experiment4(q, c);
            p.validate().unwrap();
            assert_eq!(p.io_bound, IoBound::Upper);
        }
    }
}
