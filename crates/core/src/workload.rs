//! Workload models M1–M4 (§6.6): how many base updates a view faces per
//! time unit, and therefore how per-update costs aggregate — plus the
//! batched-workload accounting used by the batch pipeline (§6.1: "the cost
//! for multiple updates can then be computed by summing over all
//! individual costs").

use std::collections::BTreeMap;

use crate::cost::maintenance_cost;
use crate::params::QcParams;
use crate::plan::MaintenancePlan;

/// The four workload models of §6.6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadModel {
    /// One update: rank by the single-update cost averaged over origins
    /// (the paper's Experiments 2–4 setting, and equivalent to M4 by §7.5).
    SingleUpdate,
    /// M1 — updates proportional to relation size: `per_tuple · |R|` updates
    /// at each relation `R` per time unit (Experiment 5 uses 1 per 100
    /// tuples).
    TuplesProportional {
        /// Updates per tuple (`p`).
        per_tuple: f64,
    },
    /// M2 — a constant number of updates per relation.
    PerRelation {
        /// Updates per relation (`u`).
        updates: f64,
    },
    /// M3 — a constant number of updates per information source.
    PerSite {
        /// Updates per site (`u`).
        updates: f64,
    },
    /// M4 — a fixed total number of updates per rewriting, spread uniformly
    /// over the referenced relations.
    Fixed {
        /// Total updates (`u`).
        updates: f64,
    },
}

impl WorkloadModel {
    /// Number of updates this model assigns to the *origin relation* of a
    /// plan within one time unit.
    #[must_use]
    pub fn updates_at_origin(&self, plan: &MaintenancePlan, total_relations: usize) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        match self {
            WorkloadModel::SingleUpdate => 1.0 / total_relations.max(1) as f64,
            WorkloadModel::TuplesProportional { per_tuple } => per_tuple * plan.origin.cardinality,
            WorkloadModel::PerRelation { updates } => *updates,
            WorkloadModel::PerSite { updates } => {
                // u updates per site, split among the site's relations (the
                // origin site hosts 1 + n_1 of them).
                let site_relations = 1 + plan.sites.first().map_or(0, |s| s.relations.len());
                updates / site_relations as f64
            }
            WorkloadModel::Fixed { updates } => updates / total_relations.max(1) as f64,
        }
    }
}

/// Total maintenance cost of a view over one time unit: every relation of
/// the view takes its model-assigned number of updates, each charged at that
/// origin's plan cost (§6.6).
///
/// `plans` must contain one `(origin, plan)` entry per view relation, as
/// produced by [`crate::plan::plans_for_view`].
#[must_use]
pub fn total_cost(
    plans: &[(String, MaintenancePlan)],
    model: WorkloadModel,
    params: &QcParams,
) -> f64 {
    let n = plans.len();
    plans
        .iter()
        .map(|(_, plan)| model.updates_at_origin(plan, n) * maintenance_cost(plan, params))
        .sum()
}

/// Analytic maintenance cost of a concrete *batch* of updates: each origin
/// relation is charged its per-update plan cost times the number of
/// updates the batch delivers there (§6.1's additive model). Origins with
/// no plan entry (updates to relations the view does not reference) are
/// free, exactly as Algorithm 1 treats them.
///
/// Because the model is additive per update, this total is independent of
/// how the batch is scheduled — which is the analytic counterpart of the
/// pipeline's differential guarantee that batched and sequential execution
/// charge identical measured costs.
#[must_use]
pub fn batch_total_cost(
    plans: &[(String, MaintenancePlan)],
    updates_per_origin: &BTreeMap<String, u64>,
    params: &QcParams,
) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    plans
        .iter()
        .map(|(origin, plan)| {
            let count = updates_per_origin.get(origin).copied().unwrap_or(0);
            count as f64 * maintenance_cost(plan, params)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{RelSpec, SiteSpec};
    use eve_misd::SiteId;

    fn two_site_plans() -> Vec<(String, MaintenancePlan)> {
        // R (|R| = 400) at site 1; S (|S| = 2000) at site 2.
        let r = RelSpec::table1("R");
        let s = RelSpec {
            cardinality: 2000.0,
            ..RelSpec::table1("S")
        };
        let plan_r = MaintenancePlan {
            origin: r.clone(),
            sites: vec![
                SiteSpec {
                    site: SiteId(1),
                    relations: vec![],
                },
                SiteSpec {
                    site: SiteId(2),
                    relations: vec![s.clone()],
                },
            ],
        };
        let plan_s = MaintenancePlan {
            origin: s,
            sites: vec![
                SiteSpec {
                    site: SiteId(2),
                    relations: vec![],
                },
                SiteSpec {
                    site: SiteId(1),
                    relations: vec![r],
                },
            ],
        };
        vec![("R".into(), plan_r), ("S".into(), plan_s)]
    }

    #[test]
    fn m1_scales_with_cardinality() {
        let plans = two_site_plans();
        let model = WorkloadModel::TuplesProportional { per_tuple: 0.01 };
        assert_eq!(model.updates_at_origin(&plans[0].1, 2), 4.0);
        assert_eq!(model.updates_at_origin(&plans[1].1, 2), 20.0);
    }

    #[test]
    fn m2_constant_per_relation() {
        let plans = two_site_plans();
        let model = WorkloadModel::PerRelation { updates: 10.0 };
        for (_, p) in &plans {
            assert_eq!(model.updates_at_origin(p, 2), 10.0);
        }
        // Total = 10·cost(R-plan) + 10·cost(S-plan).
        let params = QcParams::default();
        let want = 10.0 * maintenance_cost(&plans[0].1, &params)
            + 10.0 * maintenance_cost(&plans[1].1, &params);
        assert!((total_cost(&plans, model, &params) - want).abs() < 1e-9);
    }

    #[test]
    fn m3_splits_updates_within_a_site() {
        // Two relations at one site: each origin takes u/2.
        let r = RelSpec::table1("R");
        let q = RelSpec::table1("Q");
        let plan = MaintenancePlan {
            origin: r,
            sites: vec![SiteSpec {
                site: SiteId(1),
                relations: vec![q],
            }],
        };
        let model = WorkloadModel::PerSite { updates: 10.0 };
        assert_eq!(model.updates_at_origin(&plan, 2), 5.0);
    }

    #[test]
    fn m4_fixed_total_is_origin_independent() {
        let plans = two_site_plans();
        let model = WorkloadModel::Fixed { updates: 8.0 };
        let per_origin: f64 = plans
            .iter()
            .map(|(_, p)| model.updates_at_origin(p, plans.len()))
            .sum();
        assert!((per_origin - 8.0).abs() < 1e-12);
    }

    #[test]
    fn batch_cost_is_additive_and_schedule_independent() {
        let plans = two_site_plans();
        let params = QcParams::default();
        let mut counts = BTreeMap::new();
        counts.insert("R".to_owned(), 3u64);
        counts.insert("S".to_owned(), 2u64);
        // Unreferenced origins are free.
        counts.insert("Unrelated".to_owned(), 99u64);
        let total = batch_total_cost(&plans, &counts, &params);
        let want = 3.0 * maintenance_cost(&plans[0].1, &params)
            + 2.0 * maintenance_cost(&plans[1].1, &params);
        assert!((total - want).abs() < 1e-9);
        // Splitting the batch changes nothing (additivity).
        let mut first = BTreeMap::new();
        first.insert("R".to_owned(), 1u64);
        let mut rest = BTreeMap::new();
        rest.insert("R".to_owned(), 2u64);
        rest.insert("S".to_owned(), 2u64);
        let split =
            batch_total_cost(&plans, &first, &params) + batch_total_cost(&plans, &rest, &params);
        assert!((split - total).abs() < 1e-9);
        // Empty batch is free.
        assert_eq!(batch_total_cost(&plans, &BTreeMap::new(), &params), 0.0);
    }

    #[test]
    fn m1_preserves_ranking_of_proportional_costs() {
        // §7.5: M1 scales costs proportionally to relation size, so the
        // *normalized* costs — and hence the ranking — do not change for
        // rewritings whose plans differ only in one relation's cardinality.
        let params = QcParams::default();
        let build = |card: f64| {
            let mut plan = MaintenancePlan::uniform(&[1, 1], 0.005).unwrap();
            plan.sites[1].relations[0].cardinality = card;
            vec![("R1".to_owned(), plan)]
        };
        let single: Vec<f64> = [2000.0, 4000.0, 6000.0]
            .iter()
            .map(|&c| total_cost(&build(c), WorkloadModel::SingleUpdate, &params))
            .collect();
        let m1: Vec<f64> = [2000.0, 4000.0, 6000.0]
            .iter()
            .map(|&c| {
                total_cost(
                    &build(c),
                    WorkloadModel::TuplesProportional { per_tuple: 0.01 },
                    &params,
                )
            })
            .collect();
        // Same ordering.
        assert!(single[0] < single[1] && single[1] < single[2]);
        assert!(m1[0] < m1[1] && m1[1] < m1[2]);
    }
}
