//! Differential property tests of the batch planner and the memoized
//! rewriting cache: caching must be invisible (identical outcomes to the
//! uncached synchronizer, across generations), and plans must be faithful
//! regroupings of their op sequences (every op exactly once, order
//! preserved, partitions pairwise disjoint).

use proptest::prelude::*;

use eve_misd::{
    AttributeInfo, Mkb, PcConstraint, PcRelationship, PcSide, RelationInfo, SchemaChange, SiteId,
};
use eve_relational::{tup, DataType};
use eve_sync::batch::{partition_stage, plan, EvolutionOp, RewriteCache, Stage, ViewFootprint};
use eve_sync::{synchronize, SyncOptions, SyncOutcome};

const RELATIONS: usize = 4;

/// An information space with `RELATIONS` base relations `R0..` spread over
/// that many sites, plus `replicas` equivalent replicas of each (PC
/// constraints over all attributes).
fn space(replicas: usize) -> Mkb {
    let mut mkb = Mkb::new();
    let attrs = || {
        vec![
            AttributeInfo::new("A", DataType::Int),
            AttributeInfo::new("B", DataType::Int),
        ]
    };
    let mut site = 1u32;
    for r in 0..RELATIONS {
        mkb.register_site(SiteId(site), format!("IS{site}"))
            .unwrap();
        mkb.register_relation(RelationInfo::new(
            format!("R{r}"),
            SiteId(site),
            attrs(),
            400,
        ))
        .unwrap();
        site += 1;
    }
    for r in 0..RELATIONS {
        for k in 0..replicas {
            mkb.register_site(SiteId(site), format!("IS{site}"))
                .unwrap();
            let name = format!("R{r}_rep{k}");
            mkb.register_relation(RelationInfo::new(&name, SiteId(site), attrs(), 400))
                .unwrap();
            mkb.add_pc_constraint(PcConstraint::new(
                PcSide::projection(format!("R{r}"), &["A", "B"]),
                PcRelationship::Equivalent,
                PcSide::projection(&name, &["A", "B"]),
            ))
            .unwrap();
            site += 1;
        }
    }
    mkb
}

fn view_over(rel: usize, name: &str) -> eve_esql::ViewDef {
    eve_esql::parse_view(&format!(
        "CREATE VIEW {name} (VE = '~') AS \
         SELECT R{rel}.A (AD = true, AR = true), R{rel}.B (AD = true) \
         FROM R{rel} (RR = true) \
         WHERE R{rel}.A > 3 (CD = true)"
    ))
    .unwrap()
}

fn change_for(kind: usize, rel: usize) -> SchemaChange {
    let relation = format!("R{rel}");
    match kind % 4 {
        0 => SchemaChange::DeleteRelation { relation },
        1 => SchemaChange::DeleteAttribute {
            relation,
            attribute: "A".into(),
        },
        2 => SchemaChange::RenameAttribute {
            relation,
            from: "A".into(),
            to: "A2".into(),
        },
        _ => SchemaChange::RenameRelation {
            from: relation,
            to: format!("R{rel}x"),
        },
    }
}

fn assert_same_outcome(a: &SyncOutcome, b: &SyncOutcome) {
    assert_eq!(a.affected, b.affected);
    assert_eq!(a.survives(), b.survives());
    let texts = |o: &SyncOutcome| -> Vec<(String, String)> {
        o.rewritings
            .iter()
            .map(|r| (r.view.to_string(), r.extent.to_string()))
            .collect()
    };
    assert_eq!(texts(a), texts(b));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache is invisible: for any op sequence interleaving
    /// synchronizations and MKB mutations, the cached outcome equals a
    /// fresh uncached synchronization at every step.
    #[test]
    fn cached_synchronize_is_equivalent_to_uncached(
        replicas in 0usize..3,
        steps in prop::collection::vec((0usize..4, 0usize..RELATIONS, any::<bool>()), 1..12),
    ) {
        let mut mkb = space(replicas);
        let mut cache = RewriteCache::new();
        let options = SyncOptions::default();
        let mut selectivity_step = 0u32;
        for (kind, rel, mutate) in steps {
            if mutate {
                // A statistics tweak: semantically irrelevant to the
                // rewriting set here, but it moves the generation, so the
                // cache must transparently recompute.
                selectivity_step += 1;
                mkb.set_join_selectivity(
                    "R0",
                    "R1",
                    0.001 * f64::from(selectivity_step % 7 + 1),
                );
            }
            let view = view_over(rel, "V");
            let change = change_for(kind, rel);
            let cached = cache.synchronize(&view, &change, &mkb, &options).unwrap();
            let fresh = synchronize(&view, &change, &mkb, &options).unwrap();
            assert_same_outcome(&cached, &fresh);
        }
        // The cache actually caches: re-running the last query is a hit.
        let before = cache.hits();
        let view = view_over(0, "V");
        let change = change_for(0, 0);
        cache.synchronize(&view, &change, &mkb, &options).unwrap();
        cache.synchronize(&view, &change, &mkb, &options).unwrap();
        prop_assert!(cache.hits() > before);
    }

    /// Partitioning is a faithful regrouping: every op appears in exactly
    /// one partition, ops inside a partition keep their relative order, and
    /// partitions are pairwise disjoint in sites and views.
    #[test]
    fn partitions_are_disjoint_and_complete(
        ops_spec in prop::collection::vec(0usize..RELATIONS, 1..20),
        join_views in any::<bool>(),
    ) {
        let ops: Vec<EvolutionOp> = ops_spec
            .iter()
            .map(|&r| EvolutionOp::insert(format!("R{r}"), vec![tup![1, 2]]))
            .collect();
        let refs: Vec<&EvolutionOp> = ops.iter().collect();
        let views: Vec<ViewFootprint> = if join_views {
            // One view joins R0 and R1, chaining their partitions.
            vec![
                ViewFootprint { name: "J".into(), relations: vec!["R0".into(), "R1".into()] },
                ViewFootprint { name: "V2".into(), relations: vec!["R2".into()] },
            ]
        } else {
            (0..RELATIONS)
                .map(|r| ViewFootprint {
                    name: format!("V{r}"),
                    relations: vec![format!("R{r}")],
                })
                .collect()
        };
        let mkb = space(0);
        let parts = partition_stage(&refs, &views, |rel| {
            mkb.relation(rel).ok().map(|i| i.site.0)
        });

        // Completeness and uniqueness.
        let mut seen = vec![false; ops.len()];
        for p in &parts {
            for &idx in &p.ops {
                prop_assert!(!seen[idx], "op {idx} in two partitions");
                seen[idx] = true;
            }
            // Order preserved.
            prop_assert!(p.ops.windows(2).all(|w| w[0] < w[1]));
        }
        prop_assert!(seen.iter().all(|&s| s));

        // Pairwise disjoint sites and views.
        for (i, a) in parts.iter().enumerate() {
            for b in parts.iter().skip(i + 1) {
                prop_assert!(a.sites.iter().all(|s| !b.sites.contains(s)));
                prop_assert!(a.views.iter().all(|v| !b.views.contains(v)));
            }
        }

        // Conflicting ops stayed together.
        if join_views {
            let part_of = |rel: &str| {
                parts.iter().position(|p| {
                    p.ops.iter().any(|&i| ops_spec[i] == rel[1..].parse::<usize>().unwrap())
                })
            };
            if let (Some(p0), Some(p1)) = (part_of("R0"), part_of("R1")) {
                prop_assert_eq!(p0, p1, "ops joined by a view share a partition");
            }
        }
    }

    /// Whole-batch planning: capability ops are barriers; data runs around
    /// them are partitioned with batch-relative indices.
    #[test]
    fn plan_respects_barriers(
        prefix in 1usize..6,
        suffix in 1usize..6,
    ) {
        let mut ops: Vec<EvolutionOp> = (0..prefix)
            .map(|k| EvolutionOp::insert(format!("R{}", k % RELATIONS), vec![tup![1, 2]]))
            .collect();
        ops.push(EvolutionOp::change(SchemaChange::DeleteRelation {
            relation: "R0".into(),
        }));
        ops.extend(
            (0..suffix)
                .map(|k| EvolutionOp::insert(format!("R{}", 1 + k % (RELATIONS - 1)), vec![tup![1, 2]])),
        );
        let views: Vec<ViewFootprint> = (0..RELATIONS)
            .map(|r| ViewFootprint {
                name: format!("V{r}"),
                relations: vec![format!("R{r}")],
            })
            .collect();
        let mkb = space(0);
        let p = plan(&ops, &views, |rel| mkb.relation(rel).ok().map(|i| i.site.0));
        prop_assert_eq!(p.stages.len(), 3);
        prop_assert_eq!(&p.stages[1], &Stage::Capability { op: prefix });
        let mut covered: Vec<usize> = Vec::new();
        for stage in &p.stages {
            match stage {
                Stage::Data { partitions } => {
                    for part in partitions {
                        covered.extend(&part.ops);
                    }
                }
                Stage::Capability { op } => covered.push(*op),
            }
        }
        covered.sort_unstable();
        prop_assert_eq!(covered, (0..ops.len()).collect::<Vec<_>>());
        prop_assert!(p.max_width() >= 1);
    }
}
