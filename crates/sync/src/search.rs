//! The streaming rewrite-search driver: one enumerator, pluggable
//! exploration policies.
//!
//! The pre-refactor pipeline materialized the *entire* cross product of
//! per-binding repairs ([`crate::legacy`]) and left ranking to the QC-Model
//! afterwards, while the §8 heuristic search was a separate, partially
//! duplicated code path. This module folds both into a single driver over
//! the per-binding candidate tree:
//!
//! * a [`SearchNode`] is a *partial rewriting* — the repairs applied to a
//!   prefix of the affected bindings plus the bindings still pending,
//! * an [`ExplorationPolicy`] decides which nodes are expanded and in what
//!   order:
//!   * [`Exhaustive`] reproduces the pre-refactor output byte for byte
//!     (cross product, breadth cap, `finish` filtering in discovery order),
//!   * [`BestFirst`] is branch-and-bound: nodes are popped in ascending
//!     [`SearchGuide`] score; with *admissible* lower bounds (no completion
//!     of a node scores below the node's bound) the first emission is the
//!     global badness minimum — the QC-best rewriting is found without
//!     materializing the candidate tail,
//!   * [`Beam`] keeps at most `width` repaired candidates per binding level,
//!     generated in guide partner order, realizing the §7.6 heuristic search
//!     as a policy instead of a parallel implementation,
//! * rewritings are *streamed* to an emission callback as soon as they pass
//!   the legality filter, so any-time consumers stop the search early.
//!
//! Wide exhaustive levels are expanded on scoped threads: candidate
//! generation is a pure function of `(node, binding, partners, MKB)`, the
//! PC-partner closure is resolved once from the shared
//! [`PartnerCache`], and the MKB's generation-keyed inverted indexes are
//! lock-free to read, so per-node expansions parallelize without changing
//! the (deterministic) output order.
//!
//! [`Exhaustive`]: ExplorationPolicy::Exhaustive
//! [`BestFirst`]: ExplorationPolicy::BestFirst
//! [`Beam`]: ExplorationPolicy::Beam

use std::collections::{BTreeSet, BinaryHeap};
use std::thread;

use eve_esql::ViewDef;
use eve_misd::{Mkb, SchemaChange};

use crate::extent::ExtentRelationship;
use crate::rewriting::{LegalRewriting, Provenance, RewriteAction};
use crate::synchronizer::{
    build_attr_replacement, build_drop_components, build_drop_relation, build_swap,
    rename_attribute, rename_relation, structurally_sound, uses_attr, Candidate, PartnerCache,
    PcPartner, SyncError, SyncOptions, SyncOutcome,
};

/// A partial rewriting: the repairs applied so far to a prefix of the
/// affected bindings, plus the bindings still pending.
#[derive(Debug, Clone)]
pub struct SearchNode {
    /// The partially repaired view definition.
    pub view: ViewDef,
    /// Repair actions applied so far, in application order.
    pub actions: Vec<RewriteAction>,
    /// Extent relationship composed over the applied repairs.
    pub extent: ExtentRelationship,
    /// Affected bindings not yet repaired (suffix of the binding list).
    pub pending: Vec<String>,
    /// Monotone discovery counter; best-first ties pop earlier nodes first.
    pub discovery: u64,
}

impl SearchNode {
    /// Whether every affected binding has been repaired.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Policy callbacks steering the non-exhaustive searches.
pub trait SearchGuide {
    /// Badness of a node — lower is better. For a node with pending repairs
    /// this must be an **admissible lower bound** (no completion of the node
    /// may score below it) for [`ExplorationPolicy::BestFirst`] to emit in
    /// exact badness order; for a complete node it must be the exact
    /// badness. `eve-qc` provides the QC-Model instance (`QcGuide`).
    fn score(&self, original: &ViewDef, node: &SearchNode, mkb: &Mkb) -> f64;

    /// Whether this guide reorders PC partners ([`order_partners`]). The
    /// driver skips the per-expansion partner copy for guides that keep the
    /// default order (e.g. pure bound providers like `QcGuide`).
    ///
    /// [`order_partners`]: SearchGuide::order_partners
    fn orders_partners(&self) -> bool {
        false
    }

    /// Optional preference ordering of the PC partners consulted when a
    /// binding is expanded (consulted only when [`orders_partners`] returns
    /// `true`). Candidates are *built* in this order, so a beam stops
    /// before the tail of the candidate space is ever materialized. The
    /// default keeps the BFS discovery order of the partner closure.
    ///
    /// [`orders_partners`]: SearchGuide::orders_partners
    fn order_partners(
        &self,
        _view: &ViewDef,
        _binding: &str,
        _mkb: &Mkb,
        _partners: &mut [PcPartner],
    ) {
    }
}

/// How the driver explores the per-binding candidate tree.
pub enum ExplorationPolicy<'g> {
    /// Materialize the full (breadth-capped) cross product level by level.
    /// Output is byte-identical to the pre-refactor synchronizer
    /// ([`crate::legacy::synchronize_legacy`]), pinned by the differential
    /// property suite.
    Exhaustive,
    /// Branch-and-bound best-first search: nodes are expanded in ascending
    /// guide score. With admissible bounds the first emission is the global
    /// badness minimum — zero strategy regret against QC-best selection
    /// over the exhaustive set.
    BestFirst {
        /// The bound/score provider (e.g. `eve_qc::search::QcGuide`).
        guide: &'g dyn SearchGuide,
    },
    /// Level-synchronous beam: at most `width` repaired candidates are
    /// generated per binding level, in guide partner order — the §7.6
    /// heuristic search ([`crate::heuristic`]).
    Beam {
        /// Beam width; also caps the emitted rewritings.
        width: usize,
        /// Partner-ordering provider (e.g. the §7.6 heuristics).
        guide: &'g dyn SearchGuide,
    },
}

/// Observability counters of one search run (exposed through the
/// `search_space` experiment and the engine statistics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Candidate views built — the cost metric the `search_space`
    /// experiment compares across policies.
    pub materialized: u64,
    /// Nodes whose children were generated.
    pub expanded: u64,
    /// Rewritings emitted to the consumer.
    pub emitted: u64,
    /// Nodes abandoned without expansion: beam truncation, or frontier
    /// remaining when the emission target was reached.
    pub pruned: u64,
}

impl SearchStats {
    /// Mirrors one run's counters into the global metrics registry under
    /// `search.<policy>.{materialized,expanded,emitted,pruned}`, so the
    /// `metrics` surface accumulates per-policy search-space totals.
    fn publish(self, policy: &str) {
        let registry = eve_trace::global();
        registry
            .counter(&format!("search.{policy}.materialized"))
            .add(self.materialized);
        registry
            .counter(&format!("search.{policy}.expanded"))
            .add(self.expanded);
        registry
            .counter(&format!("search.{policy}.emitted"))
            .add(self.emitted);
        registry
            .counter(&format!("search.{policy}.pruned"))
            .add(self.pruned);
    }
}

/// The change restricted to one binding of the damaged relation.
#[derive(Debug, Clone)]
enum BindingChange {
    /// `delete-attribute`: the named attribute disappeared.
    Attribute(String),
    /// `delete-relation`: the whole relation disappeared.
    Relation,
}

/// Generates the repair candidates of one binding in the canonical order
/// (attribute replacements, then swaps, then drops — the pre-refactor
/// discovery order), streaming each to `f` until it returns `false`.
fn for_each_candidate(
    view: &ViewDef,
    binding: &str,
    change: &BindingChange,
    partners: &[PcPartner],
    mkb: &Mkb,
    f: &mut dyn FnMut(Candidate) -> bool,
) {
    let Some(from_item) = view.from_item(binding) else {
        return;
    };
    let replaceable = from_item.evolution.replaceable;
    let dispensable = from_item.evolution.dispensable;
    match change {
        BindingChange::Attribute(attr) => {
            // (a) attribute replacement keeping the relation.
            for partner in partners.iter().filter(|p| p.attr_map.contains_key(attr)) {
                if let Some(c) = build_attr_replacement(view, binding, attr, partner, mkb) {
                    if !f(c) {
                        return;
                    }
                }
            }
            // (b) whole-relation swap (Experiment 1's V1/V2 route).
            if replaceable {
                for partner in partners {
                    if let Some(c) = build_swap(view, binding, partner) {
                        if !f(c) {
                            return;
                        }
                    }
                }
            }
            // (c) drop every component that used the attribute.
            if let Some(c) = build_drop_components(view, binding, attr) {
                let _ = f(c);
            }
        }
        BindingChange::Relation => {
            // (a) swap for each PC partner.
            if replaceable {
                for partner in partners {
                    if let Some(c) = build_swap(view, binding, partner) {
                        if !f(c) {
                            return;
                        }
                    }
                }
            }
            // (b) drop the relation and everything derived from it.
            if dispensable {
                if let Some(c) = build_drop_relation(view, binding) {
                    let _ = f(c);
                }
            }
        }
    }
}

/// One node's full expansion at a binding level.
enum Expansion {
    /// The binding no longer exists in the partial view (a previous repair
    /// removed it); the node passes through unchanged.
    PassThrough,
    /// The per-binding repair candidates, in canonical order.
    Children(Vec<Candidate>),
}

fn expand_one(
    node: &SearchNode,
    binding: &str,
    change: &BindingChange,
    partners: &[PcPartner],
    mkb: &Mkb,
) -> Expansion {
    if node.view.from_item(binding).is_none() {
        return Expansion::PassThrough;
    }
    let mut children = Vec::new();
    for_each_candidate(&node.view, binding, change, partners, mkb, &mut |c| {
        children.push(c);
        true
    });
    Expansion::Children(children)
}

/// Level width beyond which exhaustive expansion fans out on scoped
/// threads. Below it, sequential expansion avoids spawn overhead.
const PARALLEL_LEVEL_WIDTH: usize = 16;

/// Expands every node of a level, on scoped threads when the level is wide
/// enough to amortize the spawns. Results come back in node order, so the
/// (deterministic) replay downstream is independent of the thread count.
fn expand_level(
    level: &[SearchNode],
    binding: &str,
    change: &BindingChange,
    partners: &[PcPartner],
    mkb: &Mkb,
) -> Vec<Expansion> {
    let workers = thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if level.len() < PARALLEL_LEVEL_WIDTH || workers <= 1 {
        return level
            .iter()
            .map(|node| expand_one(node, binding, change, partners, mkb))
            .collect();
    }
    let chunk = level.len().div_ceil(workers);
    thread::scope(|scope| {
        let handles: Vec<_> = level
            .chunks(chunk)
            .map(|nodes| {
                scope.spawn(move || {
                    nodes
                        .iter()
                        .map(|node| expand_one(node, binding, change, partners, mkb))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("search expansion worker panicked"))
            .collect()
    })
}

fn make_child(
    node: &SearchNode,
    candidate: Candidate,
    pending: &[String],
    discovery: &mut u64,
) -> SearchNode {
    let (view, new_actions, next_ext) = candidate;
    let mut actions = node.actions.clone();
    actions.extend(new_actions);
    *discovery += 1;
    SearchNode {
        view,
        actions,
        extent: node.extent.compose(next_ext),
        pending: pending.to_vec(),
        discovery: *discovery,
    }
}

fn pass_through(node: &SearchNode, pending: &[String], discovery: &mut u64) -> SearchNode {
    *discovery += 1;
    SearchNode {
        pending: pending.to_vec(),
        discovery: *discovery,
        ..node.clone()
    }
}

/// The one-level dispensable-drop spectrum of a complete node
/// ([`SyncOptions::enumerate_dispensable_drops`], the CVS-style widened
/// search): each dispensable SELECT item dropped once, as further complete
/// nodes. The exhaustive/beam paths derive the same variants inside
/// [`finish_stream`]; best-first pushes them into its frontier so they are
/// emitted in exact score order like every other candidate.
fn spectrum_variants(node: &SearchNode, discovery: &mut u64) -> Vec<SearchNode> {
    let mut out = Vec::new();
    for (idx, item) in node.view.select.iter().enumerate() {
        if !item.evolution.dispensable || node.view.select.len() <= 1 {
            continue;
        }
        let mut v = node.view.clone();
        let dropped = v.select.remove(idx);
        if let Some(cols) = &mut v.column_names {
            cols.remove(idx);
        }
        let mut actions = node.actions.clone();
        actions.push(RewriteAction::DroppedAttribute {
            binding: dropped.attr.qualifier.clone().unwrap_or_default(),
            attribute: dropped.attr.name.clone(),
        });
        *discovery += 1;
        out.push(SearchNode {
            view: v,
            actions,
            extent: node.extent,
            pending: Vec::new(),
            discovery: *discovery,
        });
    }
    out
}

/// Final legality filter shared by the exhaustive and beam paths:
/// structural sanity, `VE` compliance, dedup, emission cap, optional
/// dispensable-drop spectrum — the pre-refactor `finish`, emitting each
/// accepted rewriting as soon as it is accepted.
fn finish_stream(
    original: &ViewDef,
    nodes: &[SearchNode],
    options: &SyncOptions,
    cap: usize,
    stats: &mut SearchStats,
    emit: &mut dyn FnMut(LegalRewriting) -> bool,
) {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut emitted = 0usize;
    let mut push = |view: ViewDef,
                    actions: Vec<RewriteAction>,
                    extent: ExtentRelationship,
                    seen: &mut BTreeSet<String>,
                    stats: &mut SearchStats|
     -> bool {
        if emitted >= cap {
            return false;
        }
        if !structurally_sound(&view) || !extent.satisfies(original.ve) {
            return true;
        }
        let key = view.to_string();
        if seen.insert(key) {
            emitted += 1;
            stats.emitted += 1;
            return emit(LegalRewriting {
                view,
                provenance: Provenance { actions },
                extent,
            });
        }
        true
    };

    for node in nodes {
        if !push(
            node.view.clone(),
            node.actions.clone(),
            node.extent,
            &mut seen,
            stats,
        ) {
            return;
        }
    }

    if options.enumerate_dispensable_drops {
        // One extra level: drop each dispensable attribute of each
        // candidate — the same derivation best-first feeds its frontier.
        let mut discovery = 0u64;
        for node in nodes {
            for variant in spectrum_variants(node, &mut discovery) {
                if !push(
                    variant.view,
                    variant.actions,
                    variant.extent,
                    &mut seen,
                    stats,
                ) {
                    return;
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Policy drivers
// ----------------------------------------------------------------------

/// The invariant inputs of one search run.
struct SearchCtx<'a> {
    /// The validated original view.
    original: &'a ViewDef,
    /// The affected bindings, in FROM order.
    bindings: &'a [String],
    /// The change restricted to one binding.
    change: &'a BindingChange,
    /// PC partners of the changed relation (shared closure).
    partners: &'a [PcPartner],
    mkb: &'a Mkb,
    options: &'a SyncOptions,
}

impl SearchCtx<'_> {
    fn root(&self) -> SearchNode {
        SearchNode {
            view: self.original.clone(),
            actions: Vec::new(),
            extent: ExtentRelationship::Equal,
            pending: self.bindings.to_vec(),
            discovery: 0,
        }
    }
}

fn run_exhaustive(
    ctx: &SearchCtx<'_>,
    emit: &mut dyn FnMut(LegalRewriting) -> bool,
) -> SearchStats {
    let mut stats = SearchStats::default();
    let mut discovery = 0u64;
    let cap = ctx.options.max_rewritings.saturating_mul(4);
    let mut level = vec![ctx.root()];
    for (i, binding) in ctx.bindings.iter().enumerate() {
        let rest = &ctx.bindings[i + 1..];
        let expansions = expand_level(&level, binding, ctx.change, ctx.partners, ctx.mkb);
        let mut next: Vec<SearchNode> = Vec::new();
        for (node, expansion) in level.iter().zip(expansions) {
            match expansion {
                Expansion::PassThrough => {
                    next.push(pass_through(node, rest, &mut discovery));
                }
                Expansion::Children(children) => {
                    stats.expanded += 1;
                    stats.materialized += children.len() as u64;
                    // Replay of the historical breadth cap: checked after
                    // each push, breaking only this node's candidate run.
                    for candidate in children {
                        next.push(make_child(node, candidate, rest, &mut discovery));
                        if next.len() >= cap {
                            break;
                        }
                    }
                }
            }
        }
        level = next;
    }
    finish_stream(
        ctx.original,
        &level,
        ctx.options,
        ctx.options.max_rewritings,
        &mut stats,
        emit,
    );
    stats
}

/// Max-heap entry ordered so the *lowest* score (then earliest discovery)
/// pops first.
struct HeapEntry {
    score: f64,
    node: SearchNode,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| other.node.discovery.cmp(&self.node.discovery))
    }
}

fn run_best_first(
    ctx: &SearchCtx<'_>,
    guide: &dyn SearchGuide,
    emit: &mut dyn FnMut(LegalRewriting) -> bool,
) -> SearchStats {
    let mut stats = SearchStats::default();
    let mut discovery = 0u64;
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    let root = ctx.root();
    let root_score = guide.score(ctx.original, &root, ctx.mkb);
    heap.push(HeapEntry {
        score: root_score,
        node: root,
    });
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut emitted = 0usize;

    while let Some(entry) = heap.pop() {
        let node = entry.node;
        if node.is_complete() {
            // Structural/VE legality was checked at creation; the pop order
            // certifies this is the badness minimum of everything open.
            if seen.insert(node.view.to_string()) {
                emitted += 1;
                stats.emitted += 1;
                let keep_going = emit(LegalRewriting {
                    view: node.view,
                    provenance: Provenance {
                        actions: node.actions,
                    },
                    extent: node.extent,
                });
                if emitted >= ctx.options.max_rewritings || !keep_going {
                    break;
                }
            }
            continue;
        }
        let binding = node.pending[0].clone();
        let rest: Vec<String> = node.pending[1..].to_vec();
        if node.view.from_item(&binding).is_none() {
            let child = pass_through(&node, &rest, &mut discovery);
            // A pass-through changes nothing the score depends on.
            heap.push(HeapEntry {
                score: entry.score,
                node: child,
            });
            continue;
        }
        stats.expanded += 1;
        let ordered: Option<Vec<PcPartner>> = guide.orders_partners().then(|| {
            let mut reordered = ctx.partners.to_vec();
            guide.order_partners(&node.view, &binding, ctx.mkb, &mut reordered);
            reordered
        });
        let partners = ordered.as_deref().unwrap_or(ctx.partners);
        for_each_candidate(
            &node.view,
            &binding,
            ctx.change,
            partners,
            ctx.mkb,
            &mut |c| {
                stats.materialized += 1;
                let child = make_child(&node, c, &rest, &mut discovery);
                // The CVS-style spectrum (one extra dispensable-drop level)
                // enters the frontier alongside its base candidate, so
                // emissions stay in exact score order — mirroring the
                // variants `finish_stream` derives for the batch paths.
                let spectrum = if child.is_complete() && ctx.options.enumerate_dispensable_drops {
                    spectrum_variants(&child, &mut discovery)
                } else {
                    Vec::new()
                };
                for child in std::iter::once(child).chain(spectrum) {
                    // Illegal completions can never be emitted — drop them
                    // before they cost a bound evaluation.
                    if child.is_complete()
                        && (!structurally_sound(&child.view)
                            || !child.extent.satisfies(ctx.original.ve))
                    {
                        continue;
                    }
                    let score = guide.score(ctx.original, &child, ctx.mkb);
                    heap.push(HeapEntry { score, node: child });
                }
                true
            },
        );
    }
    stats.pruned += heap.len() as u64;
    stats
}

fn run_beam(
    ctx: &SearchCtx<'_>,
    width: usize,
    guide: &dyn SearchGuide,
    emit: &mut dyn FnMut(LegalRewriting) -> bool,
) -> SearchStats {
    let mut stats = SearchStats::default();
    let mut discovery = 0u64;
    let width = width.max(1);
    let mut level = vec![ctx.root()];
    for (i, binding) in ctx.bindings.iter().enumerate() {
        let rest = &ctx.bindings[i + 1..];
        let mut next: Vec<SearchNode> = Vec::new();
        let mut generated = 0usize;
        for node in &level {
            if node.view.from_item(binding).is_none() {
                next.push(pass_through(node, rest, &mut discovery));
                continue;
            }
            if generated >= width {
                stats.pruned += 1;
                continue;
            }
            stats.expanded += 1;
            let ordered: Option<Vec<PcPartner>> = guide.orders_partners().then(|| {
                let mut reordered = ctx.partners.to_vec();
                guide.order_partners(&node.view, binding, ctx.mkb, &mut reordered);
                reordered
            });
            let partners = ordered.as_deref().unwrap_or(ctx.partners);
            match ctx.change {
                BindingChange::Relation => {
                    // Swap candidates inherit the partner preference order,
                    // so generation stops as soon as the beam is full — the
                    // candidate tail is never built.
                    for_each_candidate(
                        &node.view,
                        binding,
                        ctx.change,
                        partners,
                        ctx.mkb,
                        &mut |c| {
                            stats.materialized += 1;
                            generated += 1;
                            next.push(make_child(node, c, rest, &mut discovery));
                            generated < width
                        },
                    );
                }
                BindingChange::Attribute(_) => {
                    // Attribute repairs mix kinds (replacements, swaps,
                    // drops) whose relative preference the partner order
                    // alone cannot express; they are cheap to build, so
                    // rank the node's full candidate set by guide score
                    // before truncating to the remaining budget (the
                    // historical §7.6 behaviour).
                    let mut children: Vec<SearchNode> = Vec::new();
                    for_each_candidate(
                        &node.view,
                        binding,
                        ctx.change,
                        partners,
                        ctx.mkb,
                        &mut |c| {
                            stats.materialized += 1;
                            children.push(make_child(node, c, rest, &mut discovery));
                            true
                        },
                    );
                    children.sort_by(|a, b| {
                        let sa = guide.score(ctx.original, a, ctx.mkb);
                        let sb = guide.score(ctx.original, b, ctx.mkb);
                        sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
                    });
                    let budget = width - generated;
                    let kept = children.len().min(budget);
                    stats.pruned += (children.len() - kept) as u64;
                    generated += kept;
                    next.extend(children.into_iter().take(kept));
                }
            }
        }
        level = next;
    }
    finish_stream(
        ctx.original,
        &level,
        ctx.options,
        width.min(ctx.options.max_rewritings),
        &mut stats,
        emit,
    );
    stats
}

// ----------------------------------------------------------------------
// Entry points
// ----------------------------------------------------------------------

/// Synchronizes a view against a capability change, streaming each legal
/// rewriting to `emit` as the policy discovers it. Returns whether the view
/// was affected at all, plus the search counters. `emit` returns `false`
/// to stop the search early (any-time consumption).
///
/// # Errors
///
/// [`SyncError::Validation`] when the view is structurally invalid.
pub fn synchronize_streaming(
    view: &ViewDef,
    change: &SchemaChange,
    mkb: &Mkb,
    options: &SyncOptions,
    policy: &ExplorationPolicy<'_>,
    partners: &mut PartnerCache,
    emit: &mut dyn FnMut(LegalRewriting) -> bool,
) -> Result<(bool, SearchStats), SyncError> {
    let view = eve_esql::validate::validate(view).map_err(|e| SyncError::Validation(e.message))?;
    let mut stats = SearchStats::default();

    let (binding_change, bindings) = match change {
        SchemaChange::AddAttribute { .. } | SchemaChange::AddRelation { .. } => {
            return Ok((false, stats));
        }
        SchemaChange::RenameAttribute { relation, from, to } => {
            let outcome = rename_attribute(&view, relation, from, to);
            for rw in outcome.rewritings {
                stats.emitted += 1;
                if !emit(rw) {
                    break;
                }
            }
            return Ok((outcome.affected, stats));
        }
        SchemaChange::RenameRelation { from, to } => {
            let outcome = rename_relation(&view, from, to);
            for rw in outcome.rewritings {
                stats.emitted += 1;
                if !emit(rw) {
                    break;
                }
            }
            return Ok((outcome.affected, stats));
        }
        SchemaChange::DeleteAttribute {
            relation,
            attribute,
        } => {
            let bindings: Vec<String> = view
                .from
                .iter()
                .filter(|f| &f.relation == relation)
                .map(|f| f.binding_name().to_owned())
                .filter(|b| uses_attr(&view, b, attribute))
                .collect();
            (BindingChange::Attribute(attribute.clone()), bindings)
        }
        SchemaChange::DeleteRelation { relation } => {
            let bindings: Vec<String> = view
                .from
                .iter()
                .filter(|f| &f.relation == relation)
                .map(|f| f.binding_name().to_owned())
                .collect();
            (BindingChange::Relation, bindings)
        }
    };

    if bindings.is_empty() {
        return Ok((false, stats));
    }
    // Every affected binding references the changed relation, so one
    // partner closure (resolved through the shared cache) serves the whole
    // search — including its scoped-thread expansions.
    let relation = view
        .from_item(&bindings[0])
        .map(|f| f.relation.clone())
        .unwrap_or_default();
    let partner_list = partners.partners(mkb, &relation);

    let ctx = SearchCtx {
        original: &view,
        bindings: &bindings,
        change: &binding_change,
        partners: &partner_list,
        mkb,
        options,
    };
    let _span = eve_trace::span("search.run");
    let (policy_name, stats) = match policy {
        ExplorationPolicy::Exhaustive => ("exhaustive", run_exhaustive(&ctx, emit)),
        ExplorationPolicy::BestFirst { guide } => {
            ("best_first", run_best_first(&ctx, *guide, emit))
        }
        ExplorationPolicy::Beam { width, guide } => ("beam", run_beam(&ctx, *width, *guide, emit)),
    };
    stats.publish(policy_name);
    Ok((true, stats))
}

/// [`synchronize_streaming`] collecting the emissions into a
/// [`SyncOutcome`], with the search counters alongside.
///
/// # Errors
///
/// [`SyncError::Validation`] when the view is structurally invalid.
pub fn synchronize_with_policy(
    view: &ViewDef,
    change: &SchemaChange,
    mkb: &Mkb,
    options: &SyncOptions,
    policy: &ExplorationPolicy<'_>,
    partners: &mut PartnerCache,
) -> Result<(SyncOutcome, SearchStats), SyncError> {
    let mut rewritings = Vec::new();
    let (affected, stats) = synchronize_streaming(
        view,
        change,
        mkb,
        options,
        policy,
        partners,
        &mut |rw: LegalRewriting| {
            rewritings.push(rw);
            true
        },
    )?;
    Ok((
        SyncOutcome {
            affected,
            rewritings,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_misd::{AttributeInfo, PcConstraint, PcRelationship, PcSide, RelationInfo, SiteId};
    use eve_relational::DataType;

    fn attr(name: &str) -> AttributeInfo {
        AttributeInfo::new(name, DataType::Int)
    }

    /// R(A,B) with `n` equivalent replicas covering both attributes.
    fn replicated_space(n: usize) -> Mkb {
        let mut m = Mkb::new();
        m.register_site(SiteId(1), "one").unwrap();
        m.register_relation(RelationInfo::new(
            "R",
            SiteId(1),
            vec![attr("A"), attr("B")],
            400,
        ))
        .unwrap();
        for i in 0..n {
            let site = SiteId(u32::try_from(i).unwrap() + 2);
            m.register_site(site, format!("rep{i}")).unwrap();
            let name = format!("Rep{i}");
            m.register_relation(RelationInfo::new(
                &name,
                site,
                vec![attr("A"), attr("B")],
                400 + 100 * i as u64,
            ))
            .unwrap();
            m.add_pc_constraint(PcConstraint::new(
                PcSide::projection("R", &["A", "B"]),
                PcRelationship::Equivalent,
                PcSide::projection(&name, &["A", "B"]),
            ))
            .unwrap();
        }
        m
    }

    fn self_join_view(k: usize) -> ViewDef {
        let select: Vec<String> = (0..k)
            .map(|i| format!("X{i}.A AS A{i} (AR = true)"))
            .collect();
        let from: Vec<String> = (0..k).map(|i| format!("R X{i} (RR = true)")).collect();
        let conds: Vec<String> = (1..k).map(|i| format!("X{}.A = X{i}.A", i - 1)).collect();
        let where_clause = if conds.is_empty() {
            String::new()
        } else {
            format!(" WHERE {}", conds.join(" AND "))
        };
        eve_esql::parse_view(&format!(
            "CREATE VIEW V (VE = '~') AS SELECT {} FROM {}{}",
            select.join(", "),
            from.join(", "),
            where_clause
        ))
        .unwrap()
    }

    /// A guide preferring small replica indices (deterministic, admissible
    /// for itself: the score only counts repairs already applied).
    struct IndexGuide;
    impl SearchGuide for IndexGuide {
        fn score(&self, _original: &ViewDef, node: &SearchNode, _mkb: &Mkb) -> f64 {
            node.actions
                .iter()
                .map(|a| match a {
                    RewriteAction::SwappedRelation { new_relation, .. } => new_relation
                        .strip_prefix("Rep")
                        .and_then(|s| s.parse::<f64>().ok())
                        .unwrap_or(100.0),
                    _ => 0.0,
                })
                .sum()
        }
    }

    #[test]
    fn exhaustive_streams_the_full_cross_product() {
        let mkb = replicated_space(3);
        let view = self_join_view(2);
        let change = SchemaChange::DeleteRelation {
            relation: "R".into(),
        };
        let (outcome, stats) = synchronize_with_policy(
            &view,
            &change,
            &mkb,
            &SyncOptions::default(),
            &ExplorationPolicy::Exhaustive,
            &mut PartnerCache::new(),
        )
        .unwrap();
        assert!(outcome.affected);
        // 3 choices per binding; the second level merges same-relation hosts,
        // so every pair is produced (some dedup to fewer printed forms).
        assert!(!outcome.rewritings.is_empty());
        assert_eq!(stats.emitted as usize, outcome.rewritings.len());
        assert!(stats.materialized >= 3 + 9 - 3, "two-level cross product");
    }

    #[test]
    fn best_first_emits_guide_minimum_first_and_prunes() {
        let mkb = replicated_space(4);
        let view = self_join_view(3);
        let change = SchemaChange::DeleteRelation {
            relation: "R".into(),
        };
        let (exhaustive, ex_stats) = synchronize_with_policy(
            &view,
            &change,
            &mkb,
            &SyncOptions::default(),
            &ExplorationPolicy::Exhaustive,
            &mut PartnerCache::new(),
        )
        .unwrap();
        let guide = IndexGuide;
        let mut first: Option<LegalRewriting> = None;
        let (_, bf_stats) = synchronize_streaming(
            &view,
            &change,
            &mkb,
            &SyncOptions::default(),
            &ExplorationPolicy::BestFirst { guide: &guide },
            &mut PartnerCache::new(),
            &mut |rw| {
                first = Some(rw);
                false // any-time: stop after the first emission
            },
        )
        .unwrap();
        let first = first.expect("an emission");
        // The guide minimum swaps every binding onto Rep0.
        assert!(
            first.view.from.iter().all(|f| f.relation == "Rep0"),
            "{}",
            first.view
        );
        // The best-first arm built strictly fewer candidates than the
        // exhaustive cross product and left frontier nodes unexpanded.
        assert!(bf_stats.materialized < ex_stats.materialized);
        assert!(bf_stats.pruned > 0);
        // The emission is one of the exhaustive results.
        assert!(exhaustive
            .rewritings
            .iter()
            .any(|r| r.view.to_string() == first.view.to_string()));
    }

    #[test]
    fn beam_respects_width_per_level() {
        let mkb = replicated_space(4);
        let view = self_join_view(2);
        let change = SchemaChange::DeleteRelation {
            relation: "R".into(),
        };
        let guide = IndexGuide;
        let (outcome, stats) = synchronize_with_policy(
            &view,
            &change,
            &mkb,
            &SyncOptions::default(),
            &ExplorationPolicy::Beam {
                width: 2,
                guide: &guide,
            },
            &mut PartnerCache::new(),
        )
        .unwrap();
        assert!(outcome.rewritings.len() <= 2);
        assert!(stats.materialized <= 4, "2 per level over 2 levels");
    }

    #[test]
    fn best_first_covers_the_dispensable_drop_spectrum() {
        // `enumerate_dispensable_drops` must reach the same rewriting set
        // through the frontier as the batch paths derive in their final
        // filter — only the emission order may differ.
        let mkb = replicated_space(2);
        let view = eve_esql::parse_view(
            "CREATE VIEW V (VE = '~') AS \
             SELECT X0.A AS A0 (AD = true, AR = true), X0.B AS B0 (AD = true, AR = true) \
             FROM R X0 (RR = true)",
        )
        .unwrap();
        let change = SchemaChange::DeleteRelation {
            relation: "R".into(),
        };
        let options = SyncOptions {
            enumerate_dispensable_drops: true,
            ..SyncOptions::default()
        };
        let (exhaustive, _) = synchronize_with_policy(
            &view,
            &change,
            &mkb,
            &options,
            &ExplorationPolicy::Exhaustive,
            &mut PartnerCache::new(),
        )
        .unwrap();
        let guide = IndexGuide;
        let (best_first, _) = synchronize_with_policy(
            &view,
            &change,
            &mkb,
            &options,
            &ExplorationPolicy::BestFirst { guide: &guide },
            &mut PartnerCache::new(),
        )
        .unwrap();
        let as_set = |o: &SyncOutcome| -> BTreeSet<String> {
            o.rewritings.iter().map(|r| r.view.to_string()).collect()
        };
        assert!(
            exhaustive.rewritings.len() > 2,
            "spectrum adds rewritings beyond the two swaps"
        );
        assert_eq!(as_set(&exhaustive), as_set(&best_first));
    }

    #[test]
    fn unaffected_changes_report_no_search() {
        let mkb = replicated_space(1);
        let view = self_join_view(1);
        let (outcome, stats) = synchronize_with_policy(
            &view,
            &SchemaChange::DeleteRelation {
                relation: "Rep0".into(),
            },
            &mkb,
            &SyncOptions::default(),
            &ExplorationPolicy::Exhaustive,
            &mut PartnerCache::new(),
        )
        .unwrap();
        assert!(!outcome.affected);
        assert_eq!(stats, SearchStats::default());
    }
}
