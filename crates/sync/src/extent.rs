//! Extent relationships between an original view and a rewriting.
//!
//! Legality with respect to the E-SQL `VE` parameter requires knowing how the
//! rewriting's extent relates to the original extent *on the common subset of
//! attributes* (paper §5.3, Fig. 8). Each repair action contributes a local
//! relationship; the overall relationship is their composition in a small
//! lattice.

use eve_esql::ViewExtent;
use eve_misd::PcRelationship;

/// Relationship of a rewriting's extent to the original view's extent, on
/// the common attributes (Fig. 8's four cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExtentRelationship {
    /// New extent equals the old one (Fig. 8a).
    #[default]
    Equal,
    /// New extent is a superset of the old one (Fig. 8b).
    Superset,
    /// New extent is a subset of the old one (Fig. 8c).
    Subset,
    /// Overlapping but neither contains the other, or unknown (Fig. 8d).
    Approximate,
}

impl ExtentRelationship {
    /// Composes the effects of two successive repair actions.
    ///
    /// `Equal` is the identity; same-direction containments reinforce; mixed
    /// directions yield [`ExtentRelationship::Approximate`].
    #[must_use]
    pub fn compose(self, other: ExtentRelationship) -> ExtentRelationship {
        use ExtentRelationship::{Approximate, Equal, Subset, Superset};
        match (self, other) {
            (Equal, r) => r,
            (r, Equal) => r,
            (Subset, Subset) => Subset,
            (Superset, Superset) => Superset,
            _ => Approximate,
        }
    }

    /// Whether this relationship satisfies a view's `VE` preference:
    ///
    /// * `VE ≡` accepts only `Equal`,
    /// * `VE ⊇` accepts `Equal` and `Superset`,
    /// * `VE ⊆` accepts `Equal` and `Subset`,
    /// * `VE ≈` accepts anything.
    #[must_use]
    pub fn satisfies(self, ve: ViewExtent) -> bool {
        use ExtentRelationship::{Approximate, Equal, Subset, Superset};
        match ve {
            ViewExtent::Equal => self == Equal,
            ViewExtent::Superset => matches!(self, Equal | Superset),
            ViewExtent::Subset => matches!(self, Equal | Subset),
            ViewExtent::Approximate => matches!(self, Equal | Superset | Subset | Approximate),
        }
    }

    /// The extent effect of swapping a relation for a PC partner, where
    /// `old ⊑ new` is the constraint oriented from the old relation:
    /// replacing with a *superset* relation enlarges the view extent, with a
    /// *subset* relation shrinks it (Experiment 4's two regimes).
    #[must_use]
    pub fn from_relation_swap(old_to_new: PcRelationship) -> ExtentRelationship {
        match old_to_new {
            PcRelationship::Equivalent => ExtentRelationship::Equal,
            PcRelationship::Subset => ExtentRelationship::Superset,
            PcRelationship::Superset => ExtentRelationship::Subset,
        }
    }

    /// The extent effect of replacing one attribute through a PC constraint
    /// plus a join with the providing relation. Under EVE's key-join reading
    /// of join constraints, an `old ⊆ new` or `old ≡ new` fragment keeps
    /// every original tuple and introduces none (`Equal`); `old ⊇ new` may
    /// lose tuples whose value has no counterpart (`Subset`).
    #[must_use]
    pub fn from_attr_replacement(old_to_new: PcRelationship) -> ExtentRelationship {
        match old_to_new {
            PcRelationship::Equivalent | PcRelationship::Subset => ExtentRelationship::Equal,
            PcRelationship::Superset => ExtentRelationship::Subset,
        }
    }
}

impl std::fmt::Display for ExtentRelationship {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ExtentRelationship::Equal => "equal",
            ExtentRelationship::Superset => "superset",
            ExtentRelationship::Subset => "subset",
            ExtentRelationship::Approximate => "approximate",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ExtentRelationship::{Approximate, Equal, Subset, Superset};

    #[test]
    fn composition_identity_and_absorption() {
        for r in [Equal, Subset, Superset, Approximate] {
            assert_eq!(Equal.compose(r), r);
            assert_eq!(r.compose(Equal), r);
            assert_eq!(Approximate.compose(r), Approximate);
            assert_eq!(r.compose(Approximate), Approximate);
        }
    }

    #[test]
    fn composition_directions() {
        assert_eq!(Subset.compose(Subset), Subset);
        assert_eq!(Superset.compose(Superset), Superset);
        assert_eq!(Subset.compose(Superset), Approximate);
        assert_eq!(Superset.compose(Subset), Approximate);
    }

    #[test]
    fn composition_is_commutative_and_associative() {
        let all = [Equal, Subset, Superset, Approximate];
        for a in all {
            for b in all {
                assert_eq!(a.compose(b), b.compose(a));
                for c in all {
                    assert_eq!(a.compose(b).compose(c), a.compose(b.compose(c)));
                }
            }
        }
    }

    #[test]
    fn ve_compliance_matrix() {
        use eve_esql::ViewExtent as VE;
        // (relationship, ve, legal)
        let cases = [
            (Equal, VE::Equal, true),
            (Subset, VE::Equal, false),
            (Superset, VE::Equal, false),
            (Approximate, VE::Equal, false),
            (Equal, VE::Subset, true),
            (Subset, VE::Subset, true),
            (Superset, VE::Subset, false),
            (Approximate, VE::Subset, false),
            (Equal, VE::Superset, true),
            (Superset, VE::Superset, true),
            (Subset, VE::Superset, false),
            (Approximate, VE::Superset, false),
            (Equal, VE::Approximate, true),
            (Subset, VE::Approximate, true),
            (Superset, VE::Approximate, true),
            (Approximate, VE::Approximate, true),
        ];
        for (rel, ve, want) in cases {
            assert_eq!(rel.satisfies(ve), want, "{rel} vs VE {ve}");
        }
    }

    #[test]
    fn relation_swap_mapping_matches_experiment_4() {
        // Replacing R2 with subset S1 loses tuples; with superset S4 gains.
        assert_eq!(
            ExtentRelationship::from_relation_swap(PcRelationship::Superset),
            Subset
        );
        assert_eq!(
            ExtentRelationship::from_relation_swap(PcRelationship::Subset),
            Superset
        );
        assert_eq!(
            ExtentRelationship::from_relation_swap(PcRelationship::Equivalent),
            Equal
        );
    }

    #[test]
    fn attr_replacement_mapping() {
        assert_eq!(
            ExtentRelationship::from_attr_replacement(PcRelationship::Subset),
            Equal
        );
        assert_eq!(
            ExtentRelationship::from_attr_replacement(PcRelationship::Superset),
            Subset
        );
    }
}
