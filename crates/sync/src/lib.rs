//! # eve-sync
//!
//! View synchronization (paper §3.3): when an information source performs a
//! capability change, affected E-SQL view definitions are rewritten into
//! **legal rewritings** — replacement queries that comply with the view's
//! evolution preferences but are *not necessarily equivalent* to the original
//! view.
//!
//! The synchronizer combines three repair strategies, mirroring the SVS
//! algorithm \[LNR97b\] and the larger rewriting space of CVS \[NLR98\]:
//!
//! * **drop** — remove dispensable components (`AD`/`CD`/`RD = true`),
//! * **attribute replacement** — source a replaceable attribute (`AR = true`)
//!   from another relation found through a PC constraint, stitched into the
//!   query with a join constraint,
//! * **relation swap** — substitute a whole relation (`RR = true`) with a PC
//!   partner covering the attributes the view still needs, dropping
//!   dispensable leftovers (this is how the paper's Experiment 1 obtains
//!   `V1`/`V2` and Experiment 4 obtains `V1 … V5`).
//!
//! Every candidate is checked for *legality*: indispensable components must
//! survive, and the composed [`ExtentRelationship`] of the new extent to the
//! old one must satisfy the view's `VE` parameter.
//!
//! The output order is the discovery order of the search; the first element
//! is what the pre-QC-Model EVE prototype would have picked ("simply picked
//! the first legal view rewriting it discovered", §8) and serves as the
//! baseline selection strategy in the benchmarks.

pub mod batch;
pub mod extent;
pub mod heuristic;
pub mod legacy;
pub mod migration;
pub mod rewriting;
pub mod search;
pub mod synchronizer;

pub use batch::{partition_stage, BatchPlan, EvolutionOp, RewriteCache, Stage, ViewFootprint};
pub use extent::ExtentRelationship;
pub use heuristic::{synchronize_heuristic, HeuristicGuide, HeuristicOptions};
pub use migration::equivalent_swaps;
pub use rewriting::{LegalRewriting, Provenance, RewriteAction};
pub use search::{
    synchronize_streaming, synchronize_with_policy, ExplorationPolicy, SearchGuide, SearchNode,
    SearchStats,
};
pub use synchronizer::{synchronize, PartnerCache, SyncOptions, SyncOutcome};
