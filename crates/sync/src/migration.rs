//! Quality-preserving migration candidates.
//!
//! Beyond repairing *broken* views, the synchronization machinery can
//! propose voluntary, **quality-neutral** moves: swapping a replaceable
//! relation for an *equivalent* PC partner. The view interface and extent
//! are provably unchanged (`≡` fragments, full attribute coverage, no
//! dropped components), so the QC-Model's quality term is zero for every
//! candidate — only maintenance cost differs, letting EVE migrate views to
//! cheaper sources when the information space gains replicas (the engine's
//! `rebalance_views`).

use eve_esql::ViewDef;
use eve_misd::{Mkb, PcRelationship};

use crate::extent::ExtentRelationship;
use crate::rewriting::{LegalRewriting, Provenance, RewriteAction};
use crate::synchronizer::{build_swap, pc_partners, SyncError};

/// Enumerates quality-neutral rewritings of a view: each replaces exactly
/// one replaceable FROM item with an *equivalent* PC partner covering every
/// attribute the view uses from it. The returned rewritings all have
/// `extent == Equal` and a single-action provenance.
///
/// # Errors
///
/// [`SyncError::Validation`] for structurally invalid views.
pub fn equivalent_swaps(view: &ViewDef, mkb: &Mkb) -> Result<Vec<LegalRewriting>, SyncError> {
    let view = eve_esql::validate::validate(view).map_err(|e| SyncError::Validation(e.message))?;
    let mut out = Vec::new();
    for item in &view.from {
        if !item.evolution.replaceable {
            continue;
        }
        let binding = item.binding_name().to_owned();
        for partner in pc_partners(mkb, &item.relation) {
            if partner.relationship != PcRelationship::Equivalent {
                continue;
            }
            let Some((new_view, actions, extent)) = build_swap(&view, &binding, &partner) else {
                continue;
            };
            // Quality-neutral only: one swap action, equal extent, full
            // interface preserved.
            let clean = extent == ExtentRelationship::Equal
                && actions.len() == 1
                && matches!(actions[0], RewriteAction::SwappedRelation { .. })
                && new_view.output_columns() == view.output_columns();
            if clean {
                out.push(LegalRewriting {
                    view: new_view,
                    provenance: Provenance { actions },
                    extent,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_misd::{AttributeInfo, PcConstraint, PcSide, RelationInfo, SiteId};
    use eve_relational::DataType;

    fn space() -> Mkb {
        let mut m = Mkb::new();
        for i in 1..=3u32 {
            m.register_site(SiteId(i), format!("IS{i}")).unwrap();
        }
        let attrs = || {
            vec![
                AttributeInfo::new("A", DataType::Int),
                AttributeInfo::new("B", DataType::Int),
            ]
        };
        m.register_relation(RelationInfo::new("R", SiteId(1), attrs(), 400))
            .unwrap();
        // Equivalent full replica and a subset replica.
        m.register_relation(RelationInfo::new("Mirror", SiteId(2), attrs(), 400))
            .unwrap();
        m.add_pc_constraint(PcConstraint::new(
            PcSide::projection("R", &["A", "B"]),
            PcRelationship::Equivalent,
            PcSide::projection("Mirror", &["A", "B"]),
        ))
        .unwrap();
        m.register_relation(RelationInfo::new("Partial", SiteId(3), attrs(), 200))
            .unwrap();
        m.add_pc_constraint(PcConstraint::new(
            PcSide::projection("Partial", &["A", "B"]),
            PcRelationship::Subset,
            PcSide::projection("R", &["A", "B"]),
        ))
        .unwrap();
        // A replica that only covers A (insufficient for views using B).
        m.register_relation(RelationInfo::new(
            "Narrow",
            SiteId(3),
            vec![AttributeInfo::new("A", DataType::Int)],
            400,
        ))
        .unwrap();
        m.add_pc_constraint(PcConstraint::new(
            PcSide::projection("R", &["A"]),
            PcRelationship::Equivalent,
            PcSide::projection("Narrow", &["A"]),
        ))
        .unwrap();
        m
    }

    #[test]
    fn only_equivalent_full_coverage_swaps_qualify() {
        let mkb = space();
        let view = eve_esql::parse_view(
            "CREATE VIEW V (VE = '=') AS SELECT R.A, R.B FROM R (RR = true) \
             WHERE R.B > 3",
        )
        .unwrap();
        let swaps = equivalent_swaps(&view, &mkb).unwrap();
        assert_eq!(swaps.len(), 1, "{swaps:?}");
        assert_eq!(swaps[0].view.from[0].relation, "Mirror");
        assert_eq!(swaps[0].extent, ExtentRelationship::Equal);
        assert_eq!(swaps[0].view.output_columns(), vec!["A", "B"]);
        assert_eq!(
            swaps[0].view.conditions[0].clause.to_string(),
            "Mirror.B > 3"
        );
    }

    #[test]
    fn narrow_replica_qualifies_when_view_needs_less() {
        let mkb = space();
        let view =
            eve_esql::parse_view("CREATE VIEW V (VE = '=') AS SELECT R.A FROM R (RR = true)")
                .unwrap();
        let swaps = equivalent_swaps(&view, &mkb).unwrap();
        let targets: Vec<&str> = swaps
            .iter()
            .map(|s| s.view.from[0].relation.as_str())
            .collect();
        assert!(targets.contains(&"Mirror"));
        assert!(targets.contains(&"Narrow"));
    }

    #[test]
    fn non_replaceable_items_stay_put() {
        let mkb = space();
        let view = eve_esql::parse_view("CREATE VIEW V (VE = '=') AS SELECT R.A FROM R").unwrap();
        assert!(equivalent_swaps(&view, &mkb).unwrap().is_empty());
    }
}
