//! The view synchronization algorithm.
//!
//! Given a (validated) E-SQL view, a capability change and the *pre-change*
//! MKB, [`synchronize`] enumerates legal rewritings by combining repair
//! strategies per affected FROM binding:
//!
//! * `delete-attribute R.A` — (a) drop every component using `R.A` (needs
//!   `AD`/`CD`), (b) re-source the attribute from a PC partner joined in via
//!   a join constraint (needs `AR`, and `CR`/`CD` for conditions), or
//!   (c) swap the whole relation for a PC partner covering the surviving
//!   attributes (needs `RR`; uncovered components must be dispensable) — the
//!   paper's Experiment 1 spectrum,
//! * `delete-relation R` — (a) drop the FROM item and everything derived
//!   from it (needs `RD`), or (b) swap it for a PC partner (needs `RR`) —
//!   the paper's Example 4 / Experiment 4 spectrum,
//! * renames — rewrite references; `add-*` changes never invalidate a view.
//!
//! PC partners are discovered transitively over chains of selection-free PC
//! constraints with composable direction (Experiment 4 reaches `S1 … S5` from
//! `R2` through the chain `S1 ⊆ S2 ⊆ S3 ≡ R2 ⊆ S4 ⊆ S5`).
//!
//! Every candidate passes a structural sanity check and the `VE` legality
//! check before it is emitted. Results are in discovery order (first =
//! pre-QC-Model baseline pick), deduplicated, capped by
//! [`SyncOptions::max_rewritings`].

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use eve_trace::Counter;

use eve_esql::{ConditionItem, FromItem, RelEvolution, ViewDef};
use eve_misd::{Mkb, PcRelationship, SchemaChange};
use eve_relational::ColumnRef;

use crate::extent::ExtentRelationship;
use crate::rewriting::{LegalRewriting, Provenance, RewriteAction};

/// Errors raised by view synchronization.
#[derive(Debug, Clone, PartialEq)]
pub enum SyncError {
    /// The view failed structural validation.
    Validation(String),
    /// An MKB lookup failed.
    Misd(eve_misd::Error),
    /// Search or heuristic options are out of range.
    Options(String),
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::Validation(m) => write!(f, "view validation failed: {m}"),
            SyncError::Misd(e) => write!(f, "MKB error: {e}"),
            SyncError::Options(m) => write!(f, "invalid search options: {m}"),
        }
    }
}

impl std::error::Error for SyncError {}

impl From<eve_misd::Error> for SyncError {
    fn from(e: eve_misd::Error) -> Self {
        SyncError::Misd(e)
    }
}

/// Tuning knobs for the rewriting search.
#[derive(Debug, Clone)]
pub struct SyncOptions {
    /// Upper bound on emitted rewritings (the space can grow exponentially
    /// in the information-space redundancy, §4).
    pub max_rewritings: usize,
    /// When set, additionally emit the CVS-style "spectrum" of rewritings
    /// that drop further dispensable attributes on top of each repair (the
    /// paper's footnote 2 notes these exist but are dominated).
    pub enumerate_dispensable_drops: bool,
}

impl Default for SyncOptions {
    fn default() -> Self {
        SyncOptions {
            max_rewritings: 64,
            enumerate_dispensable_drops: false,
        }
    }
}

/// Result of synchronizing one view against one capability change.
#[derive(Debug, Clone)]
pub struct SyncOutcome {
    /// Whether the view was affected by the change at all. Unaffected views
    /// keep their definition and produce no rewritings.
    pub affected: bool,
    /// Legal rewritings in discovery order (deduplicated).
    pub rewritings: Vec<LegalRewriting>,
}

impl SyncOutcome {
    fn unaffected() -> SyncOutcome {
        SyncOutcome {
            affected: false,
            rewritings: Vec::new(),
        }
    }

    /// Whether the view survives the change (unaffected, or at least one
    /// legal rewriting exists) — the paper's Experiment 1 notion.
    #[must_use]
    pub fn survives(&self) -> bool {
        !self.affected || !self.rewritings.is_empty()
    }
}

/// A PC partner reachable from a relation: target relation, composed
/// attribute correspondence, and composed direction (`old ⊑ new`).
#[derive(Debug, Clone, PartialEq)]
pub struct PcPartner {
    /// The candidate replacement relation.
    pub relation: String,
    /// Maps old attributes to partner attributes (composed along the chain).
    pub attr_map: BTreeMap<String, String>,
    /// Composed relationship of the old fragment to the partner fragment.
    pub relationship: PcRelationship,
}

/// Enumerates PC partners of `rel` in BFS order: direct constraints first
/// (including ones with selection conditions), then transitive chains of
/// *selection-free* constraints with composable direction. Each relation is
/// reported once, via its shortest chain.
#[must_use]
pub fn pc_partners(mkb: &Mkb, rel: &str) -> Vec<PcPartner> {
    let mut out: Vec<PcPartner> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    seen.insert(rel.to_owned());

    // Identity starting point.
    let mut queue: VecDeque<PcPartner> = VecDeque::new();
    queue.push_back(PcPartner {
        relation: rel.to_owned(),
        attr_map: BTreeMap::new(), // identity, filled lazily below
        relationship: PcRelationship::Equivalent,
    });

    let mut first_hop = true;
    while let Some(cur) = queue.pop_front() {
        for pc in mkb.pc_constraints_of(&cur.relation) {
            // Multi-hop chaining only through selection-free constraints;
            // the first hop may use selected constraints too (their overlap
            // math handles the selections).
            if !first_hop && !pc.is_selection_free() {
                continue;
            }
            let Some(relationship) = cur.relationship.compose(pc.relationship) else {
                continue;
            };
            let target = pc.right.relation.clone();
            if seen.contains(&target) {
                continue;
            }
            // Compose attribute maps.
            let mut attr_map = BTreeMap::new();
            if cur.relation == rel {
                for (l, r) in pc.left.attrs.iter().zip(&pc.right.attrs) {
                    attr_map.insert(l.clone(), r.clone());
                }
            } else {
                for (old_attr, mid_attr) in &cur.attr_map {
                    if let Some(pos) = pc.left.attrs.iter().position(|a| a == mid_attr) {
                        attr_map.insert(old_attr.clone(), pc.right.attrs[pos].clone());
                    }
                }
            }
            if attr_map.is_empty() {
                continue;
            }
            seen.insert(target.clone());
            let partner = PcPartner {
                relation: target,
                attr_map,
                relationship,
            };
            out.push(partner.clone());
            queue.push_back(partner);
        }
        first_hop = false;
    }
    out
}

/// Memoizes [`pc_partners`] closures per relation. The BFS over PC
/// constraints is the dominant cost when many views reference the same
/// relations; within one MKB generation the closure is a pure function of
/// the relation name, so batch pipelines share one cache across views.
///
/// The cache does **not** watch the MKB itself — callers must [`clear`] it
/// (or key it on [`Mkb::generation`], as [`crate::batch::RewriteCache`]
/// does) when the MKB changes.
///
/// [`clear`]: PartnerCache::clear
#[derive(Debug, Default)]
pub struct PartnerCache {
    map: HashMap<String, Vec<PcPartner>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

impl Clone for PartnerCache {
    fn clone(&self) -> PartnerCache {
        PartnerCache {
            map: self.map.clone(),
            // Counter::clone detaches — the copy counts independently.
            hits: Arc::new((*self.hits).clone()),
            misses: Arc::new((*self.misses).clone()),
        }
    }
}

impl PartnerCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> PartnerCache {
        PartnerCache::default()
    }

    /// The PC partners of `rel`, computed on first request and replayed
    /// afterwards.
    #[must_use]
    pub fn partners(&mut self, mkb: &Mkb, rel: &str) -> Vec<PcPartner> {
        if let Some(found) = self.map.get(rel) {
            self.hits.inc();
            return found.clone();
        }
        self.misses.inc();
        let computed = pc_partners(mkb, rel);
        self.map.insert(rel.to_owned(), computed.clone());
        computed
    }

    /// Drops all memoized closures (required after any MKB mutation).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Zeroes the hit/miss counters without touching the memoized closures
    /// (reporting reset between checkpoints).
    pub fn reset_stats(&mut self) {
        self.hits.reset();
        self.misses.reset();
    }

    /// Number of requests served from memory.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Number of requests that ran the BFS.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// The live counter handles, named for registry adoption (the engine's
    /// telemetry registry resets them with every other counter family).
    #[must_use]
    pub fn counter_handles(&self) -> [(&'static str, Arc<Counter>); 2] {
        [
            ("cache.partner_hits", Arc::clone(&self.hits)),
            ("cache.partner_misses", Arc::clone(&self.misses)),
        ]
    }
}

/// Synchronizes a view with a capability change against the *pre-change*
/// MKB, producing all legal rewritings.
///
/// # Errors
///
/// [`SyncError::Validation`] when the view is structurally invalid.
pub fn synchronize(
    view: &ViewDef,
    change: &SchemaChange,
    mkb: &Mkb,
    options: &SyncOptions,
) -> Result<SyncOutcome, SyncError> {
    synchronize_with(view, change, mkb, options, &mut PartnerCache::new())
}

/// [`synchronize`] with an externally owned [`PartnerCache`], so repeated
/// synchronizations against one MKB state share partner closures.
///
/// This is a thin wrapper over the streaming search driver's
/// [`Exhaustive`](crate::search::ExplorationPolicy::Exhaustive) policy; its
/// output is byte-identical to the pre-refactor pipeline (kept as
/// [`crate::legacy::synchronize_legacy`] and pinned by the differential
/// property suite).
///
/// # Errors
///
/// [`SyncError::Validation`] when the view is structurally invalid.
pub fn synchronize_with(
    view: &ViewDef,
    change: &SchemaChange,
    mkb: &Mkb,
    options: &SyncOptions,
    partners: &mut PartnerCache,
) -> Result<SyncOutcome, SyncError> {
    crate::search::synchronize_with_policy(
        view,
        change,
        mkb,
        options,
        &crate::search::ExplorationPolicy::Exhaustive,
        partners,
    )
    .map(|(outcome, _stats)| outcome)
}

// ----------------------------------------------------------------------
// Candidate building blocks (shared by the search driver and the frozen
// legacy pipeline)
// ----------------------------------------------------------------------

pub(crate) type Candidate = (ViewDef, Vec<RewriteAction>, ExtentRelationship);

/// Structural sanity of a rewriting: non-empty SELECT/FROM, unique bindings,
/// all columns bound, no dangling condition references.
pub(crate) fn structurally_sound(view: &ViewDef) -> bool {
    eve_esql::validate::validate(view).is_ok()
}

// ----------------------------------------------------------------------
// Rename handling
// ----------------------------------------------------------------------

pub(crate) fn rename_attribute(
    view: &ViewDef,
    relation: &str,
    from: &str,
    to: &str,
) -> SyncOutcome {
    let bindings: Vec<String> = view
        .from
        .iter()
        .filter(|f| f.relation == relation)
        .map(|f| f.binding_name().to_owned())
        .filter(|b| uses_attr(view, b, from))
        .collect();
    if bindings.is_empty() {
        return SyncOutcome::unaffected();
    }
    let mut v = view.clone();
    for b in &bindings {
        for item in &mut v.select {
            if item.attr.qualifier.as_deref() == Some(b.as_str()) && item.attr.name == from {
                // Preserve the output name across the rename.
                if item.alias.is_none() && v.column_names.is_none() {
                    item.alias = Some(from.to_owned());
                }
                item.attr = ColumnRef::qualified(b.clone(), to);
            }
        }
        for cond in &mut v.conditions {
            cond.clause = cond.clause.map_columns(&mut |c| {
                if c.qualifier.as_deref() == Some(b.as_str()) && c.name == from {
                    ColumnRef::qualified(b.clone(), to)
                } else {
                    c.clone()
                }
            });
        }
    }
    SyncOutcome {
        affected: true,
        rewritings: vec![LegalRewriting {
            view: v,
            provenance: Provenance {
                actions: vec![RewriteAction::Renamed {
                    from: format!("{relation}.{from}"),
                    to: format!("{relation}.{to}"),
                }],
            },
            extent: ExtentRelationship::Equal,
        }],
    }
}

pub(crate) fn rename_relation(view: &ViewDef, from: &str, to: &str) -> SyncOutcome {
    if !view.from.iter().any(|f| f.relation == from) {
        return SyncOutcome::unaffected();
    }
    let mut v = view.clone();
    for item in &mut v.from {
        if item.relation == from {
            // Keep the binding name stable by aliasing the new relation name
            // back to the old binding; all column references stay valid.
            if item.alias.is_none() {
                item.alias = Some(from.to_owned());
            }
            item.relation = to.to_owned();
        }
    }
    SyncOutcome {
        affected: true,
        rewritings: vec![LegalRewriting {
            view: v,
            provenance: Provenance {
                actions: vec![RewriteAction::Renamed {
                    from: from.to_owned(),
                    to: to.to_owned(),
                }],
            },
            extent: ExtentRelationship::Equal,
        }],
    }
}

// ----------------------------------------------------------------------
// delete-attribute strategies
// ----------------------------------------------------------------------

pub(crate) fn uses_attr(view: &ViewDef, binding: &str, attr: &str) -> bool {
    view.select
        .iter()
        .any(|s| s.attr.qualifier.as_deref() == Some(binding) && s.attr.name == attr)
        || view.conditions.iter().any(|c| {
            c.clause
                .columns()
                .iter()
                .any(|col| col.qualifier.as_deref() == Some(binding) && col.name == attr)
        })
}

/// Drops all SELECT items (`AD` required) and conditions (`CD` required)
/// referencing `binding.attr`.
pub(crate) fn build_drop_components(
    view: &ViewDef,
    binding: &str,
    attr: &str,
) -> Option<Candidate> {
    let mut v = view.clone();
    let mut actions = Vec::new();
    let mut extent = ExtentRelationship::Equal;

    let mut keep_select = Vec::new();
    let mut keep_names = view.column_names.clone().map(|_| Vec::new());
    for (i, item) in v.select.iter().enumerate() {
        let hit = item.attr.qualifier.as_deref() == Some(binding) && item.attr.name == attr;
        if hit {
            if !item.evolution.dispensable {
                return None;
            }
            actions.push(RewriteAction::DroppedAttribute {
                binding: binding.to_owned(),
                attribute: attr.to_owned(),
            });
        } else {
            keep_select.push(item.clone());
            if let (Some(names), Some(all)) = (&mut keep_names, &view.column_names) {
                names.push(all[i].clone());
            }
        }
    }
    if keep_select.is_empty() {
        return None;
    }
    v.select = keep_select;
    v.column_names = keep_names;

    let mut keep_conds = Vec::new();
    for cond in &v.conditions {
        let hit = cond
            .clause
            .columns()
            .iter()
            .any(|c| c.qualifier.as_deref() == Some(binding) && c.name == attr);
        if hit {
            if !cond.evolution.dispensable {
                return None;
            }
            actions.push(RewriteAction::DroppedCondition {
                clause: cond.clause.clone(),
            });
            extent = extent.compose(ExtentRelationship::Superset);
        } else {
            keep_conds.push(cond.clone());
        }
    }
    v.conditions = keep_conds;

    Some((v, actions, extent))
}

/// Replaces `binding.attr` with `partner.attr_map[attr]`, joining the partner
/// relation in through a join constraint when it is not already in the view.
pub(crate) fn build_attr_replacement(
    view: &ViewDef,
    binding: &str,
    attr: &str,
    partner: &PcPartner,
    mkb: &Mkb,
) -> Option<Candidate> {
    let new_attr = partner.attr_map.get(attr)?.clone();
    let relation = &view.from_item(binding)?.relation;

    // Every SELECT item using the attribute must be replaceable; conditions
    // must be replaceable (rewrite) or dispensable (drop).
    for item in view.select_items_of(binding) {
        if item.attr.name == attr && !item.evolution.replaceable {
            return None;
        }
    }

    // Find or create the binding that hosts the partner relation.
    let existing = view
        .from
        .iter()
        .find(|f| f.relation == partner.relation)
        .map(|f| f.binding_name().to_owned());
    let mut v = view.clone();
    let mut actions: Vec<RewriteAction> = Vec::new();
    let mut extent = ExtentRelationship::from_attr_replacement(partner.relationship);

    let host =
        match existing {
            Some(b) => b,
            None => {
                // Need a join constraint connecting the partner to the damaged
                // relation to stitch it into the query meaningfully.
                let jc = mkb.join_constraint_between(&partner.relation, relation)?;
                let host = fresh_binding(&v, &partner.relation);
                v.from.push(FromItem {
                    relation: partner.relation.clone(),
                    alias: if host == partner.relation {
                        None
                    } else {
                        Some(host.clone())
                    },
                    evolution: RelEvolution {
                        dispensable: false,
                        replaceable: true,
                    },
                });
                let mut join_clauses = Vec::new();
                for clause in &jc.condition {
                    // Skip clauses over the deleted attribute itself.
                    if clause.columns().iter().any(|c| {
                        c.qualifier.as_deref() == Some(relation.as_str()) && c.name == attr
                    }) {
                        return None; // the join itself relied on the deleted attribute
                    }
                    let mapped = clause.map_columns(&mut |c| {
                        if c.qualifier.as_deref() == Some(relation.as_str()) {
                            ColumnRef::qualified(binding, c.name.clone())
                        } else if c.qualifier.as_deref() == Some(partner.relation.as_str()) {
                            ColumnRef::qualified(host.clone(), c.name.clone())
                        } else {
                            c.clone()
                        }
                    });
                    join_clauses.push(mapped);
                }
                let join_display = join_clauses
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" AND ");
                for clause in join_clauses {
                    v.conditions.push(ConditionItem::new(clause));
                }
                actions.push(RewriteAction::AddedJoinRelation {
                    relation: partner.relation.clone(),
                    join: join_display,
                });
                host
            }
        };

    // Rewrite SELECT items.
    for item in &mut v.select {
        if item.attr.qualifier.as_deref() == Some(binding) && item.attr.name == attr {
            let old_output = item.output_name().to_owned();
            item.attr = ColumnRef::qualified(host.clone(), new_attr.clone());
            if v.column_names.is_none() && old_output != new_attr {
                item.alias = Some(old_output);
            }
            actions.push(RewriteAction::ReplacedAttribute {
                old: (binding.to_owned(), attr.to_owned()),
                new: (partner.relation.clone(), new_attr.clone()),
                relationship: partner.relationship,
            });
        }
    }

    // Rewrite or drop conditions that used the deleted attribute.
    let mut keep = Vec::new();
    for cond in std::mem::take(&mut v.conditions) {
        let hit = cond
            .clause
            .columns()
            .iter()
            .any(|c| c.qualifier.as_deref() == Some(binding) && c.name == attr);
        if !hit {
            keep.push(cond);
            continue;
        }
        if cond.evolution.replaceable {
            let old = cond.clause.clone();
            let clause = cond.clause.map_columns(&mut |c| {
                if c.qualifier.as_deref() == Some(binding) && c.name == attr {
                    ColumnRef::qualified(host.clone(), new_attr.clone())
                } else {
                    c.clone()
                }
            });
            actions.push(RewriteAction::RewroteCondition {
                old,
                new: clause.clone(),
            });
            keep.push(ConditionItem {
                clause,
                evolution: cond.evolution,
            });
        } else if cond.evolution.dispensable {
            actions.push(RewriteAction::DroppedCondition {
                clause: cond.clause.clone(),
            });
            extent = extent.compose(ExtentRelationship::Superset);
        } else {
            return None;
        }
    }
    v.conditions = keep;

    Some((v, actions, extent))
}

// ----------------------------------------------------------------------
// delete-relation strategies (also used as the swap route for
// delete-attribute)
// ----------------------------------------------------------------------

/// Picks a binding name not already used by the view.
fn fresh_binding(view: &ViewDef, base: &str) -> String {
    if view.from_item(base).is_none() {
        return base.to_owned();
    }
    let mut i = 2;
    loop {
        let cand = format!("{base}_{i}");
        if view.from_item(&cand).is_none() {
            return cand;
        }
        i += 1;
    }
}

/// Swaps `binding` (relation `R`) for `partner.relation`, rewriting covered
/// attributes through the correspondence and dropping dispensable uncovered
/// components.
pub(crate) fn build_swap(view: &ViewDef, binding: &str, partner: &PcPartner) -> Option<Candidate> {
    let old_item = view.from_item(binding)?.clone();
    // Swapping a relation for itself is meaningless.
    if partner.relation == old_item.relation {
        return None;
    }
    // If the partner already participates in the view we merge into the
    // existing binding (§7.6's "reuse a relation already in the view").
    let existing_host = view
        .from
        .iter()
        .filter(|f| f.binding_name() != binding)
        .find(|f| f.relation == partner.relation)
        .map(|f| f.binding_name().to_owned());

    let mut v = view.clone();
    let mut actions = vec![RewriteAction::SwappedRelation {
        binding: binding.to_owned(),
        old_relation: old_item.relation.clone(),
        new_relation: partner.relation.clone(),
        relationship: partner.relationship,
    }];
    let mut extent = ExtentRelationship::from_relation_swap(partner.relationship);

    // Determine the new binding name and update FROM.
    let host = if let Some(h) = existing_host {
        // Remove the old FROM item entirely.
        v.from.retain(|f| f.binding_name() != binding);
        h
    } else if old_item.alias.is_some() {
        // Keep the alias: only the underlying relation changes.
        for f in &mut v.from {
            if f.binding_name() == binding {
                f.relation = partner.relation.clone();
            }
        }
        binding.to_owned()
    } else {
        let host = fresh_binding(view, &partner.relation);
        for f in &mut v.from {
            if f.binding_name() == binding {
                f.relation = partner.relation.clone();
                f.alias = if host == partner.relation {
                    None
                } else {
                    Some(host.clone())
                };
            }
        }
        host
    };

    // Rewrite SELECT items of the old binding.
    let mut keep_select = Vec::new();
    let mut keep_names = view.column_names.clone().map(|_| Vec::new());
    for (i, item) in v.select.iter().enumerate() {
        if item.attr.qualifier.as_deref() != Some(binding) {
            keep_select.push(item.clone());
            if let (Some(names), Some(all)) = (&mut keep_names, &view.column_names) {
                names.push(all[i].clone());
            }
            continue;
        }
        match partner.attr_map.get(&item.attr.name) {
            Some(new_attr) => {
                let mut ni = item.clone();
                let old_output = item.output_name().to_owned();
                ni.attr = ColumnRef::qualified(host.clone(), new_attr.clone());
                if view.column_names.is_none() && old_output != *new_attr {
                    ni.alias = Some(old_output);
                }
                keep_select.push(ni);
                if let (Some(names), Some(all)) = (&mut keep_names, &view.column_names) {
                    names.push(all[i].clone());
                }
            }
            None => {
                // Uncovered: must be dispensable.
                if !item.evolution.dispensable {
                    return None;
                }
                actions.push(RewriteAction::DroppedAttribute {
                    binding: binding.to_owned(),
                    attribute: item.attr.name.clone(),
                });
            }
        }
    }
    if keep_select.is_empty() {
        return None;
    }
    v.select = keep_select;
    v.column_names = keep_names;

    // Rewrite or drop conditions referencing the old binding.
    let mut keep_conds = Vec::new();
    for cond in std::mem::take(&mut v.conditions) {
        let referenced: Vec<String> = cond
            .clause
            .columns()
            .iter()
            .filter(|c| c.qualifier.as_deref() == Some(binding))
            .map(|c| c.name.clone())
            .collect();
        if referenced.is_empty() {
            keep_conds.push(cond);
            continue;
        }
        let all_covered = referenced.iter().all(|a| partner.attr_map.contains_key(a));
        if all_covered {
            let clause = cond.clause.map_columns(&mut |c| {
                if c.qualifier.as_deref() == Some(binding) {
                    ColumnRef::qualified(host.clone(), partner.attr_map[&c.name].clone())
                } else {
                    c.clone()
                }
            });
            keep_conds.push(ConditionItem {
                clause,
                evolution: cond.evolution,
            });
        } else if cond.evolution.dispensable {
            actions.push(RewriteAction::DroppedCondition {
                clause: cond.clause.clone(),
            });
            extent = extent.compose(ExtentRelationship::Superset);
        } else {
            return None;
        }
    }
    v.conditions = keep_conds;

    Some((v, actions, extent))
}

/// Drops the FROM item `binding`, all its SELECT items (each `AD`) and all
/// conditions touching it (each `CD`).
pub(crate) fn build_drop_relation(view: &ViewDef, binding: &str) -> Option<Candidate> {
    let old_item = view.from_item(binding)?.clone();
    if view.from.len() <= 1 {
        return None; // a view cannot lose its last relation
    }
    let mut v = view.clone();
    let mut actions = vec![RewriteAction::DroppedRelation {
        binding: binding.to_owned(),
        relation: old_item.relation.clone(),
    }];
    // Dropping the join with this relation can only widen the extent.
    let mut extent = ExtentRelationship::Superset;

    let mut keep_select = Vec::new();
    let mut keep_names = view.column_names.clone().map(|_| Vec::new());
    for (i, item) in v.select.iter().enumerate() {
        if item.attr.qualifier.as_deref() == Some(binding) {
            if !item.evolution.dispensable {
                return None;
            }
            actions.push(RewriteAction::DroppedAttribute {
                binding: binding.to_owned(),
                attribute: item.attr.name.clone(),
            });
        } else {
            keep_select.push(item.clone());
            if let (Some(names), Some(all)) = (&mut keep_names, &view.column_names) {
                names.push(all[i].clone());
            }
        }
    }
    if keep_select.is_empty() {
        return None;
    }
    v.select = keep_select;
    v.column_names = keep_names;

    let mut keep_conds = Vec::new();
    for cond in std::mem::take(&mut v.conditions) {
        if cond.clause.references_qualifier(binding) {
            if !cond.evolution.dispensable {
                return None;
            }
            actions.push(RewriteAction::DroppedCondition {
                clause: cond.clause.clone(),
            });
            extent = extent.compose(ExtentRelationship::Superset);
        } else {
            keep_conds.push(cond);
        }
    }
    v.conditions = keep_conds;
    v.from.retain(|f| f.binding_name() != binding);

    Some((v, actions, extent))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_esql::{parse_view, ViewExtent};
    use eve_misd::{AttributeInfo, PcConstraint, PcSide, RelationInfo, SiteId};
    use eve_relational::{DataType, PrimitiveClause};

    fn attr(name: &str) -> AttributeInfo {
        AttributeInfo::new(name, DataType::Int)
    }

    /// Experiment 1 information space: R(A,B) @ IS1; S(A,C) @ IS2; T(A,D) @
    /// IS3; PC(π_A(R) ⊆ π_A(S)); PC(π_A(R) ⊆ π_A(T)).
    fn experiment1_mkb() -> Mkb {
        let mut m = Mkb::new();
        for i in 1..=3u32 {
            m.register_site(SiteId(i), format!("IS{i}")).unwrap();
        }
        m.register_relation(RelationInfo::new(
            "R",
            SiteId(1),
            vec![attr("A"), attr("B")],
            400,
        ))
        .unwrap();
        m.register_relation(RelationInfo::new(
            "S",
            SiteId(2),
            vec![attr("A"), attr("C")],
            400,
        ))
        .unwrap();
        m.register_relation(RelationInfo::new(
            "T",
            SiteId(3),
            vec![attr("A"), attr("D")],
            400,
        ))
        .unwrap();
        for s in ["S", "T"] {
            m.add_pc_constraint(PcConstraint::new(
                PcSide::projection("R", &["A"]),
                PcRelationship::Subset,
                PcSide::projection(s, &["A"]),
            ))
            .unwrap();
        }
        m
    }

    fn experiment1_view() -> ViewDef {
        parse_view(
            "CREATE VIEW V0 (VE = '~') AS \
             SELECT R.A (AD = true, AR = true), R.B (AD = true) \
             FROM R (RR = true)",
        )
        .unwrap()
    }

    #[test]
    fn experiment1_three_rewritings() {
        let mkb = experiment1_mkb();
        let view = experiment1_view();
        let change = SchemaChange::DeleteAttribute {
            relation: "R".into(),
            attribute: "A".into(),
        };
        let outcome = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        assert!(outcome.affected);
        let texts: Vec<String> = outcome
            .rewritings
            .iter()
            .map(|r| r.view.to_string())
            .collect();
        assert_eq!(
            outcome.rewritings.len(),
            3,
            "expected V1, V2, V3; got:\n{}",
            texts.join("\n---\n")
        );
        // The two swap rewritings keep A (sourced from S / T) and drop B.
        let swaps: Vec<&LegalRewriting> = outcome
            .rewritings
            .iter()
            .filter(|r| {
                r.provenance
                    .actions
                    .iter()
                    .any(|a| matches!(a, RewriteAction::SwappedRelation { .. }))
            })
            .collect();
        assert_eq!(swaps.len(), 2);
        for s in &swaps {
            assert_eq!(s.view.output_columns(), vec!["A"]);
            assert_eq!(s.extent, ExtentRelationship::Superset);
            assert_eq!(s.view.from.len(), 1);
        }
        let swap_targets: BTreeSet<&str> = swaps
            .iter()
            .map(|s| s.view.from[0].relation.as_str())
            .collect();
        assert_eq!(swap_targets, BTreeSet::from(["S", "T"]));
        // Swapped FROM items stay replaceable (enables further evolution).
        assert!(swaps.iter().all(|s| s.view.from[0].evolution.replaceable));
        // The drop rewriting is V3: SELECT R.B FROM R.
        let drop = outcome
            .rewritings
            .iter()
            .find(|r| {
                r.provenance
                    .actions
                    .iter()
                    .all(|a| matches!(a, RewriteAction::DroppedAttribute { .. }))
            })
            .expect("drop rewriting");
        assert_eq!(drop.view.output_columns(), vec!["B"]);
        assert_eq!(drop.view.from[0].relation, "R");
        assert_eq!(drop.extent, ExtentRelationship::Equal);
    }

    #[test]
    fn experiment1_survival_chain() {
        // After adopting V1 (from S), deleting S still leaves V2 (from T)
        // because A kept AR = true and S has a PC partner through R... the
        // chain S ⊇ R ⊆ T composes to nothing, so survival requires a direct
        // S-T constraint; add one to model the replica scenario.
        let mut mkb = experiment1_mkb();
        mkb.add_pc_constraint(PcConstraint::new(
            PcSide::projection("S", &["A"]),
            PcRelationship::Equivalent,
            PcSide::projection("T", &["A"]),
        ))
        .unwrap();
        let view = experiment1_view();
        let change = SchemaChange::DeleteAttribute {
            relation: "R".into(),
            attribute: "A".into(),
        };
        let outcome = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        let v1 = outcome
            .rewritings
            .iter()
            .find(|r| r.view.from[0].relation == "S")
            .unwrap();
        // Now S is deleted.
        let change2 = SchemaChange::DeleteRelation {
            relation: "S".into(),
        };
        let outcome2 = synchronize(&v1.view, &change2, &mkb, &SyncOptions::default()).unwrap();
        assert!(outcome2.survives());
        assert!(outcome2
            .rewritings
            .iter()
            .any(|r| r.view.from[0].relation == "T"));
    }

    #[test]
    fn dead_view_when_nothing_dispensable_or_replaceable() {
        // V3 = SELECT R.B FROM R with strict B: deleting R.B kills the view.
        let mkb = experiment1_mkb();
        let view =
            parse_view("CREATE VIEW V3 (VE = '~') AS SELECT R.B FROM R (RR = true)").unwrap();
        let change = SchemaChange::DeleteAttribute {
            relation: "R".into(),
            attribute: "B".into(),
        };
        let outcome = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        assert!(outcome.affected);
        assert!(
            !outcome.survives(),
            "B is neither dispensable nor replaceable and no PC covers it"
        );
    }

    /// Experiment 4 information space: chain S1 ⊆ S2 ⊆ S3 ≡ R2 ⊆ S4 ⊆ S5.
    fn experiment4_mkb() -> Mkb {
        let mut m = Mkb::new();
        for i in 1..=6u32 {
            m.register_site(SiteId(i), format!("IS{i}")).unwrap();
        }
        m.register_relation(RelationInfo::new(
            "R1",
            SiteId(1),
            vec![attr("K"), attr("X")],
            400,
        ))
        .unwrap();
        let abc = || vec![attr("A"), attr("B"), attr("C")];
        m.register_relation(RelationInfo::new("R2", SiteId(1), abc(), 4000))
            .unwrap();
        for (i, (name, card)) in [
            ("S1", 2000u64),
            ("S2", 3000),
            ("S3", 4000),
            ("S4", 5000),
            ("S5", 6000),
        ]
        .iter()
        .enumerate()
        {
            m.register_relation(RelationInfo::new(
                *name,
                SiteId(u32::try_from(i).unwrap() + 2),
                abc(),
                *card,
            ))
            .unwrap();
        }
        let proj = |r: &str| PcSide::projection(r, &["A", "B", "C"]);
        m.add_pc_constraint(PcConstraint::new(
            proj("S1"),
            PcRelationship::Subset,
            proj("S2"),
        ))
        .unwrap();
        m.add_pc_constraint(PcConstraint::new(
            proj("S2"),
            PcRelationship::Subset,
            proj("S3"),
        ))
        .unwrap();
        m.add_pc_constraint(PcConstraint::new(
            proj("S3"),
            PcRelationship::Equivalent,
            proj("R2"),
        ))
        .unwrap();
        m.add_pc_constraint(PcConstraint::new(
            proj("S3"),
            PcRelationship::Subset,
            proj("S4"),
        ))
        .unwrap();
        m.add_pc_constraint(PcConstraint::new(
            proj("S4"),
            PcRelationship::Subset,
            proj("S5"),
        ))
        .unwrap();
        m
    }

    fn experiment4_view() -> ViewDef {
        parse_view(
            "CREATE VIEW V (VE = '~') AS \
             SELECT R1.X, R2.A (AR = true), R2.B (AR = true), R2.C (AR = true) \
             FROM R1, R2 (RR = true) \
             WHERE R1.K = R2.A",
        )
        .unwrap()
    }

    #[test]
    fn experiment4_five_swap_rewritings_via_chains() {
        let mkb = experiment4_mkb();
        let view = experiment4_view();
        let change = SchemaChange::DeleteRelation {
            relation: "R2".into(),
        };
        let outcome = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        let targets: BTreeSet<String> = outcome
            .rewritings
            .iter()
            .filter_map(|r| {
                r.view
                    .from
                    .iter()
                    .find(|f| f.relation != "R1")
                    .map(|f| f.relation.clone())
            })
            .collect();
        assert_eq!(
            targets,
            ["S1", "S2", "S3", "S4", "S5"]
                .into_iter()
                .map(String::from)
                .collect::<BTreeSet<_>>(),
            "all five substitutes reachable through the PC chain"
        );
        // Extent relationships per Experiment 4's two regimes.
        for r in &outcome.rewritings {
            let target = &r
                .view
                .from
                .iter()
                .find(|f| f.relation != "R1")
                .unwrap()
                .relation;
            let expected = match target.as_str() {
                "S1" | "S2" => ExtentRelationship::Subset,
                "S3" => ExtentRelationship::Equal,
                _ => ExtentRelationship::Superset,
            };
            assert_eq!(r.extent, expected, "extent of swap to {target}");
        }
        // Join condition rewritten onto the substitute.
        let s4 = outcome
            .rewritings
            .iter()
            .find(|r| r.view.from.iter().any(|f| f.relation == "S4"))
            .unwrap();
        assert_eq!(s4.view.conditions[0].clause.to_string(), "R1.K = S4.A");
    }

    #[test]
    fn ve_equal_only_admits_equivalent_swap() {
        let mkb = experiment4_mkb();
        let mut view = experiment4_view();
        view.ve = ViewExtent::Equal;
        let change = SchemaChange::DeleteRelation {
            relation: "R2".into(),
        };
        let outcome = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        assert_eq!(outcome.rewritings.len(), 1);
        assert!(outcome.rewritings[0]
            .view
            .from
            .iter()
            .any(|f| f.relation == "S3"));
    }

    #[test]
    fn ve_subset_admits_subset_swaps_only() {
        let mkb = experiment4_mkb();
        let mut view = experiment4_view();
        view.ve = ViewExtent::Subset;
        let change = SchemaChange::DeleteRelation {
            relation: "R2".into(),
        };
        let outcome = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        let targets: BTreeSet<String> = outcome
            .rewritings
            .iter()
            .flat_map(|r| r.view.from.iter().map(|f| f.relation.clone()))
            .filter(|n| n != "R1")
            .collect();
        assert_eq!(
            targets,
            ["S1", "S2", "S3"]
                .into_iter()
                .map(String::from)
                .collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn attr_replacement_via_join_constraint() {
        // R(A,B) with JC to S(A,C): delete R.A, replace through S joined on B
        // — construct: PC π_A(R) ≡ π_A(S), JC R.B = S.C.
        let mut m = Mkb::new();
        m.register_site(SiteId(1), "one").unwrap();
        m.register_site(SiteId(2), "two").unwrap();
        m.register_relation(RelationInfo::new(
            "R",
            SiteId(1),
            vec![attr("A"), attr("B")],
            100,
        ))
        .unwrap();
        m.register_relation(RelationInfo::new(
            "S",
            SiteId(2),
            vec![attr("A"), attr("C")],
            100,
        ))
        .unwrap();
        m.add_pc_constraint(PcConstraint::new(
            PcSide::projection("R", &["A"]),
            PcRelationship::Equivalent,
            PcSide::projection("S", &["A"]),
        ))
        .unwrap();
        m.add_join_constraint(eve_misd::JoinConstraint::new(
            "R",
            "S",
            vec![PrimitiveClause::eq(
                ColumnRef::parse("R.B"),
                ColumnRef::parse("S.C"),
            )],
        ))
        .unwrap();
        let view = parse_view(
            "CREATE VIEW V (VE = '~') AS SELECT R.A (AR = true), R.B FROM R WHERE R.A > 10",
        )
        .unwrap();
        // Note: the condition on R.A is strict (neither CD nor CR), so the
        // attr-replacement branch must fail…
        let change = SchemaChange::DeleteAttribute {
            relation: "R".into(),
            attribute: "A".into(),
        };
        let outcome = synchronize(&view, &change, &m, &SyncOptions::default()).unwrap();
        assert!(
            outcome.rewritings.is_empty(),
            "strict condition on deleted attribute blocks every repair"
        );
        // …but with CR = true the clause is rewritten onto S.A.
        let view = parse_view(
            "CREATE VIEW V (VE = '~') AS SELECT R.A (AR = true), R.B FROM R \
             WHERE R.A > 10 (CR = true)",
        )
        .unwrap();
        let outcome = synchronize(&view, &change, &m, &SyncOptions::default()).unwrap();
        assert_eq!(outcome.rewritings.len(), 1);
        let rw = &outcome.rewritings[0];
        assert_eq!(rw.extent, ExtentRelationship::Equal);
        assert_eq!(rw.view.from.len(), 2);
        let printed = rw.view.to_string();
        assert!(printed.contains("S.A"), "{printed}");
        assert!(printed.contains("(R.B = S.C)"), "{printed}");
        assert!(printed.contains("(S.A > 10)"), "{printed}");
        // Interface preserved: output columns unchanged.
        assert_eq!(rw.view.output_columns(), vec!["A", "B"]);
    }

    #[test]
    fn drop_relation_strategy() {
        let mut m = experiment1_mkb();
        m.register_relation(RelationInfo::new(
            "F",
            SiteId(1),
            vec![attr("A"), attr("E")],
            100,
        ))
        .unwrap();
        let view = parse_view(
            "CREATE VIEW V (VE = '~') AS \
             SELECT R.B, F.E (AD = true) \
             FROM R, F (RD = true) \
             WHERE R.A = F.A (CD = true)",
        )
        .unwrap();
        let change = SchemaChange::DeleteRelation {
            relation: "F".into(),
        };
        let outcome = synchronize(&view, &change, &m, &SyncOptions::default()).unwrap();
        assert_eq!(outcome.rewritings.len(), 1);
        let rw = &outcome.rewritings[0];
        assert_eq!(rw.extent, ExtentRelationship::Superset);
        assert_eq!(rw.view.from.len(), 1);
        assert_eq!(rw.view.output_columns(), vec!["B"]);
        assert!(rw.view.conditions.is_empty());
    }

    #[test]
    fn rename_attribute_preserves_interface() {
        let mkb = experiment1_mkb();
        let view = parse_view("CREATE VIEW V AS SELECT R.A FROM R WHERE R.A > 1").unwrap();
        let change = SchemaChange::RenameAttribute {
            relation: "R".into(),
            from: "A".into(),
            to: "Alpha".into(),
        };
        let outcome = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        assert_eq!(outcome.rewritings.len(), 1);
        let rw = &outcome.rewritings[0];
        assert_eq!(rw.extent, ExtentRelationship::Equal);
        assert_eq!(rw.view.select[0].attr, ColumnRef::parse("R.Alpha"));
        assert_eq!(rw.view.output_columns(), vec!["A"]);
        assert_eq!(rw.view.conditions[0].clause.to_string(), "R.Alpha > 1");
    }

    #[test]
    fn rename_relation_keeps_binding_stable() {
        let mkb = experiment1_mkb();
        let view = parse_view("CREATE VIEW V AS SELECT R.A FROM R WHERE R.A > 1").unwrap();
        let change = SchemaChange::RenameRelation {
            from: "R".into(),
            to: "R_new".into(),
        };
        let outcome = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        let rw = &outcome.rewritings[0];
        assert_eq!(rw.view.from[0].relation, "R_new");
        assert_eq!(rw.view.from[0].binding_name(), "R");
        // Columns unchanged — still valid.
        assert!(eve_esql::validate::validate(&rw.view).is_ok());
    }

    #[test]
    fn add_changes_do_not_affect_views() {
        let mkb = experiment1_mkb();
        let view = experiment1_view();
        let outcome = synchronize(
            &view,
            &SchemaChange::AddAttribute {
                relation: "R".into(),
                attribute: attr("Z"),
            },
            &mkb,
            &SyncOptions::default(),
        )
        .unwrap();
        assert!(!outcome.affected);
        assert!(outcome.survives());
    }

    #[test]
    fn unrelated_change_leaves_view_unaffected() {
        let mkb = experiment1_mkb();
        let view = experiment1_view();
        let outcome = synchronize(
            &view,
            &SchemaChange::DeleteRelation {
                relation: "T".into(),
            },
            &mkb,
            &SyncOptions::default(),
        )
        .unwrap();
        assert!(!outcome.affected);
    }

    #[test]
    fn delete_unused_attribute_leaves_view_unaffected() {
        let mkb = experiment1_mkb();
        let view = parse_view("CREATE VIEW V AS SELECT R.A FROM R").unwrap();
        let outcome = synchronize(
            &view,
            &SchemaChange::DeleteAttribute {
                relation: "R".into(),
                attribute: "B".into(),
            },
            &mkb,
            &SyncOptions::default(),
        )
        .unwrap();
        assert!(!outcome.affected);
    }

    #[test]
    fn dispensable_drop_spectrum_enumerates_inferior_rewritings() {
        let mkb = experiment4_mkb();
        let view = experiment4_view();
        // Make all of A, B, C dispensable so the spectrum exists.
        let mut view = view;
        for item in &mut view.select {
            if item.attr.qualifier.as_deref() == Some("R2") {
                item.evolution.dispensable = true;
            }
        }
        let change = SchemaChange::DeleteRelation {
            relation: "R2".into(),
        };
        let base = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        let wide = synchronize(
            &view,
            &change,
            &mkb,
            &SyncOptions {
                enumerate_dispensable_drops: true,
                ..SyncOptions::default()
            },
        )
        .unwrap();
        assert!(
            wide.rewritings.len() > base.rewritings.len(),
            "spectrum adds rewritings: {} vs {}",
            wide.rewritings.len(),
            base.rewritings.len()
        );
    }

    #[test]
    fn max_rewritings_cap_respected() {
        let mkb = experiment4_mkb();
        let view = experiment4_view();
        let change = SchemaChange::DeleteRelation {
            relation: "R2".into(),
        };
        let outcome = synchronize(
            &view,
            &change,
            &mkb,
            &SyncOptions {
                max_rewritings: 2,
                ..SyncOptions::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.rewritings.len(), 2);
    }

    #[test]
    fn self_join_delete_relation_repairs_both_bindings() {
        // A view binding the deleted relation twice: both bindings must be
        // repaired (cross product of per-binding options).
        let mkb = experiment1_mkb();
        let view = parse_view(
            "CREATE VIEW V (VE = '~') AS \
             SELECT X.A AS XA (AR = true), Y.A AS YA (AR = true) \
             FROM R X (RR = true), R Y (RR = true) \
             WHERE X.A = Y.A",
        )
        .unwrap();
        let change = SchemaChange::DeleteRelation {
            relation: "R".into(),
        };
        let outcome = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        assert!(outcome.affected);
        assert!(!outcome.rewritings.is_empty());
        for rw in &outcome.rewritings {
            // No binding may still reference R.
            assert!(
                rw.view.from.iter().all(|f| f.relation != "R"),
                "unrepaired binding in {}",
                rw.view
            );
            // Both output columns survive.
            assert_eq!(rw.view.output_columns(), vec!["XA", "YA"]);
        }
        // Combinations include mixed sources (X from S, Y from T).
        let mixed = outcome.rewritings.iter().any(|rw| {
            let rels: BTreeSet<&str> = rw.view.from.iter().map(|f| f.relation.as_str()).collect();
            rels.len() == 2
        });
        assert!(mixed, "expected at least one mixed-source repair");
    }

    #[test]
    fn condition_only_attribute_deletion() {
        // The deleted attribute appears only in WHERE, not in SELECT.
        let mkb = experiment1_mkb();
        let view = parse_view(
            "CREATE VIEW V (VE = '~') AS SELECT R.B FROM R (RR = true) \
             WHERE R.A > 5 (CD = true)",
        )
        .unwrap();
        let change = SchemaChange::DeleteAttribute {
            relation: "R".into(),
            attribute: "A".into(),
        };
        let outcome = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        assert!(outcome.affected);
        // Dropping the dispensable condition is a legal repair.
        let dropped = outcome
            .rewritings
            .iter()
            .find(|r| r.view.conditions.is_empty() && r.view.from[0].relation == "R")
            .expect("condition-drop rewriting");
        assert_eq!(dropped.extent, ExtentRelationship::Superset);
    }

    #[test]
    fn pc_partner_chain_composition() {
        let mkb = experiment4_mkb();
        let partners = pc_partners(&mkb, "R2");
        let by_name: BTreeMap<&str, &PcPartner> =
            partners.iter().map(|p| (p.relation.as_str(), p)).collect();
        assert_eq!(by_name["S3"].relationship, PcRelationship::Equivalent);
        assert_eq!(by_name["S4"].relationship, PcRelationship::Subset);
        assert_eq!(by_name["S5"].relationship, PcRelationship::Subset);
        assert_eq!(by_name["S2"].relationship, PcRelationship::Superset);
        assert_eq!(by_name["S1"].relationship, PcRelationship::Superset);
        // Attribute maps compose positionally.
        assert_eq!(by_name["S5"].attr_map["A"], "A");
    }
}
