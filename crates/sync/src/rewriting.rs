//! Legal rewritings and their provenance.

use std::fmt;

use eve_esql::ViewDef;
use eve_misd::PcRelationship;
use eve_relational::PrimitiveClause;

use crate::extent::ExtentRelationship;

/// One elementary repair performed while synchronizing a view.
#[derive(Debug, Clone, PartialEq)]
pub enum RewriteAction {
    /// A dispensable SELECT item was removed (`AD = true`).
    DroppedAttribute {
        /// FROM binding the attribute came from.
        binding: String,
        /// Attribute name.
        attribute: String,
    },
    /// A replaceable SELECT item was re-sourced from another relation
    /// (`AR = true`, via a PC constraint).
    ReplacedAttribute {
        /// Old `binding.attribute`.
        old: (String, String),
        /// New `relation.attribute`.
        new: (String, String),
        /// PC relationship of the old fragment to the new one.
        relationship: PcRelationship,
    },
    /// A dispensable WHERE conjunct was removed (`CD = true`).
    DroppedCondition {
        /// The removed clause.
        clause: PrimitiveClause,
    },
    /// A replaceable WHERE conjunct had an attribute substituted
    /// (`CR = true`).
    RewroteCondition {
        /// The old clause.
        old: PrimitiveClause,
        /// The new clause.
        new: PrimitiveClause,
    },
    /// A dispensable FROM item (plus its attributes and conditions) was
    /// removed (`RD = true`).
    DroppedRelation {
        /// The removed binding.
        binding: String,
        /// The base relation it referenced.
        relation: String,
    },
    /// A replaceable FROM item was swapped for a PC partner (`RR = true`).
    SwappedRelation {
        /// The old binding name.
        binding: String,
        /// The old base relation.
        old_relation: String,
        /// The replacement relation.
        new_relation: String,
        /// PC relationship of the old relation to the new one.
        relationship: PcRelationship,
    },
    /// A relation was added to FROM to host replacement attributes, joined
    /// through a join constraint.
    AddedJoinRelation {
        /// The added relation.
        relation: String,
        /// Display form of the join clauses appended to WHERE.
        join: String,
    },
    /// A component was renamed following a rename capability change.
    Renamed {
        /// Old name (qualified for attributes).
        from: String,
        /// New name.
        to: String,
    },
}

impl fmt::Display for RewriteAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteAction::DroppedAttribute { binding, attribute } => {
                write!(f, "drop attribute {binding}.{attribute}")
            }
            RewriteAction::ReplacedAttribute {
                old,
                new,
                relationship,
            } => write!(
                f,
                "replace attribute {}.{} with {}.{} ({} fragment)",
                old.0, old.1, new.0, new.1, relationship
            ),
            RewriteAction::DroppedCondition { clause } => write!(f, "drop condition ({clause})"),
            RewriteAction::RewroteCondition { old, new } => {
                write!(f, "rewrite condition ({old}) as ({new})")
            }
            RewriteAction::DroppedRelation { binding, relation } => {
                write!(f, "drop relation {relation} (binding {binding})")
            }
            RewriteAction::SwappedRelation {
                binding,
                old_relation,
                new_relation,
                relationship,
            } => write!(
                f,
                "swap relation {old_relation} (binding {binding}) for {new_relation} ({relationship})"
            ),
            RewriteAction::AddedJoinRelation { relation, join } => {
                write!(f, "add relation {relation} joined via {join}")
            }
            RewriteAction::Renamed { from, to } => write!(f, "rename {from} to {to}"),
        }
    }
}

/// The trail of repairs that produced one rewriting.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Provenance {
    /// Actions in application order.
    pub actions: Vec<RewriteAction>,
}

impl Provenance {
    /// Number of recorded actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether no action was needed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// A legal rewriting: the new view definition, how it was obtained, and how
/// its extent relates to the original view's extent.
#[derive(Debug, Clone, PartialEq)]
pub struct LegalRewriting {
    /// The rewritten view definition (same view name as the original).
    pub view: ViewDef,
    /// The repair trail.
    pub provenance: Provenance,
    /// Extent relationship to the original view (already `VE`-checked).
    pub extent: ExtentRelationship,
}

impl fmt::Display for LegalRewriting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "-- extent: {}; repairs: {}",
            self.extent, self.provenance
        )?;
        write!(f, "{}", self.view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_display() {
        let a = RewriteAction::DroppedAttribute {
            binding: "R".into(),
            attribute: "B".into(),
        };
        assert_eq!(a.to_string(), "drop attribute R.B");
        let s = RewriteAction::SwappedRelation {
            binding: "R".into(),
            old_relation: "R".into(),
            new_relation: "S".into(),
            relationship: PcRelationship::Subset,
        };
        assert_eq!(s.to_string(), "swap relation R (binding R) for S (⊆)");
    }

    #[test]
    fn provenance_display_joins_actions() {
        let p = Provenance {
            actions: vec![
                RewriteAction::DroppedCondition {
                    clause: PrimitiveClause::lit(
                        eve_relational::ColumnRef::parse("R.A"),
                        eve_relational::CompOp::Gt,
                        eve_relational::Value::Int(10),
                    ),
                },
                RewriteAction::Renamed {
                    from: "R.A".into(),
                    to: "R.B".into(),
                },
            ],
        };
        assert_eq!(
            p.to_string(),
            "drop condition (R.A > 10); rename R.A to R.B"
        );
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }
}
