//! Heuristic view synchronization — the paper's §8 future-work direction,
//! implemented as a *policy* of the streaming search driver.
//!
//! The exhaustive synchronizer generates *every* legal rewriting and leaves
//! ranking to the QC-Model; §8 sketches "a novel heuristic view
//! synchronization algorithm that, instead of first generating all rewriting
//! solutions and then ranking them, would be able to discard some of the
//! search space early on". This module realizes that sketch using the §7.6
//! heuristics as the pruning order:
//!
//! * **H-sites** — prefer replacement relations that keep the rewriting on
//!   few information sources (ideally sites already referenced by the view),
//! * **H-size** — prefer replacements whose cardinality is closest to the
//!   replaced relation's (Experiment 4's winner under quality-dominant
//!   trade-offs),
//! * **H-small** — among otherwise equal candidates, prefer smaller
//!   relations (cheaper under every workload model).
//!
//! Historically this was a parallel code path duplicating the candidate
//! plumbing; it is now [`HeuristicGuide`] plugged into
//! [`ExplorationPolicy::Beam`]: PC partners are *sorted by the preference
//! before any rewriting is built*, and generation stops once the beam holds
//! `max_candidates` repaired candidates per binding level — the tail of the
//! candidate space is never materialized. The search is evaluated against
//! the exhaustive synchronizer in `eve-bench`
//! (`experiments::strategy_regret`): on Experiment 4 the quality-best
//! rewriting is the *first* candidate emitted.

use std::collections::BTreeSet;

use eve_esql::ViewDef;
use eve_misd::{Mkb, SchemaChange, SiteId};

use crate::rewriting::RewriteAction;
use crate::search::{synchronize_with_policy, ExplorationPolicy, SearchGuide, SearchNode};
use crate::synchronizer::{
    synchronize, PartnerCache, PcPartner, SyncError, SyncOptions, SyncOutcome,
};

/// Options for the pruned search.
#[derive(Debug, Clone)]
pub struct HeuristicOptions {
    /// Stop once this many legal rewritings have been produced. Must be at
    /// least 1 ([`HeuristicOptions::validated`]).
    pub max_candidates: usize,
    /// Weight of the site-count heuristic relative to the size heuristic
    /// (both normalized; 0.5 balances them). §7.3 argues sites dominate.
    /// Values outside `[0, 1]` are clamped; non-finite values are rejected.
    pub site_weight: f64,
}

impl Default for HeuristicOptions {
    fn default() -> Self {
        HeuristicOptions {
            max_candidates: 3,
            site_weight: 0.7,
        }
    }
}

impl HeuristicOptions {
    /// Validates the options: `max_candidates == 0` would silently emit
    /// nothing and is rejected; `site_weight` must be a finite number and is
    /// clamped into `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`SyncError::Options`] on an empty candidate budget or a non-finite
    /// site weight.
    pub fn validated(&self) -> Result<HeuristicOptions, SyncError> {
        if self.max_candidates == 0 {
            return Err(SyncError::Options(
                "max_candidates must be at least 1 (0 would emit no rewriting)".into(),
            ));
        }
        if !self.site_weight.is_finite() {
            return Err(SyncError::Options(format!(
                "site_weight must be a finite number in [0, 1], got {}",
                self.site_weight
            )));
        }
        Ok(HeuristicOptions {
            max_candidates: self.max_candidates,
            site_weight: self.site_weight.clamp(0.0, 1.0),
        })
    }
}

/// Sites already referenced by a view (excluding one binding).
fn view_sites(view: &ViewDef, mkb: &Mkb, excluded_binding: &str) -> BTreeSet<SiteId> {
    view.from
        .iter()
        .filter(|f| f.binding_name() != excluded_binding)
        .filter_map(|f| mkb.relation(&f.relation).ok().map(|r| r.site))
        .collect()
}

/// Heuristic preference score of a swap partner — lower is better.
fn partner_score(
    partner: &PcPartner,
    old_card: f64,
    existing_sites: &BTreeSet<SiteId>,
    mkb: &Mkb,
    options: &HeuristicOptions,
) -> f64 {
    let Ok(info) = mkb.relation(&partner.relation) else {
        return f64::INFINITY;
    };
    // H-sites: 0 when the partner lives at a site the view already visits.
    let new_site = f64::from(!existing_sites.contains(&info.site));
    // H-size: relative cardinality distance to the replaced relation.
    #[allow(clippy::cast_precision_loss)]
    let card = info.cardinality as f64;
    let size_distance = if old_card > 0.0 {
        ((card - old_card).abs() / old_card).min(1.0)
    } else {
        0.0
    };
    // H-small tie-break: a hair of preference for smaller relations.
    let small_bias = card * 1e-12;
    options.site_weight * new_site + (1.0 - options.site_weight) * size_distance + small_bias
}

/// The §7.6 heuristics as a [`SearchGuide`]: partner ordering drives the
/// beam's swap generation, and the node score — the same preference summed
/// over the repairs a partial rewriting has committed to — ranks the
/// mixed-kind candidates of attribute repairs before the beam truncates.
/// The score is a *preference*, not an admissible QC bound — pair the
/// guide with [`ExplorationPolicy::Beam`], not `BestFirst`, when exactness
/// matters.
#[derive(Debug, Clone)]
pub struct HeuristicGuide {
    /// Validated heuristic options.
    options: HeuristicOptions,
}

impl HeuristicGuide {
    /// Builds a guide from validated options.
    ///
    /// # Errors
    ///
    /// [`SyncError::Options`] as per [`HeuristicOptions::validated`].
    pub fn new(options: &HeuristicOptions) -> Result<HeuristicGuide, SyncError> {
        Ok(HeuristicGuide {
            options: options.validated()?,
        })
    }

    /// The validated options driving the guide.
    #[must_use]
    pub fn options(&self) -> &HeuristicOptions {
        &self.options
    }
}

impl SearchGuide for HeuristicGuide {
    fn score(&self, original: &ViewDef, node: &SearchNode, mkb: &Mkb) -> f64 {
        // Sites the original view already visits.
        let existing = view_sites(original, mkb, "");
        let mut score = 0.0;
        for action in &node.actions {
            let (old_relation, new_relation) = match action {
                RewriteAction::SwappedRelation {
                    old_relation,
                    new_relation,
                    ..
                } => (Some(old_relation.as_str()), new_relation.as_str()),
                RewriteAction::AddedJoinRelation { relation, .. } => (None, relation.as_str()),
                _ => continue,
            };
            let Ok(info) = mkb.relation(new_relation) else {
                score += 1.0;
                continue;
            };
            if !existing.contains(&info.site) {
                score += self.options.site_weight;
            }
            #[allow(clippy::cast_precision_loss)]
            let card = info.cardinality as f64;
            #[allow(clippy::cast_precision_loss)]
            let old_card = old_relation
                .and_then(|r| mkb.relation(r).ok())
                .map_or(0.0, |r| r.cardinality as f64);
            if old_card > 0.0 {
                score += (1.0 - self.options.site_weight)
                    * ((card - old_card).abs() / old_card).min(1.0);
            }
        }
        score
    }

    fn orders_partners(&self) -> bool {
        true
    }

    fn order_partners(&self, view: &ViewDef, binding: &str, mkb: &Mkb, partners: &mut [PcPartner]) {
        #[allow(clippy::cast_precision_loss)]
        let old_card = view
            .from_item(binding)
            .and_then(|f| mkb.relation(&f.relation).ok())
            .map_or(0.0, |r| r.cardinality as f64);
        let existing = view_sites(view, mkb, binding);
        partners.sort_by(|a, b| {
            let sa = partner_score(a, old_card, &existing, mkb, &self.options);
            let sb = partner_score(b, old_card, &existing, mkb, &self.options);
            sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
        });
    }
}

/// Synchronizes with heuristic pruning: only the most promising
/// `max_candidates` rewritings are generated (renames and `add-*` changes
/// fall through to the exhaustive path, which is already O(1) for them).
///
/// # Errors
///
/// [`SyncError::Validation`] for structurally invalid views;
/// [`SyncError::Options`] for out-of-range options (zero candidate budget,
/// non-finite site weight).
pub fn synchronize_heuristic(
    view: &ViewDef,
    change: &SchemaChange,
    mkb: &Mkb,
    options: &HeuristicOptions,
) -> Result<SyncOutcome, SyncError> {
    let guide = HeuristicGuide::new(options)?;
    match change {
        SchemaChange::DeleteAttribute { .. } | SchemaChange::DeleteRelation { .. } => {
            let width = guide.options.max_candidates;
            let sync_opts = SyncOptions {
                max_rewritings: width,
                ..SyncOptions::default()
            };
            let policy = ExplorationPolicy::Beam {
                width,
                guide: &guide,
            };
            let (outcome, _stats) = synchronize_with_policy(
                view,
                change,
                mkb,
                &sync_opts,
                &policy,
                &mut PartnerCache::new(),
            )?;
            Ok(outcome)
        }
        _ => synchronize(view, change, mkb, &SyncOptions::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_misd::{AttributeInfo, PcConstraint, PcRelationship, PcSide, RelationInfo};
    use eve_relational::DataType;

    /// Experiment-4-like space: R2 with substitutes of varying size spread
    /// over fresh sites, plus one same-site substitute.
    fn space() -> (Mkb, ViewDef) {
        let mut m = Mkb::new();
        for i in 1..=6u32 {
            m.register_site(SiteId(i), format!("IS{i}")).unwrap();
        }
        let attrs = || {
            vec![
                AttributeInfo::new("A", DataType::Int),
                AttributeInfo::new("B", DataType::Int),
            ]
        };
        m.register_relation(RelationInfo::new("R1", SiteId(1), attrs(), 400))
            .unwrap();
        m.register_relation(RelationInfo::new("R2", SiteId(2), attrs(), 4000))
            .unwrap();
        // A substitute colocated with R1 (keeps the rewriting on one site),
        // a far equal-size substitute, and far small/large ones.
        for (name, site, card) in [
            ("ColocR1", 1u32, 8000u64),
            ("LocalSmall", 2, 2000),
            ("FarExact", 3, 4000),
            ("FarBig", 4, 8000),
        ] {
            m.register_relation(RelationInfo::new(name, SiteId(site), attrs(), card))
                .unwrap();
            m.add_pc_constraint(PcConstraint::new(
                PcSide::projection("R2", &["A", "B"]),
                PcRelationship::Equivalent,
                PcSide::projection(name, &["A", "B"]),
            ))
            .unwrap();
        }
        let view = eve_esql::parse_view(
            "CREATE VIEW V (VE = '~') AS \
             SELECT R1.A, R2.B AS B2 (AR = true) \
             FROM R1, R2 (RR = true) \
             WHERE R1.A = R2.A",
        )
        .unwrap();
        (m, view)
    }

    #[test]
    fn heuristic_emits_capped_and_ordered_candidates() {
        let (mkb, view) = space();
        let change = SchemaChange::DeleteRelation {
            relation: "R2".into(),
        };
        let outcome = synchronize_heuristic(
            &view,
            &change,
            &mkb,
            &HeuristicOptions {
                max_candidates: 2,
                site_weight: 0.7,
            },
        )
        .unwrap();
        assert_eq!(outcome.rewritings.len(), 2);
        // First pick with a dominant site weight: the substitute colocated
        // with R1 — the rewriting then spans a single site (the §7.3
        // priority), even though its size diverges most.
        let first = outcome.rewritings[0]
            .view
            .from
            .iter()
            .find(|f| f.relation != "R1")
            .unwrap()
            .relation
            .clone();
        assert_eq!(first, "ColocR1");
    }

    #[test]
    fn size_heuristic_wins_when_site_weight_low() {
        let (mkb, view) = space();
        let change = SchemaChange::DeleteRelation {
            relation: "R2".into(),
        };
        let outcome = synchronize_heuristic(
            &view,
            &change,
            &mkb,
            &HeuristicOptions {
                max_candidates: 1,
                site_weight: 0.0,
            },
        )
        .unwrap();
        let first = outcome.rewritings[0]
            .view
            .from
            .iter()
            .find(|f| f.relation != "R1")
            .unwrap()
            .relation
            .clone();
        assert_eq!(first, "FarExact", "size distance 0 beats colocated 50%");
    }

    #[test]
    fn heuristic_subset_of_exhaustive() {
        let (mkb, view) = space();
        let change = SchemaChange::DeleteRelation {
            relation: "R2".into(),
        };
        let full = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        let pruned = synchronize_heuristic(
            &view,
            &change,
            &mkb,
            &HeuristicOptions {
                max_candidates: 2,
                site_weight: 0.7,
            },
        )
        .unwrap();
        let full_set: std::collections::BTreeSet<String> =
            full.rewritings.iter().map(|r| r.view.to_string()).collect();
        for rw in &pruned.rewritings {
            assert!(
                full_set.contains(&rw.view.to_string()),
                "pruned result not in exhaustive set"
            );
        }
        assert!(pruned.rewritings.len() < full.rewritings.len());
    }

    #[test]
    fn unaffected_views_pass_through() {
        let (mkb, view) = space();
        let outcome = synchronize_heuristic(
            &view,
            &SchemaChange::DeleteRelation {
                relation: "FarBig".into(),
            },
            &mkb,
            &HeuristicOptions::default(),
        )
        .unwrap();
        assert!(!outcome.affected);
    }

    #[test]
    fn delete_attribute_path_prunes_too() {
        let (mkb, view) = space();
        let change = SchemaChange::DeleteAttribute {
            relation: "R2".into(),
            attribute: "B".into(),
        };
        let full = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        let pruned = synchronize_heuristic(
            &view,
            &change,
            &mkb,
            &HeuristicOptions {
                max_candidates: 1,
                site_weight: 0.7,
            },
        )
        .unwrap();
        assert!(full.rewritings.len() > 1);
        assert_eq!(pruned.rewritings.len(), 1);
    }

    #[test]
    fn attribute_repairs_are_ranked_across_kinds_before_truncation() {
        // A badly-scored attribute replacement (far, huge partner) must not
        // win the budget over a perfectly-scored swap just because
        // replacements are generated first.
        let mut m = Mkb::new();
        for i in [1u32, 2, 9] {
            m.register_site(SiteId(i), format!("IS{i}")).unwrap();
        }
        let ab = || {
            vec![
                AttributeInfo::new("A", DataType::Int),
                AttributeInfo::new("B", DataType::Int),
            ]
        };
        m.register_relation(RelationInfo::new("Base", SiteId(1), ab(), 4000))
            .unwrap();
        m.register_relation(RelationInfo::new("R", SiteId(2), ab(), 4000))
            .unwrap();
        // Same-site (as Base), same-size swap partner covering everything.
        m.register_relation(RelationInfo::new("NearSwap", SiteId(1), ab(), 4000))
            .unwrap();
        m.add_pc_constraint(PcConstraint::new(
            PcSide::projection("R", &["A", "B"]),
            PcRelationship::Equivalent,
            PcSide::projection("NearSwap", &["A", "B"]),
        ))
        .unwrap();
        // Far, huge replacement partner covering only A, joinable via B.
        m.register_relation(RelationInfo::new(
            "FarRep",
            SiteId(9),
            vec![
                AttributeInfo::new("A2", DataType::Int),
                AttributeInfo::new("C", DataType::Int),
            ],
            400_000,
        ))
        .unwrap();
        m.add_pc_constraint(PcConstraint::new(
            PcSide::projection("R", &["A"]),
            PcRelationship::Equivalent,
            PcSide::projection("FarRep", &["A2"]),
        ))
        .unwrap();
        m.add_join_constraint(eve_misd::JoinConstraint::new(
            "R",
            "FarRep",
            vec![eve_relational::PrimitiveClause::eq(
                eve_relational::ColumnRef::parse("R.B"),
                eve_relational::ColumnRef::parse("FarRep.C"),
            )],
        ))
        .unwrap();
        let view = eve_esql::parse_view(
            "CREATE VIEW V (VE = '~') AS \
             SELECT Base.A AS BA, X.A (AR = true), X.B \
             FROM Base, R X (RR = true) \
             WHERE Base.A = X.A (CR = true)",
        )
        .unwrap();
        let change = SchemaChange::DeleteAttribute {
            relation: "R".into(),
            attribute: "A".into(),
        };
        // Both repair kinds exist in the exhaustive set…
        let full = synchronize(&view, &change, &m, &SyncOptions::default()).unwrap();
        assert!(full.rewritings.len() >= 2, "{}", full.rewritings.len());
        // …and the width-1 beam keeps the better-scored swap, not the
        // generation-order-first replacement.
        let pruned = synchronize_heuristic(
            &view,
            &change,
            &m,
            &HeuristicOptions {
                max_candidates: 1,
                site_weight: 0.7,
            },
        )
        .unwrap();
        assert_eq!(pruned.rewritings.len(), 1);
        let printed = pruned.rewritings[0].view.to_string();
        assert!(printed.contains("NearSwap"), "{printed}");
    }

    #[test]
    fn renames_fall_through_to_exhaustive() {
        let (mkb, view) = space();
        let outcome = synchronize_heuristic(
            &view,
            &SchemaChange::RenameAttribute {
                relation: "R2".into(),
                from: "B".into(),
                to: "B9".into(),
            },
            &mkb,
            &HeuristicOptions::default(),
        )
        .unwrap();
        assert!(outcome.affected);
        assert_eq!(outcome.rewritings.len(), 1);
    }

    #[test]
    fn zero_candidate_budget_is_rejected() {
        let (mkb, view) = space();
        let err = synchronize_heuristic(
            &view,
            &SchemaChange::DeleteRelation {
                relation: "R2".into(),
            },
            &mkb,
            &HeuristicOptions {
                max_candidates: 0,
                site_weight: 0.7,
            },
        )
        .unwrap_err();
        assert!(matches!(err, SyncError::Options(_)), "{err}");
        assert!(err.to_string().contains("max_candidates"), "{err}");
    }

    #[test]
    fn site_weight_is_clamped_not_rejected() {
        let (mkb, view) = space();
        let change = SchemaChange::DeleteRelation {
            relation: "R2".into(),
        };
        // site_weight > 1 behaves exactly like 1 (sites dominate fully).
        let clamped = synchronize_heuristic(
            &view,
            &change,
            &mkb,
            &HeuristicOptions {
                max_candidates: 1,
                site_weight: 7.5,
            },
        )
        .unwrap();
        let exact = synchronize_heuristic(
            &view,
            &change,
            &mkb,
            &HeuristicOptions {
                max_candidates: 1,
                site_weight: 1.0,
            },
        )
        .unwrap();
        assert_eq!(
            clamped.rewritings[0].view.to_string(),
            exact.rewritings[0].view.to_string()
        );
        // Non-finite weights cannot be clamped meaningfully.
        let err = HeuristicOptions {
            max_candidates: 1,
            site_weight: f64::NAN,
        }
        .validated()
        .unwrap_err();
        assert!(matches!(err, SyncError::Options(_)));
    }
}
