//! Heuristic view synchronization — the paper's §8 future-work direction,
//! implemented.
//!
//! The exhaustive synchronizer generates *every* legal rewriting and leaves
//! ranking to the QC-Model; §8 sketches "a novel heuristic view
//! synchronization algorithm that, instead of first generating all rewriting
//! solutions and then ranking them, would be able to discard some of the
//! search space early on". This module realizes that sketch using the §7.6
//! heuristics as the pruning order:
//!
//! * **H-sites** — prefer replacement relations that keep the rewriting on
//!   few information sources (ideally sites already referenced by the view),
//! * **H-size** — prefer replacements whose cardinality is closest to the
//!   replaced relation's (Experiment 4's winner under quality-dominant
//!   trade-offs),
//! * **H-small** — among otherwise equal candidates, prefer smaller
//!   relations (cheaper under every workload model).
//!
//! PC partners are *sorted by this preference before any rewriting is
//! built*, and generation stops after `max_candidates` legal rewritings —
//! the tail of the candidate space is never materialized. The search is
//! evaluated against the exhaustive synchronizer in
//! `eve-bench` (`experiments::strategy_regret`): on Experiment 4 the
//! quality-best rewriting is the *first* candidate emitted.

use std::collections::BTreeSet;

use eve_esql::ViewDef;
use eve_misd::{Mkb, SchemaChange, SiteId};

use crate::synchronizer::{
    build_drop_relation, build_swap, delete_attribute_candidates, finish, repair_bindings,
    synchronize, Candidate, PartnerCache, PcPartner, SyncError, SyncOptions, SyncOutcome,
};

/// Options for the pruned search.
#[derive(Debug, Clone)]
pub struct HeuristicOptions {
    /// Stop once this many legal rewritings have been produced.
    pub max_candidates: usize,
    /// Weight of the site-count heuristic relative to the size heuristic
    /// (both normalized; 0.5 balances them). §7.3 argues sites dominate.
    pub site_weight: f64,
}

impl Default for HeuristicOptions {
    fn default() -> Self {
        HeuristicOptions {
            max_candidates: 3,
            site_weight: 0.7,
        }
    }
}

/// Sites already referenced by a view (excluding one binding).
fn view_sites(view: &ViewDef, mkb: &Mkb, excluded_binding: &str) -> BTreeSet<SiteId> {
    view.from
        .iter()
        .filter(|f| f.binding_name() != excluded_binding)
        .filter_map(|f| mkb.relation(&f.relation).ok().map(|r| r.site))
        .collect()
}

/// Heuristic preference score of a swap partner — lower is better.
fn partner_score(
    partner: &PcPartner,
    old_card: f64,
    existing_sites: &BTreeSet<SiteId>,
    mkb: &Mkb,
    options: &HeuristicOptions,
) -> f64 {
    let Ok(info) = mkb.relation(&partner.relation) else {
        return f64::INFINITY;
    };
    // H-sites: 0 when the partner lives at a site the view already visits.
    let new_site = f64::from(!existing_sites.contains(&info.site));
    // H-size: relative cardinality distance to the replaced relation.
    #[allow(clippy::cast_precision_loss)]
    let card = info.cardinality as f64;
    let size_distance = if old_card > 0.0 {
        ((card - old_card).abs() / old_card).min(1.0)
    } else {
        0.0
    };
    // H-small tie-break: a hair of preference for smaller relations.
    let small_bias = card * 1e-12;
    options.site_weight * new_site + (1.0 - options.site_weight) * size_distance + small_bias
}

/// Orders the PC partners of `relation` by heuristic preference.
fn ordered_partners(
    view: &ViewDef,
    binding: &str,
    relation: &str,
    mkb: &Mkb,
    options: &HeuristicOptions,
    cache: &mut PartnerCache,
) -> Vec<PcPartner> {
    #[allow(clippy::cast_precision_loss)]
    let old_card = mkb
        .relation(relation)
        .map(|r| r.cardinality as f64)
        .unwrap_or(0.0);
    let existing = view_sites(view, mkb, binding);
    let mut partners = cache.partners(mkb, relation);
    partners.sort_by(|a, b| {
        let sa = partner_score(a, old_card, &existing, mkb, options);
        let sb = partner_score(b, old_card, &existing, mkb, options);
        sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
    });
    partners
}

/// Per-binding candidate generation with heuristic partner ordering and an
/// emission cap.
fn pruned_candidates(
    view: &ViewDef,
    binding: &str,
    change: &SchemaChange,
    mkb: &Mkb,
    options: &HeuristicOptions,
    cache: &mut PartnerCache,
) -> Vec<Candidate> {
    let Some(from_item) = view.from_item(binding) else {
        return Vec::new();
    };
    let relation = from_item.relation.clone();
    let mut out: Vec<Candidate> = Vec::new();

    match change {
        SchemaChange::DeleteRelation { .. } => {
            if from_item.evolution.replaceable {
                for partner in ordered_partners(view, binding, &relation, mkb, options, cache) {
                    if out.len() >= options.max_candidates {
                        return out;
                    }
                    if let Some(c) = build_swap(view, binding, &partner) {
                        out.push(c);
                    }
                }
            }
            if out.len() < options.max_candidates && from_item.evolution.dispensable {
                if let Some(c) = build_drop_relation(view, binding) {
                    out.push(c);
                }
            }
        }
        SchemaChange::DeleteAttribute { attribute, .. } => {
            // Reuse the exhaustive generator but reorder its swap options by
            // re-scoring, then truncate. (Attribute repairs are cheap to
            // build; the pruning value is in not *ranking* the tail.)
            let mut all = delete_attribute_candidates(view, binding, attribute, mkb, cache);
            let existing = view_sites(view, mkb, binding);
            #[allow(clippy::cast_precision_loss)]
            let old_card = mkb
                .relation(&relation)
                .map(|r| r.cardinality as f64)
                .unwrap_or(0.0);
            all.sort_by(|a, b| {
                let score = |c: &Candidate| -> f64 {
                    // Candidates referencing fewer new sites and
                    // closer-sized relations first.
                    let mut s = 0.0;
                    for f in &c.0.from {
                        if let Ok(info) = mkb.relation(&f.relation) {
                            if !existing.contains(&info.site) && f.relation != relation {
                                s += options.site_weight;
                            }
                            #[allow(clippy::cast_precision_loss)]
                            let card = info.cardinality as f64;
                            if old_card > 0.0 && f.relation != relation {
                                s += (1.0 - options.site_weight)
                                    * ((card - old_card).abs() / old_card).min(1.0);
                            }
                        }
                    }
                    s
                };
                score(a)
                    .partial_cmp(&score(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            all.truncate(options.max_candidates);
            out = all;
        }
        _ => {}
    }
    out
}

/// Synchronizes with heuristic pruning: only the most promising
/// `max_candidates` rewritings are generated (renames and `add-*` changes
/// fall through to the exhaustive path, which is already O(1) for them).
///
/// # Errors
///
/// [`SyncError::Validation`] for structurally invalid views.
pub fn synchronize_heuristic(
    view: &ViewDef,
    change: &SchemaChange,
    mkb: &Mkb,
    options: &HeuristicOptions,
) -> Result<SyncOutcome, SyncError> {
    match change {
        SchemaChange::DeleteAttribute {
            relation,
            attribute,
        } => {
            let view =
                eve_esql::validate::validate(view).map_err(|e| SyncError::Validation(e.message))?;
            let bindings: Vec<String> = view
                .from
                .iter()
                .filter(|f| &f.relation == relation)
                .map(|f| f.binding_name().to_owned())
                .filter(|b| uses(&view, b, attribute))
                .collect();
            if bindings.is_empty() {
                return Ok(SyncOutcome {
                    affected: false,
                    rewritings: Vec::new(),
                });
            }
            let sync_opts = SyncOptions {
                max_rewritings: options.max_candidates,
                ..SyncOptions::default()
            };
            let mut cache = PartnerCache::new();
            let candidates = repair_bindings(&view, &bindings, mkb, &sync_opts, |v, b| {
                pruned_candidates(v, b, change, mkb, options, &mut cache)
            });
            Ok(finish(&view, candidates, &sync_opts))
        }
        SchemaChange::DeleteRelation { relation } => {
            let view =
                eve_esql::validate::validate(view).map_err(|e| SyncError::Validation(e.message))?;
            let bindings: Vec<String> = view
                .from
                .iter()
                .filter(|f| &f.relation == relation)
                .map(|f| f.binding_name().to_owned())
                .collect();
            if bindings.is_empty() {
                return Ok(SyncOutcome {
                    affected: false,
                    rewritings: Vec::new(),
                });
            }
            let sync_opts = SyncOptions {
                max_rewritings: options.max_candidates,
                ..SyncOptions::default()
            };
            let mut cache = PartnerCache::new();
            let candidates = repair_bindings(&view, &bindings, mkb, &sync_opts, |v, b| {
                pruned_candidates(v, b, change, mkb, options, &mut cache)
            });
            Ok(finish(&view, candidates, &sync_opts))
        }
        _ => synchronize(view, change, mkb, &SyncOptions::default()),
    }
}

fn uses(view: &ViewDef, binding: &str, attr: &str) -> bool {
    crate::synchronizer::uses_attr(view, binding, attr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_misd::{AttributeInfo, PcConstraint, PcRelationship, PcSide, RelationInfo};
    use eve_relational::DataType;

    /// Experiment-4-like space: R2 with substitutes of varying size spread
    /// over fresh sites, plus one same-site substitute.
    fn space() -> (Mkb, ViewDef) {
        let mut m = Mkb::new();
        for i in 1..=6u32 {
            m.register_site(SiteId(i), format!("IS{i}")).unwrap();
        }
        let attrs = || {
            vec![
                AttributeInfo::new("A", DataType::Int),
                AttributeInfo::new("B", DataType::Int),
            ]
        };
        m.register_relation(RelationInfo::new("R1", SiteId(1), attrs(), 400))
            .unwrap();
        m.register_relation(RelationInfo::new("R2", SiteId(2), attrs(), 4000))
            .unwrap();
        // A substitute colocated with R1 (keeps the rewriting on one site),
        // a far equal-size substitute, and far small/large ones.
        for (name, site, card) in [
            ("ColocR1", 1u32, 8000u64),
            ("LocalSmall", 2, 2000),
            ("FarExact", 3, 4000),
            ("FarBig", 4, 8000),
        ] {
            m.register_relation(RelationInfo::new(name, SiteId(site), attrs(), card))
                .unwrap();
            m.add_pc_constraint(PcConstraint::new(
                PcSide::projection("R2", &["A", "B"]),
                PcRelationship::Equivalent,
                PcSide::projection(name, &["A", "B"]),
            ))
            .unwrap();
        }
        let view = eve_esql::parse_view(
            "CREATE VIEW V (VE = '~') AS \
             SELECT R1.A, R2.B AS B2 (AR = true) \
             FROM R1, R2 (RR = true) \
             WHERE R1.A = R2.A",
        )
        .unwrap();
        (m, view)
    }

    #[test]
    fn heuristic_emits_capped_and_ordered_candidates() {
        let (mkb, view) = space();
        let change = SchemaChange::DeleteRelation {
            relation: "R2".into(),
        };
        let outcome = synchronize_heuristic(
            &view,
            &change,
            &mkb,
            &HeuristicOptions {
                max_candidates: 2,
                site_weight: 0.7,
            },
        )
        .unwrap();
        assert_eq!(outcome.rewritings.len(), 2);
        // First pick with a dominant site weight: the substitute colocated
        // with R1 — the rewriting then spans a single site (the §7.3
        // priority), even though its size diverges most.
        let first = outcome.rewritings[0]
            .view
            .from
            .iter()
            .find(|f| f.relation != "R1")
            .unwrap()
            .relation
            .clone();
        assert_eq!(first, "ColocR1");
    }

    #[test]
    fn size_heuristic_wins_when_site_weight_low() {
        let (mkb, view) = space();
        let change = SchemaChange::DeleteRelation {
            relation: "R2".into(),
        };
        let outcome = synchronize_heuristic(
            &view,
            &change,
            &mkb,
            &HeuristicOptions {
                max_candidates: 1,
                site_weight: 0.0,
            },
        )
        .unwrap();
        let first = outcome.rewritings[0]
            .view
            .from
            .iter()
            .find(|f| f.relation != "R1")
            .unwrap()
            .relation
            .clone();
        assert_eq!(first, "FarExact", "size distance 0 beats colocated 50%");
    }

    #[test]
    fn heuristic_subset_of_exhaustive() {
        let (mkb, view) = space();
        let change = SchemaChange::DeleteRelation {
            relation: "R2".into(),
        };
        let full = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        let pruned = synchronize_heuristic(
            &view,
            &change,
            &mkb,
            &HeuristicOptions {
                max_candidates: 2,
                site_weight: 0.7,
            },
        )
        .unwrap();
        let full_set: std::collections::BTreeSet<String> =
            full.rewritings.iter().map(|r| r.view.to_string()).collect();
        for rw in &pruned.rewritings {
            assert!(
                full_set.contains(&rw.view.to_string()),
                "pruned result not in exhaustive set"
            );
        }
        assert!(pruned.rewritings.len() < full.rewritings.len());
    }

    #[test]
    fn unaffected_views_pass_through() {
        let (mkb, view) = space();
        let outcome = synchronize_heuristic(
            &view,
            &SchemaChange::DeleteRelation {
                relation: "FarBig".into(),
            },
            &mkb,
            &HeuristicOptions::default(),
        )
        .unwrap();
        assert!(!outcome.affected);
    }

    #[test]
    fn delete_attribute_path_prunes_too() {
        let (mkb, view) = space();
        let change = SchemaChange::DeleteAttribute {
            relation: "R2".into(),
            attribute: "B".into(),
        };
        let full = synchronize(&view, &change, &mkb, &SyncOptions::default()).unwrap();
        let pruned = synchronize_heuristic(
            &view,
            &change,
            &mkb,
            &HeuristicOptions {
                max_candidates: 1,
                site_weight: 0.7,
            },
        )
        .unwrap();
        assert!(full.rewritings.len() > 1);
        assert_eq!(pruned.rewritings.len(), 1);
    }

    #[test]
    fn renames_fall_through_to_exhaustive() {
        let (mkb, view) = space();
        let outcome = synchronize_heuristic(
            &view,
            &SchemaChange::RenameAttribute {
                relation: "R2".into(),
                from: "B".into(),
                to: "B9".into(),
            },
            &mkb,
            &HeuristicOptions::default(),
        )
        .unwrap();
        assert!(outcome.affected);
        assert_eq!(outcome.rewritings.len(), 1);
    }
}
