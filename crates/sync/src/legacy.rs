//! The frozen pre-refactor synchronization pipeline.
//!
//! Before the streaming search driver ([`crate::search`]) unified the
//! exhaustive and heuristic paths, [`synchronize`](crate::synchronize)
//! materialized the full cross product of per-binding repairs
//! (`repair_bindings`) and then filtered it in one batch (`finish`). This
//! module keeps that pipeline verbatim as the **reference implementation**
//! the differential property suite holds the driver's
//! [`Exhaustive`](crate::search::ExplorationPolicy::Exhaustive) policy
//! against — byte-identical views, repair actions and extent relationships,
//! in the same order. It mirrors the precedent of
//! `EveEngine::notify_capability_change_sequential` for the batched
//! pipeline.
//!
//! Production code must call [`crate::synchronize`] /
//! [`crate::synchronize_with`]; nothing outside tests and benches should
//! depend on this module.

use std::collections::BTreeSet;

use eve_esql::ViewDef;
use eve_misd::{Mkb, SchemaChange};

use crate::extent::ExtentRelationship;
use crate::rewriting::{LegalRewriting, Provenance, RewriteAction};
use crate::synchronizer::{
    build_attr_replacement, build_drop_components, build_drop_relation, build_swap,
    rename_attribute, rename_relation, structurally_sound, uses_attr, Candidate, PartnerCache,
    SyncError, SyncOptions, SyncOutcome,
};

/// The pre-refactor [`crate::synchronize`]: materialize every legal
/// rewriting, then filter. Kept only as the differential-test oracle.
///
/// # Errors
///
/// [`SyncError::Validation`] when the view is structurally invalid.
pub fn synchronize_legacy(
    view: &ViewDef,
    change: &SchemaChange,
    mkb: &Mkb,
    options: &SyncOptions,
) -> Result<SyncOutcome, SyncError> {
    let view = eve_esql::validate::validate(view).map_err(|e| SyncError::Validation(e.message))?;
    let partners = &mut PartnerCache::new();

    let unaffected = || SyncOutcome {
        affected: false,
        rewritings: Vec::new(),
    };
    match change {
        SchemaChange::AddAttribute { .. } | SchemaChange::AddRelation { .. } => Ok(unaffected()),
        SchemaChange::RenameAttribute { relation, from, to } => {
            Ok(rename_attribute(&view, relation, from, to))
        }
        SchemaChange::RenameRelation { from, to } => Ok(rename_relation(&view, from, to)),
        SchemaChange::DeleteAttribute {
            relation,
            attribute,
        } => {
            let bindings: Vec<String> = view
                .from
                .iter()
                .filter(|f| &f.relation == relation)
                .map(|f| f.binding_name().to_owned())
                .filter(|b| uses_attr(&view, b, attribute))
                .collect();
            if bindings.is_empty() {
                return Ok(unaffected());
            }
            let candidates = repair_bindings(&view, &bindings, options, |v, b| {
                delete_attribute_candidates(v, b, attribute, mkb, partners)
            });
            Ok(finish(&view, candidates, options))
        }
        SchemaChange::DeleteRelation { relation } => {
            let bindings: Vec<String> = view
                .from
                .iter()
                .filter(|f| &f.relation == relation)
                .map(|f| f.binding_name().to_owned())
                .collect();
            if bindings.is_empty() {
                return Ok(unaffected());
            }
            let candidates = repair_bindings(&view, &bindings, options, |v, b| {
                delete_relation_candidates(v, b, mkb, partners)
            });
            Ok(finish(&view, candidates, options))
        }
    }
}

/// Applies a per-binding candidate generator across all affected bindings
/// (cross product, breadth-capped) — the pre-refactor plumbing.
fn repair_bindings(
    view: &ViewDef,
    bindings: &[String],
    options: &SyncOptions,
    mut gen: impl FnMut(&ViewDef, &str) -> Vec<Candidate>,
) -> Vec<Candidate> {
    let mut results: Vec<Candidate> = vec![(view.clone(), Vec::new(), ExtentRelationship::Equal)];
    for b in bindings {
        let mut next = Vec::new();
        for (v, actions, ext) in &results {
            // A previous repair may have removed the binding entirely.
            if v.from_item(b).is_none() {
                next.push((v.clone(), actions.clone(), *ext));
                continue;
            }
            for (nv, nactions, next_ext) in gen(v, b) {
                let mut all = actions.clone();
                all.extend(nactions);
                next.push((nv, all, ext.compose(next_ext)));
                if next.len() >= options.max_rewritings.saturating_mul(4) {
                    break;
                }
            }
        }
        results = next;
    }
    results
}

/// Final filtering: structural sanity, `VE` legality, dedup, cap, optional
/// dispensable-drop spectrum — the pre-refactor batch filter.
fn finish(original: &ViewDef, candidates: Vec<Candidate>, options: &SyncOptions) -> SyncOutcome {
    let mut rewritings: Vec<LegalRewriting> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();

    let push = |view: ViewDef,
                actions: Vec<RewriteAction>,
                extent: ExtentRelationship,
                rewritings: &mut Vec<LegalRewriting>,
                seen: &mut BTreeSet<String>| {
        if rewritings.len() >= options.max_rewritings {
            return;
        }
        if !structurally_sound(&view) || !extent.satisfies(original.ve) {
            return;
        }
        let key = view.to_string();
        if seen.insert(key) {
            rewritings.push(LegalRewriting {
                view,
                provenance: Provenance { actions },
                extent,
            });
        }
    };

    let base: Vec<Candidate> = candidates;
    for (view, actions, extent) in &base {
        push(
            view.clone(),
            actions.clone(),
            *extent,
            &mut rewritings,
            &mut seen,
        );
    }

    if options.enumerate_dispensable_drops {
        // One extra level: drop each dispensable attribute of each candidate.
        for (view, actions, extent) in &base {
            for (idx, item) in view.select.iter().enumerate() {
                if !item.evolution.dispensable || view.select.len() <= 1 {
                    continue;
                }
                let mut v = view.clone();
                let dropped = v.select.remove(idx);
                if let Some(cols) = &mut v.column_names {
                    cols.remove(idx);
                }
                let mut acts = actions.clone();
                acts.push(RewriteAction::DroppedAttribute {
                    binding: dropped.attr.qualifier.clone().unwrap_or_default(),
                    attribute: dropped.attr.name.clone(),
                });
                push(v, acts, *extent, &mut rewritings, &mut seen);
            }
        }
    }

    SyncOutcome {
        affected: true,
        rewritings,
    }
}

fn delete_attribute_candidates(
    view: &ViewDef,
    binding: &str,
    attr: &str,
    mkb: &Mkb,
    partner_cache: &mut PartnerCache,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    let relation = match view.from_item(binding) {
        Some(f) => f.relation.clone(),
        None => return out,
    };
    let partners = partner_cache.partners(mkb, &relation);

    // (a) attribute replacement keeping the relation.
    for partner in partners.iter().filter(|p| p.attr_map.contains_key(attr)) {
        if let Some(c) = build_attr_replacement(view, binding, attr, partner, mkb) {
            out.push(c);
        }
    }

    // (b) whole-relation swap (Experiment 1's V1/V2 route).
    if view
        .from_item(binding)
        .is_some_and(|f| f.evolution.replaceable)
    {
        for partner in &partners {
            if let Some(c) = build_swap(view, binding, partner) {
                out.push(c);
            }
        }
    }

    // (c) drop every component that used the attribute.
    if let Some(c) = build_drop_components(view, binding, attr) {
        out.push(c);
    }

    out
}

fn delete_relation_candidates(
    view: &ViewDef,
    binding: &str,
    mkb: &Mkb,
    partner_cache: &mut PartnerCache,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    let Some(from_item) = view.from_item(binding) else {
        return out;
    };
    let relation = from_item.relation.clone();

    // (a) swap for each PC partner.
    if from_item.evolution.replaceable {
        for partner in partner_cache.partners(mkb, &relation) {
            if let Some(c) = build_swap(view, binding, &partner) {
                out.push(c);
            }
        }
    }

    // (b) drop the relation and everything derived from it.
    if from_item.evolution.dispensable {
        if let Some(c) = build_drop_relation(view, binding) {
            out.push(c);
        }
    }

    out
}
