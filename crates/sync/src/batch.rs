//! Batched evolution pipeline: op grouping and memoized rewriting.
//!
//! Heavy-traffic warehouses see evolution operations in bursts — many data
//! updates interleaved with occasional capability changes — rather than as
//! isolated events. This module provides the *planning* half of the batched
//! pipeline (the execution half lives in `eve-system`):
//!
//! * [`EvolutionOp`] — the unified op stream (data updates, capability
//!   changes including relation drops),
//! * [`plan`] / [`partition_stage`] — dependency-respecting grouping: runs
//!   of data ops between capability barriers are partitioned into
//!   independent groups (connected components over the sites, relations and
//!   views they touch) that a multi-site driver can process concurrently,
//! * [`RewriteCache`] — memoizes [`synchronize`] outcomes keyed by
//!   `(view, change, Mkb::generation)`, sharing one [`PartnerCache`] across
//!   views so PC-partner closures are not recomputed for untouched views.
//!
//! Grouping never reorders ops that touch the same site, relation or view,
//! and capability changes act as barriers, so executing a plan is
//! observationally identical to the op-by-op legacy path — the differential
//! property suite (`tests/properties.rs`, `crates/sync/tests/batch_props.rs`)
//! pins exactly that: byte-identical view extents, survival verdicts and
//! I/O totals. In particular the pipeline deliberately does *not* coalesce
//! per-view delta relations across ops: merging deltas would change the
//! charged I/O (the per-probe full-scan cap of Eq. 32 applies per
//! maintenance pass), making batched and sequential cost reports
//! incomparable. The savings come from scheduling — touching only affected
//! views, partition concurrency, and rewrite memoization.
//!
//! [`synchronize`]: crate::synchronize

use std::collections::HashMap;
use std::sync::Arc;

use eve_trace::Counter;

use eve_esql::ViewDef;
use eve_misd::{Mkb, SchemaChange};
use eve_relational::{Relation, Tuple};

use crate::synchronizer::{synchronize_with, PartnerCache, SyncError, SyncOptions, SyncOutcome};

/// One operation of a batched evolution workload.
#[derive(Debug, Clone)]
pub enum EvolutionOp {
    /// A base-data update at the source hosting `relation`.
    Data {
        /// Updated relation (registered name).
        relation: String,
        /// Inserted tuples.
        inserts: Vec<Tuple>,
        /// Deleted tuples.
        deletes: Vec<Tuple>,
    },
    /// A capability (schema) change, including relation drops. The optional
    /// extent seeds `add-relation` changes.
    Capability {
        /// The schema change.
        change: SchemaChange,
        /// New extent for `add-relation` (ignored otherwise).
        new_extent: Option<Relation>,
    },
}

impl EvolutionOp {
    /// An insert-only data op.
    #[must_use]
    pub fn insert(relation: impl Into<String>, tuples: Vec<Tuple>) -> EvolutionOp {
        EvolutionOp::Data {
            relation: relation.into(),
            inserts: tuples,
            deletes: Vec::new(),
        }
    }

    /// A delete-only data op.
    #[must_use]
    pub fn delete(relation: impl Into<String>, tuples: Vec<Tuple>) -> EvolutionOp {
        EvolutionOp::Data {
            relation: relation.into(),
            inserts: Vec::new(),
            deletes: tuples,
        }
    }

    /// A capability change without a new extent.
    #[must_use]
    pub fn change(change: SchemaChange) -> EvolutionOp {
        EvolutionOp::Capability {
            change,
            new_extent: None,
        }
    }

    /// Whether this is a data op.
    #[must_use]
    pub fn is_data(&self) -> bool {
        matches!(self, EvolutionOp::Data { .. })
    }

    /// The relation whose schema or data the op touches directly (`None`
    /// for `add-relation`, which cannot affect existing views).
    #[must_use]
    pub fn touched_relation(&self) -> Option<&str> {
        match self {
            EvolutionOp::Data { relation, .. } => Some(relation),
            EvolutionOp::Capability { change, .. } => touched_relation(change),
        }
    }
}

/// The relation a capability change touches directly (`None` for
/// `add-relation`, which cannot affect existing views). Only views binding
/// this relation in FROM can be affected — the soundness basis of the
/// batched engine's prefilter.
#[must_use]
pub fn touched_relation(change: &SchemaChange) -> Option<&str> {
    match change {
        SchemaChange::DeleteAttribute { relation, .. }
        | SchemaChange::AddAttribute { relation, .. }
        | SchemaChange::RenameAttribute { relation, .. }
        | SchemaChange::DeleteRelation { relation } => Some(relation),
        SchemaChange::RenameRelation { from, .. } => Some(from),
        SchemaChange::AddRelation { .. } => None,
    }
}

/// A view's footprint over the information space, as the planner sees it:
/// its name and the base relations its FROM clause references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewFootprint {
    /// View name.
    pub name: String,
    /// Referenced base relations.
    pub relations: Vec<String>,
}

impl ViewFootprint {
    /// Extracts the footprint of a view definition.
    #[must_use]
    pub fn of(view: &ViewDef) -> ViewFootprint {
        ViewFootprint {
            name: view.name.clone(),
            relations: view.from.iter().map(|f| f.relation.clone()).collect(),
        }
    }
}

/// One independent group of data ops: no site, relation or view is shared
/// with any other partition of the same stage, so partitions can execute
/// concurrently without changing any observable outcome.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Partition {
    /// Indices into the stage's op slice, in original order.
    pub ops: Vec<usize>,
    /// Names of the views this partition maintains (sorted).
    pub views: Vec<String>,
    /// Sites this partition touches (base sites of its ops' relations and
    /// of every relation its views reference; sorted).
    pub sites: Vec<u32>,
}

/// One stage of a batch plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stage {
    /// A run of data ops, split into independent partitions.
    Data {
        /// The concurrent partitions.
        partitions: Vec<Partition>,
    },
    /// A capability change — a barrier processed sequentially.
    Capability {
        /// Index of the op in the overall batch.
        op: usize,
    },
}

/// The full plan for a batch: stages in execution order.
#[derive(Debug, Clone, Default)]
pub struct BatchPlan {
    /// Stages in order; `Data` stages carry op indices relative to the
    /// whole batch (unlike [`partition_stage`], which indexes its slice).
    pub stages: Vec<Stage>,
}

impl BatchPlan {
    /// The widest data stage (1 when the plan has no data stage).
    #[must_use]
    pub fn max_width(&self) -> usize {
        self.stages
            .iter()
            .map(|s| match s {
                Stage::Data { partitions } => partitions.len(),
                Stage::Capability { .. } => 1,
            })
            .max()
            .unwrap_or(1)
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Token {
    Site(u32),
    Relation(String),
    View(String),
}

/// Union-find over op indices.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

/// Partitions a run of **data** ops into independent groups.
///
/// Two ops land in the same partition when they touch a common site,
/// relation or view — directly, or through a view that joins their
/// relations. `views` must be the footprints of the *current* view
/// definitions (adopted rewritings change footprints, which is why stages
/// after a capability barrier are planned afresh); `site_of` resolves a
/// relation to its hosting site (`None` for unknown relations, which are
/// grouped together and surface their error at execution).
///
/// Op indices in the result are relative to `ops` and preserve order inside
/// each partition.
#[must_use]
pub fn partition_stage(
    ops: &[&EvolutionOp],
    views: &[ViewFootprint],
    site_of: impl Fn(&str) -> Option<u32>,
) -> Vec<Partition> {
    // Relation → views referencing it.
    let mut by_relation: HashMap<&str, Vec<&ViewFootprint>> = HashMap::new();
    for fp in views {
        for rel in &fp.relations {
            by_relation.entry(rel.as_str()).or_default().push(fp);
        }
    }

    // Tokens per op: the op's relation + site, plus every view over the
    // relation together with that view's full site/relation closure.
    let mut dsu = Dsu::new(ops.len());
    let mut owner: HashMap<Token, usize> = HashMap::new();
    let mut op_tokens: Vec<Vec<Token>> = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let mut tokens: Vec<Token> = Vec::new();
        let Some(rel) = op.touched_relation() else {
            op_tokens.push(tokens);
            continue;
        };
        tokens.push(Token::Relation(rel.to_owned()));
        if let Some(site) = site_of(rel) {
            tokens.push(Token::Site(site));
        }
        for fp in by_relation.get(rel).map_or(&[][..], Vec::as_slice) {
            tokens.push(Token::View(fp.name.clone()));
            for r in &fp.relations {
                tokens.push(Token::Relation(r.clone()));
                if let Some(site) = site_of(r) {
                    tokens.push(Token::Site(site));
                }
            }
        }
        for t in &tokens {
            match owner.get(t) {
                Some(&o) => dsu.union(o, i),
                None => {
                    owner.insert(t.clone(), i);
                }
            }
        }
        op_tokens.push(tokens);
    }

    // Materialize partitions in first-op order.
    let mut by_root: HashMap<usize, Partition> = HashMap::new();
    let mut order: Vec<usize> = Vec::new();
    for (i, tokens) in op_tokens.iter().enumerate() {
        let root = dsu.find(i);
        let part = by_root.entry(root).or_insert_with(|| {
            order.push(root);
            Partition::default()
        });
        part.ops.push(i);
        for t in tokens {
            match t {
                Token::Site(s) => {
                    if !part.sites.contains(s) {
                        part.sites.push(*s);
                    }
                }
                Token::View(v) => {
                    if !part.views.contains(v) {
                        part.views.push(v.clone());
                    }
                }
                Token::Relation(_) => {}
            }
        }
    }
    let mut out: Vec<Partition> = order
        .into_iter()
        .map(|root| by_root.remove(&root).expect("registered"))
        .collect();
    for p in &mut out {
        p.sites.sort_unstable();
        p.views.sort();
    }
    out
}

/// Plans a whole batch: maximal runs of data ops become concurrent
/// [`Stage::Data`] stages, capability changes become sequential barriers.
///
/// The plan is advisory for inspection and tests; executors that adopt
/// rewritings mid-batch (changing view footprints) should re-plan each data
/// run as it is reached, exactly as [`partition_stage`] documents.
#[must_use]
pub fn plan(
    ops: &[EvolutionOp],
    views: &[ViewFootprint],
    site_of: impl Fn(&str) -> Option<u32>,
) -> BatchPlan {
    let mut stages = Vec::new();
    let mut i = 0;
    while i < ops.len() {
        if ops[i].is_data() {
            let start = i;
            while i < ops.len() && ops[i].is_data() {
                i += 1;
            }
            let run: Vec<&EvolutionOp> = ops[start..i].iter().collect();
            let mut partitions = partition_stage(&run, views, &site_of);
            for p in &mut partitions {
                for op in &mut p.ops {
                    *op += start;
                }
            }
            stages.push(Stage::Data { partitions });
        } else {
            stages.push(Stage::Capability { op: i });
            i += 1;
        }
    }
    BatchPlan { stages }
}

type OutcomeKey = (String, String, usize, bool);

/// Memoizes [`synchronize`](crate::synchronize) outcomes across a batch.
///
/// Entries are keyed by the view's printed definition, the change, the
/// synchronizer options and — implicitly — [`Mkb::generation`]: whenever
/// the cache observes a different generation than the one its entries were
/// computed under, it drops everything (outcomes *and* the shared
/// [`PartnerCache`]). Within one generation, synchronizing the same view
/// against the same change replays the stored outcome, and distinct views
/// over the same relations share PC-partner closures.
#[derive(Debug, Default)]
pub struct RewriteCache {
    generation: Option<u64>,
    outcomes: HashMap<OutcomeKey, SyncOutcome>,
    partners: PartnerCache,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

impl Clone for RewriteCache {
    fn clone(&self) -> RewriteCache {
        RewriteCache {
            generation: self.generation,
            outcomes: self.outcomes.clone(),
            partners: self.partners.clone(),
            // Counter::clone detaches — the copy counts independently.
            hits: Arc::new((*self.hits).clone()),
            misses: Arc::new((*self.misses).clone()),
        }
    }
}

impl RewriteCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> RewriteCache {
        RewriteCache::default()
    }

    /// Cached [`synchronize`](crate::synchronize): identical outcomes,
    /// amortized enumeration.
    ///
    /// # Errors
    ///
    /// Exactly the errors of the uncached synchronizer.
    pub fn synchronize(
        &mut self,
        view: &ViewDef,
        change: &SchemaChange,
        mkb: &Mkb,
        options: &SyncOptions,
    ) -> Result<SyncOutcome, SyncError> {
        self.refresh_generation(mkb);
        let key = (
            view.to_string(),
            change.to_string(),
            options.max_rewritings,
            options.enumerate_dispensable_drops,
        );
        if let Some(found) = self.outcomes.get(&key) {
            self.hits.inc();
            return Ok(found.clone());
        }
        let outcome = synchronize_with(view, change, mkb, options, &mut self.partners)?;
        self.misses.inc();
        self.outcomes.insert(key, outcome.clone());
        Ok(outcome)
    }

    /// Runs an arbitrary search policy through the cache's shared
    /// [`PartnerCache`] (generation-keyed like the memoized outcomes), so
    /// pruned searches across many views reuse one PC-partner closure per
    /// relation. Unlike [`RewriteCache::synchronize`], the *outcome* is not
    /// memoized — pruned policies are already cheap and their emissions
    /// depend on the policy, not just the `(view, change)` pair.
    ///
    /// # Errors
    ///
    /// Exactly the errors of the underlying search driver.
    pub fn synchronize_with_policy(
        &mut self,
        view: &ViewDef,
        change: &SchemaChange,
        mkb: &Mkb,
        options: &SyncOptions,
        policy: &crate::search::ExplorationPolicy<'_>,
    ) -> Result<(SyncOutcome, crate::search::SearchStats), SyncError> {
        self.refresh_generation(mkb);
        crate::search::synchronize_with_policy(
            view,
            change,
            mkb,
            options,
            policy,
            &mut self.partners,
        )
    }

    /// Drops every cached structure when the MKB generation moved since the
    /// entries were computed — shared by all cache entry points so an
    /// invalidation change cannot drift between them.
    fn refresh_generation(&mut self, mkb: &Mkb) {
        let generation = mkb.generation();
        if self.generation != Some(generation) {
            self.outcomes.clear();
            self.partners.clear();
            self.generation = Some(generation);
        }
    }

    /// Number of synchronizations served from memory.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Number of synchronizations actually enumerated.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// PC-partner closure cache statistics `(hits, misses)`.
    #[must_use]
    pub fn partner_stats(&self) -> (u64, u64) {
        (self.partners.hits(), self.partners.misses())
    }

    /// Zeroes every hit/miss counter — the memoized outcomes and partner
    /// closures stay warm, only the *reporting* resets. Part of the
    /// engine's `reset_io` contract, so `stats` deltas taken between
    /// checkpoints all start from the same origin.
    pub fn reset_stats(&mut self) {
        self.hits.reset();
        self.misses.reset();
        self.partners.reset_stats();
    }

    /// The live counter handles of the cache *and* its embedded partner
    /// cache, named for registry adoption: the engine registers them into
    /// its telemetry [`eve_trace::Registry`] so one registry reset covers
    /// every cache counter.
    #[must_use]
    pub fn counter_handles(&self) -> Vec<(&'static str, Arc<Counter>)> {
        let mut handles = vec![
            ("cache.rewrite_hits", Arc::clone(&self.hits)),
            ("cache.rewrite_misses", Arc::clone(&self.misses)),
        ];
        handles.extend(self.partners.counter_handles());
        handles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_misd::{AttributeInfo, RelationInfo, SiteId};
    use eve_relational::{tup, DataType};
    use std::collections::BTreeSet;

    fn op(rel: &str) -> EvolutionOp {
        EvolutionOp::insert(rel, vec![tup![1]])
    }

    fn fp(name: &str, rels: &[&str]) -> ViewFootprint {
        ViewFootprint {
            name: name.into(),
            relations: rels.iter().map(|r| (*r).to_owned()).collect(),
        }
    }

    #[test]
    fn disjoint_sites_split_into_partitions() {
        let ops = [op("A"), op("B"), op("A")];
        let refs: Vec<&EvolutionOp> = ops.iter().collect();
        let views = [fp("VA", &["A"]), fp("VB", &["B"])];
        let parts = partition_stage(&refs, &views, |r| match r {
            "A" => Some(1),
            "B" => Some(2),
            _ => None,
        });
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].ops, vec![0, 2]);
        assert_eq!(parts[0].views, vec!["VA".to_owned()]);
        assert_eq!(parts[0].sites, vec![1]);
        assert_eq!(parts[1].ops, vec![1]);
    }

    #[test]
    fn join_view_merges_partitions() {
        // A view joining A and B chains their updates together.
        let ops = [op("A"), op("B")];
        let refs: Vec<&EvolutionOp> = ops.iter().collect();
        let views = [fp("VAB", &["A", "B"])];
        let parts = partition_stage(&refs, &views, |r| match r {
            "A" => Some(1),
            "B" => Some(2),
            _ => None,
        });
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].ops, vec![0, 1]);
        assert_eq!(parts[0].sites, vec![1, 2]);
    }

    #[test]
    fn shared_site_merges_even_without_views() {
        let ops = [op("A"), op("B")];
        let refs: Vec<&EvolutionOp> = ops.iter().collect();
        let parts = partition_stage(&refs, &[], |_| Some(7));
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn capability_ops_are_barriers_in_the_plan() {
        let ops = [
            op("A"),
            op("B"),
            EvolutionOp::change(SchemaChange::DeleteRelation {
                relation: "A".into(),
            }),
            op("B"),
        ];
        let views = [fp("VA", &["A"]), fp("VB", &["B"])];
        let plan = plan(&ops, &views, |r| match r {
            "A" => Some(1),
            "B" => Some(2),
            _ => None,
        });
        assert_eq!(plan.stages.len(), 3);
        let Stage::Data { partitions } = &plan.stages[0] else {
            panic!("first stage should be data");
        };
        assert_eq!(partitions.len(), 2);
        assert_eq!(plan.stages[1], Stage::Capability { op: 2 });
        let Stage::Data { partitions } = &plan.stages[2] else {
            panic!("third stage should be data");
        };
        assert_eq!(partitions[0].ops, vec![3], "indices are batch-relative");
        assert_eq!(plan.max_width(), 2);
    }

    #[test]
    fn rewrite_cache_hits_within_generation_and_invalidates_across() {
        let mut mkb = Mkb::new();
        mkb.register_site(SiteId(1), "one").unwrap();
        let attrs = vec![
            AttributeInfo::new("A", DataType::Int),
            AttributeInfo::new("B", DataType::Int),
        ];
        mkb.register_relation(RelationInfo::new("R", SiteId(1), attrs.clone(), 100))
            .unwrap();
        mkb.register_relation(RelationInfo::new("Rep", SiteId(1), attrs, 100))
            .unwrap();
        mkb.add_pc_constraint(eve_misd::PcConstraint::new(
            eve_misd::PcSide::projection("R", &["A", "B"]),
            eve_misd::PcRelationship::Equivalent,
            eve_misd::PcSide::projection("Rep", &["A", "B"]),
        ))
        .unwrap();
        let view = eve_esql::parse_view(
            "CREATE VIEW V (VE = '~') AS SELECT R.A (AR = true) FROM R (RR = true)",
        )
        .unwrap();
        let change = SchemaChange::DeleteRelation {
            relation: "R".into(),
        };
        let mut cache = RewriteCache::new();
        let options = SyncOptions::default();
        let first = cache.synchronize(&view, &change, &mkb, &options).unwrap();
        assert_eq!(cache.misses(), 1);
        let second = cache.synchronize(&view, &change, &mkb, &options).unwrap();
        assert_eq!(cache.hits(), 1);
        assert_eq!(first.rewritings.len(), second.rewritings.len());
        // An MKB mutation invalidates: the next call recomputes.
        mkb.set_join_selectivity("R", "Rep", 0.001);
        cache.synchronize(&view, &change, &mkb, &options).unwrap();
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn views_sharing_a_relation_share_partner_closures() {
        let mut mkb = Mkb::new();
        mkb.register_site(SiteId(1), "one").unwrap();
        let attrs = vec![AttributeInfo::new("A", DataType::Int)];
        mkb.register_relation(RelationInfo::new("R", SiteId(1), attrs.clone(), 100))
            .unwrap();
        mkb.register_relation(RelationInfo::new("Rep", SiteId(1), attrs, 100))
            .unwrap();
        mkb.add_pc_constraint(eve_misd::PcConstraint::new(
            eve_misd::PcSide::projection("R", &["A"]),
            eve_misd::PcRelationship::Equivalent,
            eve_misd::PcSide::projection("Rep", &["A"]),
        ))
        .unwrap();
        let change = SchemaChange::DeleteRelation {
            relation: "R".into(),
        };
        let mut cache = RewriteCache::new();
        for name in ["V1", "V2", "V3"] {
            let view = eve_esql::parse_view(&format!(
                "CREATE VIEW {name} (VE = '~') AS SELECT R.A (AR = true) FROM R (RR = true)"
            ))
            .unwrap();
            cache
                .synchronize(&view, &change, &mkb, &SyncOptions::default())
                .unwrap();
        }
        let (hits, misses) = cache.partner_stats();
        assert_eq!(misses, 1, "one BFS for the shared relation");
        assert_eq!(hits, 2, "replayed for the other two views");
    }

    #[test]
    fn footprint_extraction_and_touched_relations() {
        let view = eve_esql::parse_view("CREATE VIEW V AS SELECT X.A FROM R X, S WHERE X.A = S.A")
            .unwrap();
        let fp = ViewFootprint::of(&view);
        assert_eq!(fp.name, "V");
        assert_eq!(fp.relations, vec!["R".to_owned(), "S".to_owned()]);
        assert_eq!(op("R").touched_relation(), Some("R"));
        assert_eq!(
            EvolutionOp::change(SchemaChange::RenameRelation {
                from: "R".into(),
                to: "S".into()
            })
            .touched_relation(),
            Some("R")
        );
        assert_eq!(
            EvolutionOp::change(SchemaChange::AddRelation {
                relation: RelationInfo::new("N", SiteId(1), vec![], 0)
            })
            .touched_relation(),
            None
        );
        assert!(op("R").is_data());
    }

    #[test]
    fn unknown_relations_group_together_deterministically() {
        // Unknown site resolution still yields relation tokens, so repeated
        // ops on the same ghost relation stay ordered in one partition.
        let ops = [op("Ghost"), op("Ghost")];
        let refs: Vec<&EvolutionOp> = ops.iter().collect();
        let parts = partition_stage(&refs, &[], |_| None);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].ops, vec![0, 1]);
        assert!(parts[0].sites.is_empty());
    }

    #[test]
    fn partition_views_are_sorted_and_deduplicated() {
        let ops = [op("A"), op("B")];
        let refs: Vec<&EvolutionOp> = ops.iter().collect();
        let views = [fp("Z", &["A", "B"]), fp("M", &["A"])];
        let parts = partition_stage(&refs, &views, |_| Some(1));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].views, vec!["M".to_owned(), "Z".to_owned()]);
        let all: BTreeSet<&str> = parts[0].views.iter().map(String::as_str).collect();
        assert_eq!(all.len(), parts[0].views.len());
    }
}
