//! # EVE — Evolvable View Environment
//!
//! Facade crate for the reproduction of *"Data Warehouse Evolution:
//! Trade-offs between Quality and Cost of Query Rewritings"* (Lee, Koeller,
//! Nica, Rundensteiner; ICDE 1999).
//!
//! Re-exports every subsystem crate under one roof:
//!
//! * [`relational`] — in-memory relational engine substrate,
//! * [`esql`] — the E-SQL view definition language with evolution preferences,
//! * [`misd`] — information source descriptions and the Meta Knowledge Base,
//! * [`sync`] — view synchronization (legal rewriting generation),
//! * [`qc`] — the QC-Model ranking rewritings by quality and cost,
//! * [`store`] — the durable evolution log (WAL, snapshots, crash
//!   recovery, generation time-travel),
//! * [`system`] — the simulated multi-site EVE runtime.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use eve_esql as esql;
pub use eve_misd as misd;
pub use eve_qc as qc;
pub use eve_relational as relational;
pub use eve_store as store;
pub use eve_sync as sync;
pub use eve_system as system;
